type t = { rows : int; cols : int; data : float array }

let check_size name rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg (Printf.sprintf "Mat.%s: non-positive dimensions %dx%d" name rows cols)

let create rows cols x =
  check_size "create" rows cols;
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  check_size "init" rows cols;
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let zeros rows cols = create rows cols 0.

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Mat.of_arrays: zero rows";
  let cols = Array.length arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
    arr;
  init rows cols (fun i j -> arr.(i).(j))

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }
let dims m = (m.rows, m.cols)

let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch" name)

let add a b =
  check_same "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale alpha a = { a with data = Array.map (fun x -> alpha *. x) a.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: inner dimension mismatch";
  let out = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then begin
        let arow = i * b.cols and brow = k * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(arow + j) <- out.data.(arow + j) +. (aik *. b.data.(brow + j))
        done
      end
    done
  done;
  out

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      Dp_math.Numeric.float_sum_range a.cols (fun j -> get a i j *. x.(j)))

let tmul_vec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.tmul_vec: dimension mismatch";
  Array.init a.cols (fun j ->
      Dp_math.Numeric.float_sum_range a.rows (fun i -> get a i j *. x.(i)))

let gram a =
  let out = zeros a.cols a.cols in
  for i = 0 to a.cols - 1 do
    for j = i to a.cols - 1 do
      let v =
        Dp_math.Numeric.float_sum_range a.rows (fun k -> get a k i *. get a k j)
      in
      set out i j v;
      set out j i v
    done
  done;
  out

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let add_diagonal lambda a =
  if a.rows <> a.cols then invalid_arg "Mat.add_diagonal: requires square matrix";
  let out = copy a in
  for i = 0 to a.rows - 1 do
    set out i i (get out i i +. lambda)
  done;
  out

let trace m =
  if m.rows <> m.cols then invalid_arg "Mat.trace: requires square matrix";
  Dp_math.Numeric.float_sum_range m.rows (fun i -> get m i i)

let frobenius_norm m =
  sqrt (Dp_math.Summation.sum_map (fun x -> x *. x) m.data)

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. m.data

let is_symmetric ?(tol = 1e-12) m =
  m.rows = m.cols
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol *. (1. +. max_abs m) then
        ok := false
    done
  done;
  !ok

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%10.5g" (get m i j)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
