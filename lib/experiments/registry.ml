type entry = {
  id : string;
  title : string;
  claim : string;
  run : ?quick:bool -> seed:int -> Format.formatter -> unit;
}

let all =
  [
    {
      id = "E1";
      title = "Laplace mechanism privacy audit";
      claim = "Thm 2.2 (Dwork et al.): Lap(df/eps) noise gives eps-DP";
      run = E01_laplace_audit.run;
    };
    {
      id = "E2";
      title = "Exponential mechanism: exact privacy & utility";
      claim = "Thm 2.3 (McSherry-Talwar): 2*eps*dq differential privacy";
      run = E02_exponential_audit.run;
    };
    {
      id = "E3";
      title = "Gibbs posterior minimizes the PAC-Bayes objective";
      claim = "Lemma 3.2 (Catoni/Zhang)";
      run = E03_gibbs_minimality.run;
    };
    {
      id = "E4";
      title = "PAC-Bayes bound validity & tightness";
      claim = "Thm 3.1 (Catoni): coverage >= 1 - delta";
      run = E04_bound_validity.run;
    };
    {
      id = "E5";
      title = "Gibbs posterior differential privacy";
      claim = "Thm 4.1: the Gibbs estimator is 2*beta*dR-DP";
      run = E05_gibbs_privacy.run;
    };
    {
      id = "E6";
      title = "Risk-information tradeoff on the exact channel";
      claim = "Thm 4.2 / Sec 4: Gibbs minimizes E[risk] + I/beta";
      run = E06_channel_tradeoff.run;
    };
    {
      id = "E7";
      title = "Information bounds on eps-DP channels";
      claim = "C8 (Alvim et al. comparison)";
      run = E07_leakage_bounds.run;
    };
    {
      id = "E8";
      title = "Private logistic regression";
      claim = "Sec 1 motivation; Chaudhuri et al. baselines";
      run = E08_private_logistic.run;
    };
    {
      id = "E9";
      title = "Private mean & histogram density utility";
      claim = "Thm 2.2 application; Sec 5 density estimation";
      run = E09_mean_density.run;
    };
    {
      id = "E10";
      title = "Private ridge regression";
      claim = "Sec 5: private regression via PAC-Bayes";
      run = E10_private_ridge.run;
    };
    {
      id = "E11";
      title = "Alternating minimization of E[risk] + I/beta";
      claim = "Sec 4 (Catoni's pi_OPT identity)";
      run = E11_rate_risk.run;
    };
    {
      id = "E12";
      title = "Figure 1: the information channel, printed";
      claim = "Fig. 1";
      run = E12_figure1.run;
    };
    {
      id = "E13";
      title = "Privacy amplification by subsampling";
      claim = "extension: subsampled mechanisms audit below the base eps";
      run = E13_subsampling.run;
    };
    {
      id = "E14";
      title = "Sparse vector technique vs per-query Laplace";
      claim = "extension: budget independent of the query count";
      run = E14_sparse_vector.run;
    };
    {
      id = "E15";
      title = "Fano floor vs Gibbs identification error";
      claim = "Sec 5: MI bounds imply utility limits for DP learning";
      run = E15_fano_floor.run;
    };
    {
      id = "E16";
      title = "Conjugate Gaussian Gibbs regression";
      claim = "Sec 5: private regression via PAC-Bayes, exact sampler";
      run = E16_conjugate_regression.run;
    };
    {
      id = "E17";
      title = "DP-SGD vs paper-era private learners";
      claim = "extension: modern comparator with RDP accounting";
      run = E17_dp_sgd.run;
    };
    {
      id = "E18";
      title = "Composition accounting: basic vs advanced vs RDP";
      claim = "extension: tighter accounting for composed mechanisms";
      run = E18_composition.run;
    };
    {
      id = "E19";
      title = "Hypothesis-testing region of eps-DP";
      claim = "ref 10 (McGregor et al.): the adversarial view";
      run = E19_tradeoff_region.run;
    };
    {
      id = "E20";
      title = "Private quantiles via the exponential mechanism";
      claim = "Thm 2.3 application on a continuous range";
      run = E20_quantile.run;
    };
    {
      id = "E21";
      title = "Informed priors & aggregation";
      claim = "PAC-Bayes refinements: prior learning and majority vote";
      run = E21_informed_prior.run;
    };
    {
      id = "E22";
      title = "Continual counting: binary mechanism";
      claim = "extension: polylog-error streaming counts";
      run = E22_continual_counting.run;
    };
    {
      id = "E23";
      title = "Private model selection";
      claim = "Thm 2.3 application: hyperparameter choice";
      run = E23_model_selection.run;
    };
    {
      id = "E24";
      title = "Local DP frequency estimation";
      claim = "extension: the no-curator model (GRR vs unary encoding)";
      run = E24_local_dp.run;
    };
    {
      id = "E25";
      title = "Private k-means (DPLloyd)";
      claim = "extension: unsupervised private learning";
      run = E25_kmeans.run;
    };
    {
      id = "E26";
      title = "Private PCA (covariance perturbation)";
      claim = "extension: private spectral learning";
      run = E26_pca.run;
    };
    {
      id = "E27";
      title = "Private chi-square independence testing";
      claim = "extension: hypothesis testing on noisy tables";
      run = E27_private_testing.run;
    };
    {
      id = "E28";
      title = "Smooth sensitivity: private median";
      claim = "extension: beyond global sensitivity (NRS 2007)";
      run = E28_smooth_sensitivity.run;
    };
    {
      id = "E29";
      title = "Synthetic data release";
      claim = "extension: train-on-synthetic, test-on-real";
      run = E29_synthetic_data.run;
    };
    {
      id = "E30";
      title = "Post-processing invariance on the channel";
      claim = "DPI and DP post-processing, in Fig. 1 language";
      run = E30_postprocessing.run;
    };
    {
      id = "E31";
      title = "Private range queries: flat vs hierarchical";
      claim = "extension: workload-aware noise (Hay et al.)";
      run = E31_range_queries.run;
    };
    {
      id = "E32";
      title = "Propose-test-release vs smooth sensitivity";
      claim = "extension: local-sensitivity release (Dwork-Lei)";
      run = E32_ptr.run;
    };
    {
      id = "E33";
      title = "Noise-aware confidence intervals";
      claim = "extension: valid inference on private releases";
      run = E33_confidence.run;
    };
    {
      id = "E34";
      title = "Selection: EM vs permute-and-flip vs noisy-max";
      claim = "Thm 2.3 and its modern successor (McKenna-Sheldon)";
      run = E34_selection.run;
    };
    {
      id = "A2";
      title = "Log-space vs direct-space Gibbs weights";
      claim = "ablation (numerical stability)";
      run = Ablations.run_a2;
    };
    {
      id = "A3";
      title = "MCMC chain length vs exact-posterior TV";
      claim = "ablation (mechanism approximation)";
      run = Ablations.run_a3;
    };
    {
      id = "A4";
      title = "Catoni deformation vs linearized bound";
      claim = "ablation (bound form)";
      run = Ablations.run_a4;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = id) all

let run_all ?quick ~seed fmt =
  List.iter
    (fun e ->
      Format.fprintf fmt "@.### [%s] %s — %s@." e.id e.title e.claim;
      e.run ?quick ~seed fmt)
    all
