(* E19 — the hypothesis-testing region of eps-DP (the two-party /
   adversarial view; the paper's ref 10, McGregor et al.).

   For randomized response and the finite Gibbs posterior, the
   adversary's full likelihood-ratio ROC is computed (exactly from the
   known output distributions, and empirically from samples) and
   checked against the eps-DP tradeoff region
   beta >= max(1 - e^eps alpha, e^{-eps}(1 - alpha)).
   The minimum total error alpha + beta is compared with its
   closed-form floor 2/(1+e^eps). *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let table =
    Table.create ~title:"E19: eps-DP hypothesis-testing region"
      ~columns:
        [
          "mechanism"; "eps"; "min err (exact)"; "floor 2/(1+e^eps)";
          "min err (empirical)"; "violations";
        ]
  in
  let trials = if quick then 20_000 else 100_000 in
  (* randomized response *)
  List.iter
    (fun eps ->
      let rr = Dp_mechanism.Randomized_response.create ~epsilon:eps in
      let ch = Dp_mechanism.Randomized_response.channel_matrix rr in
      let exact_roc = Dp_audit.Tradeoff.roc_of_distributions ~p:ch.(0) ~q:ch.(1) in
      let exact_min =
        List.fold_left
          (fun acc pt -> Float.min acc (pt.Dp_audit.Tradeoff.fpr +. pt.Dp_audit.Tradeoff.fnr))
          infinity exact_roc
      in
      (* the region boundary 1 - e^eps*alpha has slope e^eps, so the
         per-rate sampling noise is amplified by (1 + e^eps) *)
      let slack = (1. +. exp eps) *. 3. /. sqrt (float_of_int trials) in
      let report =
        Dp_audit.Tradeoff.audit ~slack ~trials ~outcomes:2 ~epsilon_theory:eps
          ~run:(fun g' ->
            if Dp_mechanism.Randomized_response.respond rr true g' then 1 else 0)
          ~run':(fun g' ->
            if Dp_mechanism.Randomized_response.respond rr false g' then 1
            else 0)
          g
      in
      Table.add_row table
        [
          "rand-response";
          Table.fcell eps;
          Table.fcell exact_min;
          Table.fcell (2. /. (1. +. exp eps));
          Table.fcell report.Dp_audit.Tradeoff.min_total_error;
          string_of_int report.Dp_audit.Tradeoff.region_violations;
        ])
    [ 0.5; 1.; 2. ];
  (* finite Gibbs posterior: exact distributions on neighbouring samples *)
  let grid = Array.init 11 (fun i -> -1. +. (0.2 *. float_of_int i)) in
  let loss theta (x, y) = if (if x >= theta then 1. else -1.) = y then 0. else 1. in
  let n = 20 in
  let sample =
    Array.init n (fun i -> (float_of_int i /. 10. -. 1., if i mod 2 = 0 then 1. else -1.))
  in
  List.iter
    (fun beta ->
      let fit s =
        Dp_pac_bayes.Gibbs.fit ~predictors:grid ~beta
          ~empirical_risk:(Dp_pac_bayes.Risk.empirical ~loss s)
          ()
      in
      let p = Dp_pac_bayes.Gibbs.probabilities (fit sample) in
      let s' = Array.copy sample in
      s'.(0) <- (0.99, -1.);
      let q = Dp_pac_bayes.Gibbs.probabilities (fit s') in
      let eps = 2. *. beta /. float_of_int n in
      let roc = Dp_audit.Tradeoff.roc_of_distributions ~p ~q in
      let exact_min =
        List.fold_left
          (fun acc pt -> Float.min acc (pt.Dp_audit.Tradeoff.fpr +. pt.Dp_audit.Tradeoff.fnr))
          infinity roc
      in
      let violations =
        List.length
          (List.filter
             (fun pt ->
               pt.Dp_audit.Tradeoff.fnr
               < Dp_audit.Tradeoff.region_floor ~epsilon:eps
                   ~fpr:pt.Dp_audit.Tradeoff.fpr
                 -. 1e-12)
             roc)
      in
      Table.add_row table
        [
          "gibbs-posterior";
          Table.fcell eps;
          Table.fcell exact_min;
          Table.fcell (2. /. (1. +. exp eps));
          "-";
          string_of_int violations;
        ])
    [ 2.; 10. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(zero region violations anywhere; for randomized response the@.\
    \ min total error ACHIEVES the 2/(1+e^eps) floor — RR is the@.\
    \ extremal eps-DP mechanism; the Gibbs posterior sits strictly@.\
    \ inside its region, reflecting the worst-case 2-factor.)@."
