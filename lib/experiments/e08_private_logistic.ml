(* E8 — the paper's §1 motivating application: private learning of a
   (logistic regression) predictor.

   Synthetic logistic ground truth (d = 5, unit-ball features), test
   accuracy of: non-private ERM, output perturbation, objective
   perturbation (Chaudhuri et al., refs 5-6), and the paper's Gibbs
   posterior sampler, across eps and n. Each private cell is averaged
   over several mechanism runs. The expected shape: all private
   learners approach the non-private accuracy as eps or n grows;
   objective perturbation dominates output perturbation; Gibbs is
   competitive at small eps (its noise adapts to the loss landscape
   rather than the worst case). *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let dim = 5 in
  let theta_star = Array.init dim (fun i -> if i mod 2 = 0 then 2.5 else -2.5) in
  let reps = if quick then 2 else 8 in
  let table =
    Table.create
      ~title:"E8: private logistic regression, test accuracy (d=5)"
      ~columns:
        [ "n"; "eps"; "non-private"; "output-pert"; "objective-pert"; "gibbs" ]
  in
  let test =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.logistic_model ~theta:theta_star ~n:4000 g)
  in
  let ns = if quick then [ 500 ] else [ 200; 1000; 5000 ] in
  let epss = if quick then [ 0.5; 5. ] else [ 0.1; 0.5; 1.; 2.; 10. ] in
  List.iter
    (fun n ->
      let train =
        Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
          (Dp_dataset.Synthetic.logistic_model ~theta:theta_star ~n g)
      in
      let lambda = 1. /. sqrt (float_of_int n) *. 0.1 in
      let np = Dp_learn.Erm.train ~lambda ~loss:Dp_learn.Loss_fn.logistic train in
      let acc_np = Dp_learn.Erm.accuracy np.Dp_learn.Erm.theta test in
      List.iter
        (fun eps ->
          let avg f =
            Dp_math.Summation.mean (Array.init reps (fun _ -> f ()))
          in
          let acc_out =
            avg (fun () ->
                let m =
                  Dp_learn.Private_erm.output_perturbation ~epsilon:eps ~lambda
                    ~loss:Dp_learn.Loss_fn.logistic train g
                in
                Dp_learn.Erm.accuracy m.Dp_learn.Private_erm.theta test)
          in
          let acc_obj =
            avg (fun () ->
                let m =
                  Dp_learn.Private_erm.objective_perturbation ~epsilon:eps
                    ~lambda ~loss:Dp_learn.Loss_fn.logistic train g
                in
                Dp_learn.Erm.accuracy m.Dp_learn.Private_erm.theta test)
          in
          let acc_gibbs =
            avg (fun () ->
                let m =
                  Dp_learn.Private_erm.gibbs
                    ~mcmc_config:
                      {
                        Dp_pac_bayes.Mcmc.step_std = 0.3;
                        burn_in = (if quick then 1000 else 3000);
                        thin = 2;
                      }
                    ~epsilon:eps ~radius:3. ~loss:Dp_learn.Loss_fn.logistic
                    train g
                in
                Dp_learn.Erm.accuracy m.Dp_learn.Private_erm.theta test)
          in
          Table.add_rowf table
            [ float_of_int n; eps; acc_np; acc_out; acc_obj; acc_gibbs ])
        epss)
    ns;
  Table.print fmt table;
  Format.fprintf fmt
    "(accuracy rises toward the non-private baseline with eps and n;@.\
    \ objective perturbation > output perturbation; Gibbs is strongest@.\
    \ in the small-eps / small-n corner.)@."
