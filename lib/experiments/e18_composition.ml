(* E18 — composition accounting: basic vs advanced vs RDP.

   k repetitions of a Gaussian mechanism (sigma = 4, sensitivity 1,
   per-release (eps0, delta0) via the classical calibration) accounted
   three ways at total delta = 1e-5. The expected ordering: basic is
   linear in k, advanced ~ sqrt(k log(1/delta)), RDP tighter still.
   A Laplace column shows RDP also helps pure-eps mechanisms once
   composed into the (eps, delta) regime. *)

let run ?(quick = false) ~seed fmt =
  ignore quick;
  ignore seed;
  let delta_total = 1e-5 in
  (* calibrate each Gaussian release to a SMALL per-step eps0 (advanced
     composition only helps below eps0 ~ 1) *)
  let delta0 = 1e-7 in
  let eps0 = 0.1 in
  let sigma = sqrt (2. *. log (1.25 /. delta0)) /. eps0 in
  let gauss_curve = Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:sigma in
  let lap_eps0 = 0.1 in
  let lap_curve = Dp_mechanism.Rdp.laplace ~sensitivity:1. ~epsilon:lap_eps0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E18: eps after k-fold composition (total delta=%g; gaussian \
            sigma=%g, laplace eps0=%g)"
           delta_total sigma lap_eps0)
      ~columns:
        [
          "k"; "basic (gauss)"; "advanced (gauss)"; "RDP (gauss)";
          "basic (lap)"; "RDP (lap)";
        ]
  in
  List.iter
    (fun k ->
      let kf = float_of_int k in
      let basic = kf *. eps0 in
      let advanced =
        (Dp_mechanism.Privacy.advanced_compose ~k ~delta_slack:(delta_total /. 2.)
           (Dp_mechanism.Privacy.approx ~epsilon:eps0 ~delta:delta0))
          .Dp_mechanism.Privacy.epsilon
      in
      let rdp =
        (Dp_mechanism.Rdp.to_dp ~delta:delta_total
           (Dp_mechanism.Rdp.scale k gauss_curve))
          .Dp_mechanism.Privacy.epsilon
      in
      let basic_lap = kf *. lap_eps0 in
      let rdp_lap =
        (Dp_mechanism.Rdp.to_dp ~delta:delta_total
           (Dp_mechanism.Rdp.scale k lap_curve))
          .Dp_mechanism.Privacy.epsilon
      in
      Table.add_rowf table [ kf; basic; advanced; rdp; basic_lap; rdp_lap ])
    [ 1; 10; 100; 1000; 10000 ];
  Table.print fmt table;
  Format.fprintf fmt
    "(basic grows linearly, advanced as sqrt(k), RDP tighter than both@.\
    \ at every k — the reason modern accountants track Renyi curves.)@."
