(* E16 — exact conjugate Gibbs sampling for private regression
   (the paper's §5 program, implemented): compare the truncated-
   Gaussian Gibbs sampler (exact, no chain) against the MCMC Gibbs
   learner on the clipped loss and against output perturbation.

   The conjugate sampler is both faster and exactly eps-DP (the MCMC
   realization is only asymptotically the Gibbs distribution; see
   ablation A3). Test MSE across eps. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let theta_star = [| 0.6; -0.4; 0.3 |] in
  let make n =
    Dp_dataset.Dataset.map_labels
      (Dp_math.Numeric.clamp ~lo:(-1.) ~hi:1.)
      (Dp_dataset.Synthetic.linear_regression ~theta:theta_star ~noise_std:0.1
         ~n g)
  in
  let train = make (if quick then 500 else 2000) in
  let test = make 2000 in
  let exact = Dp_learn.Ridge.fit ~lambda:0.05 train in
  let mse theta = Dp_learn.Erm.mean_squared_error theta test in
  let reps = if quick then 3 else 10 in
  let radius = 1.5 in
  let table =
    Table.create
      ~title:"E16: conjugate Gaussian Gibbs vs MCMC Gibbs vs output-pert (MSE)"
      ~columns:
        [ "eps"; "exact ridge"; "conjugate gibbs"; "mcmc gibbs"; "output-pert" ]
  in
  List.iter
    (fun eps ->
      let avg f = Dp_math.Summation.mean (Array.init reps (fun _ -> f ())) in
      let conj =
        avg (fun () ->
            let theta, _ =
              Dp_pac_bayes.Gaussian_gibbs.fit_private ~epsilon:eps ~radius
                train g
            in
            mse theta)
      in
      let mcmc =
        avg (fun () ->
            mse
              (Dp_learn.Ridge.fit_gibbs
                 ~mcmc_config:
                   {
                     Dp_pac_bayes.Mcmc.step_std = 0.2;
                     burn_in = (if quick then 1000 else 3000);
                     thin = 2;
                   }
                 ~epsilon:eps ~radius train g))
      in
      let out =
        avg (fun () ->
            mse (Dp_learn.Ridge.fit_output_perturbed ~epsilon:eps ~lambda:0.05 train g))
      in
      Table.add_rowf table [ eps; mse exact; conj; mcmc; out ])
    [ 0.1; 0.5; 1.; 2.; 10. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(conjugate and MCMC Gibbs agree — they target the same posterior —@.\
    \ but the conjugate draw is exact and orders of magnitude cheaper;@.\
    \ see the micro-benchmarks. Both beat output perturbation at small@.\
    \ eps.)@."
