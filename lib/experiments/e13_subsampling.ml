(* E13 — privacy amplification by subsampling.

   (a) The amplification curve: eps' = log(1 + q(e^eps - 1)) across q.
   (b) End-to-end audit: a Laplace count released on a q-subsample of
       a 0/1 database is audited on a worst-case neighbour pair; the
       measured privacy loss must respect the amplified bound (and is
       far below the base eps for small q). *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let curve =
    Table.create ~title:"E13a: amplification curve eps' = log(1 + q(e^eps - 1))"
      ~columns:[ "base eps"; "q=0.01"; "q=0.1"; "q=0.5"; "q=1.0" ]
  in
  List.iter
    (fun eps ->
      Table.add_rowf curve
        [
          eps;
          Dp_mechanism.Subsample.amplified_epsilon ~epsilon:eps ~q:0.01;
          Dp_mechanism.Subsample.amplified_epsilon ~epsilon:eps ~q:0.1;
          Dp_mechanism.Subsample.amplified_epsilon ~epsilon:eps ~q:0.5;
          Dp_mechanism.Subsample.amplified_epsilon ~epsilon:eps ~q:1.0;
        ])
    [ 0.1; 0.5; 1.; 2.; 4. ];
  Table.print fmt curve;
  let audit =
    Table.create
      ~title:"E13b: end-to-end audit of the subsampled Laplace count (n=50)"
      ~columns:[ "base eps"; "q"; "amplified"; "eps_hat"; "eps_lower"; "pass" ]
  in
  let n = 50 in
  let db = Dp_dataset.Synthetic.bernoulli_database ~p:0.5 ~n g in
  let d, d' = Dp_dataset.Neighbors.worst_case_pair_for_count db in
  let trials = if quick then 20_000 else 150_000 in
  List.iter
    (fun (base_eps, q) ->
      let release db g' =
        let m = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:base_eps in
        let value, _ =
          Dp_mechanism.Subsample.run_subsampled ~q ~base_epsilon:base_eps
            ~mechanism:(fun sub g'' ->
              Dp_mechanism.Laplace.release m
                ~value:(float_of_int (Array.fold_left ( + ) 0 sub))
                g'')
            db g'
        in
        value
      in
      let amplified =
        Dp_mechanism.Subsample.amplified_epsilon ~epsilon:base_eps ~q
      in
      let span = 4. /. base_eps in
      let report =
        Dp_audit.Auditor.audit_continuous ~trials ~bins:16
          ~lo:(-.span)
          ~hi:(float_of_int n +. span)
          ~epsilon_theory:amplified
          ~run:(release d) ~run':(release d') g
      in
      Table.add_row audit
        [
          Table.fcell base_eps;
          Table.fcell q;
          Table.fcell amplified;
          Table.fcell report.Dp_audit.Auditor.epsilon_hat;
          Table.fcell report.Dp_audit.Auditor.epsilon_lower;
          (if Dp_audit.Auditor.passes report ~slack:(0.15 *. amplified +. 0.02)
           then "yes"
           else "NO");
        ])
    [ (1., 1.0); (1., 0.5); (1., 0.1); (2., 0.1) ];
  Table.print fmt audit;
  Format.fprintf fmt
    "(the measured loss tracks the amplified epsilon, not the base one:@.\
    \ subsampling buys privacy for free when q is small.)@."
