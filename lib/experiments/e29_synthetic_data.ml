(* E29 — synthetic data release: train on synthetic, test on real.

   A classification dataset is released once as a noisy class-
   conditional histogram model (eps-DP); a synthetic dataset sampled
   from it trains a logistic model evaluated on real held-out data.
   Expected: synthetic-trained accuracy approaches real-trained
   accuracy as eps grows, with a gap from the product-form model bias
   that persists even at eps = inf (the histogram model ignores
   feature correlations). *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let n = if quick then 2000 else 10_000 in
  let make n =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.two_gaussians ~separation:2.5 ~std:1. ~dim:3 ~n g)
  in
  let train = make n and test = make 4000 in
  let real_model =
    Dp_learn.Erm.train ~lambda:1e-3 ~loss:Dp_learn.Loss_fn.logistic train
  in
  let acc_real = Dp_learn.Erm.accuracy real_model.Dp_learn.Erm.theta test in
  let reps = if quick then 2 else 5 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E29: train-on-synthetic test-on-real accuracy (n=%d real records)" n)
      ~columns:
        [ "eps"; "synthetic acc"; "real acc"; "class balance (noisy)" ]
  in
  List.iter
    (fun eps ->
      let accs = ref 0. and bal = ref 0. in
      for _ = 1 to reps do
        let model, _ =
          Dp_learn.Synthetic_release.fit ~epsilon:eps ~bins:12 ~lo:(-1.) ~hi:1.
            train g
        in
        let synth = Dp_learn.Synthetic_release.sample_dataset model ~n g in
        let m =
          Dp_learn.Erm.train ~lambda:1e-3 ~loss:Dp_learn.Loss_fn.logistic synth
        in
        accs := !accs +. Dp_learn.Erm.accuracy m.Dp_learn.Erm.theta test;
        bal := !bal +. Dp_learn.Synthetic_release.class_balance model
      done;
      let fr = float_of_int reps in
      Table.add_rowf table [ eps; !accs /. fr; acc_real; !bal /. fr ])
    [ 0.05; 0.2; 1.; 5.; 50. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(synthetic-trained accuracy climbs toward the real-trained one as@.\
    \ eps grows; the residual gap at large eps is the product-model@.\
    \ bias, not privacy noise.)@."
