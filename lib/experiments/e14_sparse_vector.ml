(* E14 — the sparse vector technique vs per-query Laplace.

   m sensitivity-1 queries, a handful far above the threshold and the
   rest far below. SVT pays a fixed budget regardless of m; naive
   Laplace splits the same budget across all m queries and drowns once
   m is large. The table reports the fraction of correctly classified
   queries for both strategies as m grows — the crossover the
   technique exists for. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let epsilon = 1. in
  let threshold = 50. in
  let gap = 25. in
  let trials = if quick then 50 else 300 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E14: SVT vs per-query Laplace (total eps=%g, threshold=%g, gap=%g)"
           epsilon threshold gap)
      ~columns:[ "queries m"; "SVT correct"; "naive correct" ]
  in
  List.iter
    (fun m ->
      (* 3 above-threshold queries hidden among m *)
      let queries =
        Array.init m (fun i ->
            if i mod (m / 3 |> Stdlib.max 1) = 0 && i < m - 1 then
              threshold +. gap
            else threshold -. gap)
      in
      let n_above =
        Array.fold_left
          (fun acc v -> if v > threshold then acc + 1 else acc)
          0 queries
      in
      let svt_correct = ref 0 and naive_correct = ref 0 in
      let total_answers = ref 0 in
      for _ = 1 to trials do
        (* SVT with budget for all the positives present *)
        let t =
          Dp_mechanism.Sparse_vector.create ~epsilon ~threshold
            ~max_positives:n_above g
        in
        Array.iter
          (fun v ->
            incr total_answers;
            match Dp_mechanism.Sparse_vector.query t v with
            | Some Dp_mechanism.Sparse_vector.Above ->
                if v > threshold then incr svt_correct
            | Some Dp_mechanism.Sparse_vector.Below ->
                if v <= threshold then incr svt_correct
            | None ->
                (* exhausted: classify as Below (all positives found) *)
                if v <= threshold then incr svt_correct)
          queries;
        (* naive: split epsilon across the m queries *)
        let per_query =
          Dp_mechanism.Laplace.create ~sensitivity:1.
            ~epsilon:(epsilon /. float_of_int m)
        in
        Array.iter
          (fun v ->
            let noisy = Dp_mechanism.Laplace.release per_query ~value:v g in
            if (noisy > threshold && v > threshold)
               || (noisy <= threshold && v <= threshold)
            then incr naive_correct)
          queries
      done;
      let ft = float_of_int !total_answers in
      Table.add_rowf table
        [
          float_of_int m;
          float_of_int !svt_correct /. ft;
          float_of_int !naive_correct /. ft;
        ])
    (if quick then [ 10; 100 ] else [ 10; 50; 200; 1000 ]);
  Table.print fmt table;
  Format.fprintf fmt
    "(SVT's accuracy is flat in m — its noise scale never grows — while@.\
    \ the naive split degrades toward coin flipping.)@."
