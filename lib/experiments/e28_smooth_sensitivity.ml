(* E28 — smooth sensitivity vs global sensitivity vs the exponential
   mechanism for the private median.

   Concentrated data in a wide domain [0, 1000]: the median's global
   sensitivity is the whole domain, so global-sensitivity Laplace is
   useless; the smooth-sensitivity Cauchy mechanism adapts to the
   actual data; the exponential mechanism is rank-based. MAE of the
   released median across eps. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let reps = if quick then 100 else 1000 in
  let lo = 0. and hi = 1000. in
  let table =
    Table.create
      ~title:"E28: private median on [0,1000], concentrated data, MAE"
      ~columns:
        [ "n"; "eps"; "smooth-sens"; "global-sens"; "exp-mech"; "S_beta" ]
  in
  List.iter
    (fun n ->
      (* data concentrated near 400-600 *)
      let xs =
        Array.init n (fun _ ->
            Dp_math.Numeric.clamp ~lo ~hi
              (500. +. Dp_rng.Sampler.gaussian ~mean:0. ~std:30. g))
      in
      let truth = Dp_stats.Describe.median xs in
      List.iter
        (fun eps ->
          let mae f =
            (* median absolute error is more informative than mean for
               the heavy-tailed Cauchy noise *)
            let errs = Array.init reps (fun _ -> Float.abs (f () -. truth)) in
            Dp_stats.Describe.median errs
          in
          let smooth =
            mae (fun () ->
                Dp_mechanism.Smooth_sensitivity.private_median ~epsilon:eps ~lo
                  ~hi xs g)
          in
          let global =
            let m =
              Dp_mechanism.Laplace.create ~sensitivity:(hi -. lo) ~epsilon:eps
            in
            mae (fun () ->
                Dp_math.Numeric.clamp ~lo ~hi
                  (Dp_mechanism.Laplace.release m ~value:truth g))
          in
          let em =
            mae (fun () ->
                Dp_learn.Quantile.estimate ~epsilon:eps ~q:0.5 ~lo ~hi xs g)
          in
          let s =
            Dp_mechanism.Smooth_sensitivity.median_smooth_sensitivity
              ~beta:(eps /. 6.) ~lo ~hi xs
          in
          Table.add_rowf table [ float_of_int n; eps; smooth; global; em; s ])
        [ 0.2; 1.; 5. ])
    (if quick then [ 101 ] else [ 101; 1001 ]);
  Table.print fmt table;
  Format.fprintf fmt
    "(global-sensitivity noise is ~domain/eps — useless; the smooth@.\
    \ sensitivity S_beta is tiny because the data are concentrated, so@.\
    \ its median error is orders of magnitude smaller; the exponential@.\
    \ mechanism is comparably good and tail-free.)@."
