(* E3 — Lemma 3.2: the Gibbs posterior minimizes the empirical
   PAC-Bayes objective E_rho R̂ + KL(rho||pi)/beta.

   Predictors: 64 threshold classifiers on 1-D two-Gaussian data, 0-1
   loss. For each (n, beta) the Gibbs objective is compared against an
   independent numerical minimizer over the simplex (exponentiated
   gradient) and against natural alternative posteriors (uniform = the
   prior, the ERM point mass, and the best random posterior over many
   Dirichlet draws). The "gap" column is minimizer-minus-Gibbs and
   should be ~0 up to solver tolerance; every alternative must be
   worse. *)

let grid = Array.init 64 (fun i -> -3.2 +. (0.1 *. float_of_int i))

let zero_one theta (x, y) =
  if (if x >= theta then 1. else -1.) = y then 0. else 1.

let make_sample ~n g =
  Array.init n (fun _ ->
      let y = if Dp_rng.Prng.bool g then 1. else -1. in
      (Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g, y))

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let table =
    Table.create
      ~title:"E3: Gibbs posterior minimizes the PAC-Bayes objective (Lemma 3.2)"
      ~columns:
        [
          "n"; "beta"; "F(gibbs)"; "F(numopt)"; "gap"; "F(uniform)"; "F(erm)";
          "best F(random)";
        ]
  in
  let k = Array.length grid in
  let configs =
    if quick then [ (50, 5.) ]
    else [ (20, 1.); (20, 10.); (100, 5.); (100, 25.); (500, 10.); (500, 100.) ]
  in
  List.iter
    (fun (n, beta) ->
      let sample = make_sample ~n g in
      let risks =
        Dp_pac_bayes.Risk.empirical_all ~loss:zero_one sample grid
      in
      let t = Dp_pac_bayes.Gibbs.of_risks ~predictors:grid ~beta ~risks () in
      let f_gibbs = Dp_pac_bayes.Gibbs.pac_bayes_objective t in
      let prior = Array.make k (1. /. float_of_int k) in
      let opt = Dp_pac_bayes.Bound_opt.minimize ~risks ~prior ~beta () in
      let f_uniform = Dp_pac_bayes.Gibbs.objective_of_posterior t prior in
      let erm = Dp_linalg.Vec.argmin risks in
      let point = Array.make k 0. in
      point.(erm) <- 1.;
      let f_erm = Dp_pac_bayes.Gibbs.objective_of_posterior t point in
      let best_random = ref infinity in
      for _ = 1 to if quick then 20 else 200 do
        let rho = Dp_rng.Sampler.dirichlet ~alpha:(Array.make k 0.3) g in
        best_random :=
          Float.min !best_random (Dp_pac_bayes.Gibbs.objective_of_posterior t rho)
      done;
      Table.add_rowf table
        [
          float_of_int n;
          beta;
          f_gibbs;
          opt.Dp_pac_bayes.Bound_opt.objective;
          opt.Dp_pac_bayes.Bound_opt.objective -. f_gibbs;
          f_uniform;
          f_erm;
          !best_random;
        ])
    configs;
  Table.print fmt table;
  Format.fprintf fmt
    "(gap ~ 0 => the independent minimizer lands on the Gibbs posterior;@.\
    \ every alternative posterior has a strictly larger objective.)@."
