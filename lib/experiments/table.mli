(** Fixed-width table rendering for experiment output, in the style of
    a paper's results tables. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on a column-count mismatch. *)

val add_rowf : t -> float list -> unit
(** Convenience: formats each float with [%.4g]. *)

val print : Format.formatter -> t -> unit

val fcell : float -> string
(** [%.4g] formatting used by [add_rowf]. *)

val rows : t -> string list list

val save_csv : t -> dir:string -> unit
(** Write the table as [<dir>/<slugified-title>.csv] (header +
    rows, comma-separated; cells containing commas are quoted). The
    directory must exist. *)

val set_export_dir : string option -> unit
(** When set, every {!print} also {!save_csv}s into the directory —
    the hook behind dpkit's [--csv] flag. *)

