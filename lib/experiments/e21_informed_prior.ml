(* E21 — data-dependent (informed) priors and aggregation.

   Two PAC-Bayes refinements on top of the paper's framework, both
   exactly computable on the threshold-grid task:

   (a) Informed prior: split the sample in half, build the prior as
       the Gibbs posterior of the first half, learn on the second.
       The KL term collapses, tightening the Catoni bound at the same
       beta. Privacy: releasing a draw from the final posterior is the
       composition of two Gibbs mechanisms (prior construction also
       reads data), so the budget doubles — the table shows the
       bound/privacy tradeoff explicitly.

   (b) Aggregation: the majority vote over the posterior vs the
       randomized Gibbs predictor and the factor-two bound
       R(vote) <= 2 E R(gibbs). *)

let grid = Array.init 41 (fun i -> -2. +. (0.1 *. float_of_int i))

let zero_one theta (x, y) =
  if (if x >= theta then 1. else -1.) = y then 0. else 1.

let make_sample ~n g =
  Array.init n (fun _ ->
      let y = if Dp_rng.Prng.bool g then 1. else -1. in
      (Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g, y))

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let trials = if quick then 20 else 150 in
  let delta = 0.05 in
  let table =
    Table.create
      ~title:"E21a: informed prior vs uniform prior (Catoni bound, delta=0.05)"
      ~columns:
        [
          "n"; "beta"; "bound uniform"; "bound informed"; "KL uniform";
          "KL informed"; "eps uniform"; "eps informed";
        ]
  in
  List.iter
    (fun (n, beta) ->
      let acc = Array.make 4 0. in
      for _ = 1 to trials do
        let sample = make_sample ~n g in
        let half = n / 2 in
        let first = Array.sub sample 0 half in
        let second = Array.sub sample half (n - half) in
        (* uniform-prior Gibbs on the full sample *)
        let t_uniform =
          Dp_pac_bayes.Gibbs.fit ~predictors:grid ~beta
            ~empirical_risk:(Dp_pac_bayes.Risk.empirical ~loss:zero_one sample)
            ()
        in
        (* informed: prior = Gibbs posterior of the first half (at the
           same beta), posterior learned on the second half only *)
        let prior_t =
          Dp_pac_bayes.Gibbs.fit ~predictors:grid ~beta
            ~empirical_risk:(Dp_pac_bayes.Risk.empirical ~loss:zero_one first)
            ()
        in
        let t_informed =
          Dp_pac_bayes.Gibbs.fit ~predictors:grid
            ~log_prior:(Dp_pac_bayes.Gibbs.log_probabilities prior_t)
            ~beta
            ~empirical_risk:(Dp_pac_bayes.Risk.empirical ~loss:zero_one second)
            ()
        in
        let bound t n =
          Dp_pac_bayes.Bounds.catoni ~beta ~n ~delta
            ~emp_risk:(Dp_pac_bayes.Gibbs.expected_empirical_risk t)
            ~kl:(Dp_pac_bayes.Gibbs.kl_from_prior t)
        in
        acc.(0) <- acc.(0) +. bound t_uniform n;
        acc.(1) <- acc.(1) +. bound t_informed (n - half);
        acc.(2) <- acc.(2) +. Dp_pac_bayes.Gibbs.kl_from_prior t_uniform;
        acc.(3) <- acc.(3) +. Dp_pac_bayes.Gibbs.kl_from_prior t_informed
      done;
      let ft = float_of_int trials in
      (* privacy of one released draw: uniform-prior Gibbs on n points
         is 2 beta / n; the informed pipeline composes the (internal)
         prior release with the final draw: 2 beta/(n/2) + 2 beta/(n/2) *)
      let eps_uniform = 2. *. beta /. float_of_int n in
      let eps_informed = 2. *. (2. *. beta /. float_of_int (n / 2)) in
      Table.add_rowf table
        [
          float_of_int n; beta;
          acc.(0) /. ft; acc.(1) /. ft; acc.(2) /. ft; acc.(3) /. ft;
          eps_uniform; eps_informed;
        ])
    (if quick then [ (200, 20.) ] else [ (100, 10.); (200, 20.); (800, 80.) ]);
  Table.print fmt table;
  (* (b) aggregation *)
  let agg =
    Table.create
      ~title:"E21b: majority vote vs randomized Gibbs predictor (test risk)"
      ~columns:
        [ "beta"; "gibbs risk"; "vote risk"; "2x bound"; "vote <= bound" ]
  in
  let train = make_sample ~n:150 g in
  let test = make_sample ~n:(if quick then 2000 else 20000) g in
  let predict i (x : float) = if x >= grid.(i) then 1. else -1. in
  List.iter
    (fun beta ->
      let t =
        Dp_pac_bayes.Gibbs.fit ~predictors:grid ~beta
          ~empirical_risk:(Dp_pac_bayes.Risk.empirical ~loss:zero_one train)
          ()
      in
      let rho = Dp_pac_bayes.Gibbs.probabilities t in
      let gr = Dp_pac_bayes.Aggregate.gibbs_risk ~posterior:rho ~predict test in
      let vr = Dp_pac_bayes.Aggregate.vote_risk ~posterior:rho ~predict test in
      let bound = Dp_pac_bayes.Aggregate.factor_two_bound ~gibbs_risk:gr in
      Table.add_row agg
        [
          Table.fcell beta; Table.fcell gr; Table.fcell vr; Table.fcell bound;
          (if vr <= bound +. 1e-12 then "yes" else "NO");
        ])
    [ 1.; 5.; 25.; 125. ];
  Table.print fmt agg;
  Format.fprintf fmt
    "(informed priors shrink the KL term and the bound, but releasing@.\
    \ a draw then costs ~4x the privacy at the same beta — the paper's@.\
    \ tradeoff again, now on the prior side. The vote is never worse@.\
    \ than the factor-two bound and usually beats the Gibbs risk.)@."
