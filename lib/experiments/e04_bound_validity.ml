(* E4 — Theorem 3.1: validity and tightness of the PAC-Bayes bounds.

   Over many resampled training sets, the Catoni bound evaluated on the
   Gibbs posterior must cover the true risk with frequency >= 1 - delta;
   tightness (bound minus true Gibbs risk) is compared across Catoni,
   its linearization, McAllester and Maurer-Seeger, as a function of n.
   The true risk of each grid predictor is computed from a large pool
   (known distribution => effectively exact). *)

let grid = Array.init 41 (fun i -> -2. +. (0.1 *. float_of_int i))

let zero_one theta (x, y) =
  if (if x >= theta then 1. else -1.) = y then 0. else 1.

let make_sample ~n g =
  Array.init n (fun _ ->
      let y = if Dp_rng.Prng.bool g then 1. else -1. in
      (Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g, y))

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let pool = make_sample ~n:(if quick then 20_000 else 100_000) g in
  let true_risks =
    Array.map (fun th -> Dp_pac_bayes.Risk.empirical ~loss:zero_one pool th) grid
  in
  let trials = if quick then 60 else 400 in
  let delta = 0.05 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E4: PAC-Bayes bound validity & tightness (delta=%.2f, %d resamples)"
           delta trials)
      ~columns:
        [
          "n"; "beta"; "cover(catoni)"; "cover(seeger)"; "gap(catoni)";
          "gap(linear)"; "gap(mcall)"; "gap(seeger)";
        ]
  in
  let configs = if quick then [ (100, 20.) ] else [ (30, 6.); (100, 20.); (300, 60.); (1000, 200.) ] in
  List.iter
    (fun (n, beta) ->
      let cov_c = ref 0 and cov_s = ref 0 in
      let gap_c = ref 0. and gap_l = ref 0. and gap_m = ref 0. and gap_s = ref 0. in
      for _ = 1 to trials do
        let sample = make_sample ~n g in
        let risks = Dp_pac_bayes.Risk.empirical_all ~loss:zero_one sample grid in
        let t = Dp_pac_bayes.Gibbs.of_risks ~predictors:grid ~beta ~risks () in
        let emp = Dp_pac_bayes.Gibbs.expected_empirical_risk t in
        let kl = Dp_pac_bayes.Gibbs.kl_from_prior t in
        let p = Dp_pac_bayes.Gibbs.probabilities t in
        let truth =
          Dp_math.Numeric.float_sum_range (Array.length p) (fun i ->
              p.(i) *. true_risks.(i))
        in
        let c = Dp_pac_bayes.Bounds.catoni ~beta ~n ~delta ~emp_risk:emp ~kl in
        let l = Dp_pac_bayes.Bounds.linearized ~beta ~n ~delta ~emp_risk:emp ~kl in
        let m = Dp_pac_bayes.Bounds.mcallester ~n ~delta ~emp_risk:emp ~kl in
        let s = Dp_pac_bayes.Bounds.seeger ~n ~delta ~emp_risk:emp ~kl in
        if truth <= c then incr cov_c;
        if truth <= s then incr cov_s;
        gap_c := !gap_c +. (c -. truth);
        gap_l := !gap_l +. (l -. truth);
        gap_m := !gap_m +. (m -. truth);
        gap_s := !gap_s +. (s -. truth)
      done;
      let ft = float_of_int trials in
      Table.add_rowf table
        [
          float_of_int n; beta;
          float_of_int !cov_c /. ft;
          float_of_int !cov_s /. ft;
          !gap_c /. ft; !gap_l /. ft; !gap_m /. ft; !gap_s /. ft;
        ])
    configs;
  Table.print fmt table;
  Format.fprintf fmt
    "(coverage must be >= 0.95; gaps shrink with n; Seeger is the@.\
    \ tightest, the linearized Catoni the loosest — ablation A4.)@."
