(* E20 — private quantiles through the exponential mechanism: the
   standard continuous-output instance of Theorem 2.3, with the exact
   gap-mixture sampler. Utility = rank error; expected shape: rank
   error ~ O(log n / eps) independent of the data scale, and the
   Laplace-on-the-empirical-quantile strawman is far worse because its
   sensitivity is the whole data range. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let reps = if quick then 50 else 400 in
  let table =
    Table.create
      ~title:"E20: private median, mean rank error over releases"
      ~columns:
        [ "n"; "eps"; "exp-mech rank err"; "laplace rank err"; "exact value" ]
  in
  List.iter
    (fun n ->
      (* heavy-tailed data on [0, 100]: scale matters for the strawman *)
      let xs =
        Array.init n (fun _ ->
            Dp_math.Numeric.clamp ~lo:0. ~hi:100.
              (10. *. Dp_rng.Sampler.gamma ~shape:2. ~scale:1. g))
      in
      let exact = Dp_learn.Quantile.exact ~q:0.5 xs in
      List.iter
        (fun eps ->
          let em =
            Dp_math.Summation.mean
              (Array.init reps (fun _ ->
                   let est =
                     Dp_learn.Quantile.estimate ~epsilon:eps ~q:0.5 ~lo:0.
                       ~hi:100. xs g
                   in
                   float_of_int (Dp_learn.Quantile.rank_error ~q:0.5 ~estimate:est xs)))
          in
          (* strawman: empirical median + Laplace(range/eps) — the
             median's global sensitivity is the full range *)
          let lap =
            Dp_math.Summation.mean
              (Array.init reps (fun _ ->
                   let m =
                     Dp_mechanism.Laplace.create ~sensitivity:100. ~epsilon:eps
                   in
                   let est =
                     Dp_math.Numeric.clamp ~lo:0. ~hi:100.
                       (Dp_mechanism.Laplace.release m ~value:exact g)
                   in
                   float_of_int (Dp_learn.Quantile.rank_error ~q:0.5 ~estimate:est xs)))
          in
          Table.add_rowf table [ float_of_int n; eps; em; lap; exact ])
        [ 0.1; 0.5; 2. ])
    (if quick then [ 200 ] else [ 200; 2000 ]);
  Table.print fmt table;
  Format.fprintf fmt
    "(the exponential mechanism's rank error is tiny and ~independent@.\
    \ of n; the Laplace strawman, whose sensitivity is the whole data@.\
    \ range, is near-useless at small eps.)@."
