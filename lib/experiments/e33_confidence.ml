(* E33 — noise-aware confidence intervals for private means.

   Coverage study: data uniform on [0,1], the private mean released at
   several (eps, n), and two 95% intervals built around it — the naive
   one (pretends the release is the sample mean) and the noise-aware
   one (adds the exact Laplace quantile and a privately estimated
   variance). Coverage of the TRUE population mean over many runs:
   naive collapses at small eps*n; noise-aware stays >= 0.95 at the
   price of width. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let trials = if quick then 200 else 1000 in
  let confidence = 0.95 in
  let true_mean = 0.5 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "E33: 95%% CI coverage for the private mean (%d runs)"
           trials)
      ~columns:
        [
          "n"; "eps"; "aware cover"; "aware width"; "naive cover";
          "naive width";
        ]
  in
  List.iter
    (fun (n, eps) ->
      let aware_cover = ref 0 and naive_cover = ref 0 in
      let aware_width = ref 0. and naive_width = ref 0. in
      for _ = 1 to trials do
        let xs = Array.init n (fun _ -> Dp_rng.Prng.float g) in
        let iv =
          Dp_learn.Confidence.private_mean_ci ~epsilon:eps ~confidence ~lo:0.
            ~hi:1. xs g
        in
        if iv.Dp_learn.Confidence.lo <= true_mean && true_mean <= iv.Dp_learn.Confidence.hi
        then incr aware_cover;
        aware_width := !aware_width +. (iv.Dp_learn.Confidence.hi -. iv.Dp_learn.Confidence.lo);
        let nv =
          Dp_learn.Confidence.naive_ci ~confidence ~lo:0. ~hi:1.
            ~release:iv.Dp_learn.Confidence.estimate ~n xs
        in
        if nv.Dp_learn.Confidence.lo <= true_mean && true_mean <= nv.Dp_learn.Confidence.hi
        then incr naive_cover;
        naive_width := !naive_width +. (nv.Dp_learn.Confidence.hi -. nv.Dp_learn.Confidence.lo)
      done;
      let ft = float_of_int trials in
      Table.add_rowf table
        [
          float_of_int n; eps;
          float_of_int !aware_cover /. ft;
          !aware_width /. ft;
          float_of_int !naive_cover /. ft;
          !naive_width /. ft;
        ])
    [ (100, 0.2); (100, 1.); (1000, 0.2); (1000, 1.); (10000, 1.) ];
  Table.print fmt table;
  Format.fprintf fmt
    "(the naive interval, blind to the mechanism, under-covers badly@.\
    \ when the noise dominates (small eps*n); the noise-aware interval@.\
    \ keeps >= 95%% coverage everywhere by paying width.)@."
