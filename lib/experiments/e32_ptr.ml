(* E32 — propose-test-release vs smooth sensitivity for the private
   median.

   Same concentrated-data setting as E28. PTR pays a delta and
   sometimes refuses, but its noise is Laplace at the LOCAL
   sensitivity — light tails; smooth sensitivity never refuses but
   pays Cauchy tails. Median absolute error (released runs only) and
   refusal rate across eps. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let reps = if quick then 200 else 1000 in
  let lo = 0. and hi = 1000. in
  let delta = 1e-6 in
  let n = 201 in
  let xs =
    Array.init n (fun _ ->
        Dp_math.Numeric.clamp ~lo ~hi
          (500. +. Dp_rng.Sampler.gaussian ~mean:0. ~std:30. g))
  in
  let truth = Dp_stats.Describe.median xs in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E32: PTR vs smooth sensitivity, private median (n=%d, delta=%g)" n
           delta)
      ~columns:
        [ "eps"; "PTR med err"; "PTR refusals"; "smooth med err"; "exp-mech" ]
  in
  List.iter
    (fun eps ->
      let ptr_errs = ref [] and refusals = ref 0 in
      for _ = 1 to reps do
        match
          Dp_mechanism.Propose_test_release.private_median ~epsilon:eps ~delta
            ~lo ~hi xs g
        with
        | Dp_mechanism.Propose_test_release.Released v ->
            ptr_errs := Float.abs (v -. truth) :: !ptr_errs
        | Dp_mechanism.Propose_test_release.Refused -> incr refusals
      done;
      let med l =
        match l with
        | [] -> nan
        | l -> Dp_stats.Describe.median (Array.of_list l)
      in
      let smooth_err =
        Dp_stats.Describe.median
          (Array.init reps (fun _ ->
               Float.abs
                 (Dp_mechanism.Smooth_sensitivity.private_median ~epsilon:eps
                    ~lo ~hi xs g
                 -. truth)))
      in
      let em_err =
        Dp_stats.Describe.median
          (Array.init reps (fun _ ->
               Float.abs
                 (Dp_learn.Quantile.estimate ~epsilon:eps ~q:0.5 ~lo ~hi xs g
                 -. truth)))
      in
      Table.add_rowf table
        [
          eps;
          med !ptr_errs;
          float_of_int !refusals /. float_of_int reps;
          smooth_err;
          em_err;
        ])
    [ 0.2; 1.; 5. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(PTR's Laplace-at-local-sensitivity noise beats the smooth-@.\
    \ sensitivity Cauchy noise on concentrated data once the stability@.\
    \ test passes reliably; its price is the delta and the refusals at@.\
    \ small eps.)@."
