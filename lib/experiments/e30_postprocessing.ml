(* E30 — post-processing invariance, in channel language.

   The Fig. 1 channel composed with stochastic post-processors of
   increasing destructiveness: both I(Z; theta') and the exact channel
   epsilon can only decrease (data-processing inequality / DP
   post-processing invariance), reaching 0 at the total eraser.
   Parallel composition of two independent Gibbs releases shows the
   other direction: epsilons add, informations subadd. *)

let run ?(quick = false) ~seed fmt =
  ignore quick;
  ignore seed;
  let loss j z = if j = z then 0. else 1. in
  (* base channel with a 4-predictor alphabet so post-processing has
     room to act: thresholds over a 4-letter universe *)
  let gc =
    Dp_pac_bayes.Gibbs_channel.build
      ~universe_probs:[| 0.4; 0.3; 0.2; 0.1 |]
      ~n:3
      ~predictors:[| 0; 1; 2; 3 |]
      ~beta:3. ~loss ()
  in
  let ch = gc.Dp_pac_bayes.Gibbs_channel.channel in
  let neighbors = Dp_pac_bayes.Gibbs_channel.neighbor_indices gc in
  let eps c = Dp_info.Channel.dp_epsilon c ~neighbors in
  let table =
    Table.create
      ~title:"E30: post-processing the Fig.1 channel (DPI & DP invariance)"
      ~columns:[ "post-processor"; "I(Z;.) nats"; "exact eps" ]
  in
  let row name c =
    Table.add_row table
      [ name; Table.fcell (Dp_info.Channel.mutual_information c); Table.fcell (eps c) ]
  in
  row "identity" ch;
  row "merge {0,1},{2,3}"
    (Dp_info.Channel_ops.cascade ch
       ~post:(Dp_info.Channel_ops.deterministic_post ~outputs:4 (fun y -> y / 2 * 2)));
  List.iter
    (fun flip ->
      row
        (Printf.sprintf "symmetric noise %.0f%%" (flip *. 100.))
        (Dp_info.Channel_ops.cascade ch
           ~post:(Dp_info.Channel_ops.binary_symmetric_post ~outputs:4 ~flip)))
    [ 0.1; 0.3; 0.75 ];
  row "total eraser"
    (Dp_info.Channel_ops.cascade ch
       ~post:(Dp_info.Channel_ops.deterministic_post ~outputs:4 (fun _ -> 0)));
  Table.print fmt table;
  (* parallel composition *)
  let prod = Dp_info.Channel_ops.product ch ch in
  Format.fprintf fmt
    "@.parallel composition of two independent releases:@.\
    \  I = %.4f (vs 2 x %.4f = %.4f: subadditive)@.\
    \  eps = %.4f (vs 2 x %.4f = %.4f: additive)@."
    (Dp_info.Channel.mutual_information prod)
    (Dp_info.Channel.mutual_information ch)
    (2. *. Dp_info.Channel.mutual_information ch)
    (Dp_info.Channel.dp_epsilon prod ~neighbors)
    (eps ch) (2. *. eps ch);
  Format.fprintf fmt
    "(every post-processed row has I and eps at most the identity row —@.\
    \ nothing computed FROM a private release can be less private or@.\
    \ more informative; the flip=75%% channel erases everything.)@."
