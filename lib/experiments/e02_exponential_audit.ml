(* E2 — Theorem 2.3 (exponential mechanism): exact privacy and utility.

   Private selection: choose the candidate closest to the database
   mean over the universe {0..8}. The quality q(D,u) = -|u - mean(D)|
   has sensitivity Δq = range/n. Because the output distribution is in
   closed form, the privacy loss is measured exactly over all
   neighbours of a sampled database (no Monte-Carlo slack), and
   compared to 2·ε·Δq. Utility: expected quality and the
   McSherry-Talwar tail bound, with report-noisy-max as the practical
   comparator. *)

let candidates = Array.init 9 Fun.id

let quality db u =
  let mean =
    float_of_int (Array.fold_left ( + ) 0 db) /. float_of_int (Array.length db)
  in
  -.Float.abs (float_of_int u -. mean)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let n = 20 in
  let sens = 8. /. float_of_int n in
  let db = Array.init n (fun _ -> Dp_rng.Prng.int g 9) in
  let build eps d =
    Dp_mechanism.Exponential.create ~candidates ~quality:(quality d)
      ~sensitivity:sens ~epsilon:eps ()
  in
  let table =
    Table.create
      ~title:
        "E2: Exponential mechanism (private selection, |U|=9, n=20, dq=0.4)"
      ~columns:
        [
          "exponent";
          "eps=2eDq";
          "eps_exact";
          "E[quality]";
          "max quality";
          "util bound(5%)";
          "noisy-max E[q]";
        ]
  in
  let nm_trials = if quick then 500 else 5000 in
  List.iter
    (fun eps ->
      let m = build eps db in
      (* exact privacy loss over all replace-one neighbours *)
      let worst = ref 0. in
      Array.iteri
        (fun i _ ->
          for v = 0 to 8 do
            if v <> db.(i) then begin
              let d' = Array.copy db in
              d'.(i) <- v;
              worst :=
                Float.max !worst
                  (Dp_mechanism.Exponential.log_ratio_bound m (build eps d'))
            end
          done)
        db;
      let privacy = Dp_mechanism.Exponential.privacy_epsilon m in
      (* noisy-max with the same total privacy budget *)
      let nm_expected =
        Dp_math.Summation.mean
          (Array.init nm_trials (fun _ ->
               let u =
                 Dp_mechanism.Noisy_max.select ~epsilon:privacy
                   ~sensitivity:sens
                   ~scores:(Array.map (quality db) candidates)
                   g
               in
               quality db u))
      in
      Table.add_rowf table
        [
          eps;
          privacy;
          !worst;
          Dp_mechanism.Exponential.expected_quality m;
          Dp_mechanism.Exponential.max_quality m;
          Dp_mechanism.Exponential.utility_bound m ~failure_prob:0.05;
          nm_expected;
        ])
    [ 0.25; 0.5; 1.0; 2.0; 5.0 ];
  Table.print fmt table;
  Format.fprintf fmt
    "(eps_exact <= eps=2eDq on every row verifies Thm 2.3; E[quality] rises@.\
    \ toward max quality as the exponent grows.)@."
