(* E9 — utility of the basic Laplace-based learners: private mean and
   private histogram density estimation (the paper's §5 target).

   Mean: measured MAE over repeated releases vs the analytic value
   (hi-lo)/(n*eps) — the 1/(eps*n) law. Density: L1 error of the noisy
   histogram vs the non-private histogram and the truth, across eps. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let reps = if quick then 100 else 1000 in
  let mean_table =
    Table.create ~title:"E9a: private mean, measured vs analytic MAE"
      ~columns:[ "n"; "eps"; "MAE measured"; "MAE analytic"; "ratio" ]
  in
  List.iter
    (fun n ->
      let xs = Array.init n (fun _ -> Dp_rng.Prng.float g) in
      let truth = Dp_learn.Mean_estimator.non_private ~lo:0. ~hi:1. xs in
      List.iter
        (fun eps ->
          let mae =
            Dp_math.Summation.mean
              (Array.init reps (fun _ ->
                   Float.abs
                     (Dp_learn.Mean_estimator.laplace ~epsilon:eps ~lo:0. ~hi:1.
                        xs g
                     -. truth)))
          in
          let analytic =
            Dp_learn.Mean_estimator.expected_absolute_error ~epsilon:eps ~lo:0.
              ~hi:1. ~n
          in
          Table.add_rowf mean_table
            [ float_of_int n; eps; mae; analytic; mae /. analytic ])
        [ 0.1; 1.; 10. ])
    [ 100; 1000; 10000 ];
  Table.print fmt mean_table;
  let weights = [| 0.4; 0.6 |] and means = [| -1.5; 1. |] and stds = [| 0.4; 0.7 |] in
  let truth = Dp_dataset.Synthetic.mixture_density ~weights ~means ~stds in
  let density_table =
    Table.create
      ~title:"E9b: private histogram density (mixture, 40 bins), L1 error"
      ~columns:[ "n"; "eps"; "L1 private"; "L1 non-private"; "L1 KDE" ]
  in
  List.iter
    (fun n ->
      let xs =
        Dp_dataset.Synthetic.gaussian_mixture_1d ~weights ~means ~stds ~n g
      in
      let np = Dp_learn.Density.fit_non_private ~lo:(-4.) ~hi:4. ~bins:40 xs in
      let err_np = Dp_learn.Density.l1_error np ~true_density:truth in
      let kde = Dp_stats.Kde.fit xs in
      let err_kde =
        (* same 16-point-per-bin midpoint integration as Density.l1_error *)
        let w = 8. /. 40. in
        Dp_math.Numeric.float_sum_range 40 (fun i ->
            let x0 = -4. +. (float_of_int i *. w) in
            Dp_math.Numeric.float_sum_range 16 (fun k ->
                let x = x0 +. ((float_of_int k +. 0.5) /. 16. *. w) in
                Float.abs (Dp_stats.Kde.density kde x -. truth x) *. w /. 16.))
      in
      List.iter
        (fun eps ->
          let avg_reps = if quick then 3 else 10 in
          let err_p =
            Dp_math.Summation.mean
              (Array.init avg_reps (fun _ ->
                   let e =
                     Dp_learn.Density.fit_private ~epsilon:eps ~lo:(-4.) ~hi:4.
                       ~bins:40 xs g
                   in
                   Dp_learn.Density.l1_error e ~true_density:truth))
          in
          Table.add_rowf density_table
            [ float_of_int n; eps; err_p; err_np; err_kde ])
        [ 0.1; 1.; 10. ])
    (if quick then [ 2000 ] else [ 500; 5000; 50000 ]);
  Table.print fmt density_table;
  Format.fprintf fmt
    "(mean: measured/analytic ratio ~ 1 — the 1/(eps*n) law; density:@.\
    \ the private L1 error approaches the non-private one as eps*n grows.)@."
