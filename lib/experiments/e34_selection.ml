(* E34 — private selection shootout at EQUAL privacy: exponential
   mechanism vs permute-and-flip vs report-noisy-max.

   The E2 task (pick the candidate closest to the database mean,
   |U| = 9, dq = 8/n). Every mechanism is run at the SAME target eps;
   expected quality is exact for EM and P&F (closed-form / subset-DP
   distributions) and Monte-Carlo for noisy-max. P&F must dominate EM
   on every row (McKenna-Sheldon's theorem), and both mechanisms'
   exact neighbour-sweep privacy must respect eps. *)

let candidates = Array.init 9 Fun.id

let quality db u =
  let mean =
    float_of_int (Array.fold_left ( + ) 0 db) /. float_of_int (Array.length db)
  in
  -.Float.abs (float_of_int u -. mean)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let n = 20 in
  let sens = 8. /. float_of_int n in
  let db = Array.init n (fun _ -> Dp_rng.Prng.int g 9) in
  let nm_trials = if quick then 1000 else 10_000 in
  let table =
    Table.create
      ~title:"E34: selection at equal eps — EM vs permute-and-flip vs noisy-max"
      ~columns:
        [
          "eps"; "E[q] EM"; "E[q] P&F"; "E[q] noisy-max"; "eps_exact EM";
          "eps_exact P&F"; "P&F wins";
        ]
  in
  List.iter
    (fun eps ->
      let em d =
        Dp_mechanism.Exponential.create ~candidates ~quality:(quality d)
          ~sensitivity:sens
          ~epsilon:
            (Dp_mechanism.Exponential.calibrate_exponent ~target_epsilon:eps
               ~sensitivity:sens)
          ()
      in
      let pf d =
        Dp_mechanism.Permute_and_flip.create ~candidates ~quality:(quality d)
          ~sensitivity:sens ~epsilon:eps ()
      in
      let eq_em = Dp_mechanism.Exponential.expected_quality (em db) in
      let eq_pf = Dp_mechanism.Permute_and_flip.expected_quality (pf db) in
      (* report-noisy-max with Lap(d/eps) is eps-DP only for MONOTONE
         (counting) scores; this quality is not monotone, so the fair
         comparison halves its budget (noise scale 2d/eps) *)
      let eq_nm =
        Dp_math.Summation.mean
          (Array.init nm_trials (fun _ ->
               quality db
                 (Dp_mechanism.Noisy_max.select ~epsilon:(eps /. 2.)
                    ~sensitivity:sens
                    ~scores:(Array.map (quality db) candidates)
                    g)))
      in
      (* exact privacy over replace-one neighbours *)
      let p_em = Dp_mechanism.Exponential.probabilities (em db) in
      let p_pf = Dp_mechanism.Permute_and_flip.probabilities (pf db) in
      let worst_em = ref 0. and worst_pf = ref 0. in
      let neighbours = if quick then 30 else 150 in
      for _ = 1 to neighbours do
        let d' = Array.copy db in
        d'.(Dp_rng.Prng.int g n) <- Dp_rng.Prng.int g 9;
        worst_em :=
          Float.max !worst_em
            (Dp_audit.Auditor.audit_exact ~p:p_em
               ~q:(Dp_mechanism.Exponential.probabilities (em d')));
        worst_pf :=
          Float.max !worst_pf
            (Dp_audit.Auditor.audit_exact ~p:p_pf
               ~q:(Dp_mechanism.Permute_and_flip.probabilities (pf d')))
      done;
      Table.add_row table
        [
          Table.fcell eps;
          Table.fcell eq_em;
          Table.fcell eq_pf;
          Table.fcell eq_nm;
          Table.fcell !worst_em;
          Table.fcell !worst_pf;
          (if eq_pf >= eq_em -. 1e-12 then "yes" else "NO");
        ])
    [ 0.25; 0.5; 1.; 2.; 5. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(permute-and-flip's expected quality dominates the exponential@.\
    \ mechanism on every row — McKenna-Sheldon — and both exact@.\
    \ neighbour sweeps stay below the target eps.)@."
