type t = {
  title : string;
  columns : string list;
  mutable body : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; body = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): expected %d cells, got %d" t.title
         (List.length t.columns) (List.length row));
  t.body <- row :: t.body

let fcell x =
  if Float.is_integer x && Float.abs x < 1e9 then
    Printf.sprintf "%g" x
  else Printf.sprintf "%.4g" x

let add_rowf t row = add_row t (List.map fcell row)

let rows t = List.rev t.body

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c
      | _ -> '_')
    (String.lowercase_ascii title)

let save_csv t ~dir =
  let path = Filename.concat dir (slug t.title ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let cell s =
        if String.contains s ',' then "\"" ^ s ^ "\"" else s
      in
      let line row = String.concat "," (List.map cell row) ^ "\n" in
      output_string oc (line t.columns);
      List.iter (fun r -> output_string oc (line r)) (rows t))

let export_dir = ref None

let set_export_dir d = export_dir := d

let print fmt t =
  (match !export_dir with Some dir -> save_csv t ~dir | None -> ());
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let line ch =
    String.concat "-+-"
      (Array.to_list (Array.map (fun w -> String.make w ch) widths))
  in
  Format.fprintf fmt "@.== %s ==@." t.title;
  Format.fprintf fmt "%s@."
    (String.concat " | " (List.mapi pad t.columns));
  Format.fprintf fmt "%s@." (line '-');
  List.iter
    (fun r -> Format.fprintf fmt "%s@." (String.concat " | " (List.mapi pad r)))
    (rows t)
