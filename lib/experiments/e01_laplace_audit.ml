(* E1 — Empirical verification of Theorem 2.2 (Laplace mechanism).

   Count query over a 0/1 database of n = 100 individuals; for each ε
   the mechanism is audited on the worst-case neighbour pair (flip one
   record) both empirically (binned frequencies over many runs) and in
   closed form (the Laplace output density is known). A KS test checks
   the Laplace sampler against its analytic CDF. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let n = 100 in
  let trials = if quick then 20_000 else 200_000 in
  let db = Dp_dataset.Synthetic.bernoulli_database ~p:0.5 ~n g in
  let d, d' = Dp_dataset.Neighbors.worst_case_pair_for_count db in
  let count db = float_of_int (Array.fold_left ( + ) 0 db) in
  let table =
    Table.create ~title:"E1: Laplace mechanism privacy audit (count query, n=100)"
      ~columns:
        [ "eps"; "eps_hat(emp)"; "eps_lower"; "eps_exact"; "pass"; "KS p-value" ]
  in
  List.iter
    (fun epsilon ->
      let m = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon in
      let v = count d and v' = count d' in
      (* +-4 noise scales around the query values: the outermost bins
         still hold ~1% of the mass, so no bin is sampling-starved *)
      let lo = Float.min v v' -. (4. /. epsilon) in
      let hi = Float.max v v' +. (4. /. epsilon) in
      let report =
        Dp_audit.Auditor.audit_continuous ~trials ~bins:16 ~lo ~hi
          ~epsilon_theory:epsilon
          ~run:(fun g' -> Dp_mechanism.Laplace.release m ~value:v g')
          ~run':(fun g' -> Dp_mechanism.Laplace.release m ~value:v' g')
          g
      in
      (* exact privacy loss sup over a fine grid of outputs *)
      let exact =
        let worst = ref 0. in
        for i = 0 to 400 do
          let y = lo +. ((hi -. lo) *. float_of_int i /. 400.) in
          worst :=
            Float.max !worst
              (Float.abs
                 (Dp_mechanism.Laplace.log_likelihood_ratio m ~value1:v
                    ~value2:v' y))
        done;
        !worst
      in
      let ks =
        let xs =
          Array.init (if quick then 2000 else 5000) (fun _ ->
              Dp_mechanism.Laplace.release m ~value:v g)
        in
        (Dp_stats.Gof.ks_one_sample ~cdf:(Dp_mechanism.Laplace.cdf m ~value:v) xs)
          .Dp_stats.Gof.p_value
      in
      Table.add_row table
        [
          Table.fcell epsilon;
          Table.fcell report.Dp_audit.Auditor.epsilon_hat;
          Table.fcell report.Dp_audit.Auditor.epsilon_lower;
          Table.fcell exact;
          (if Dp_audit.Auditor.passes report ~slack:(0.1 *. epsilon) then "yes"
           else "NO");
          Table.fcell ks;
        ])
    [ 0.1; 0.5; 1.0; 2.0 ];
  Table.print fmt table
