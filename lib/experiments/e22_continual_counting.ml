(* E22 — continual counting: the binary (tree) mechanism vs naive
   re-release.

   A 0/1 stream of length T, the running count released at every step
   under total budget eps. Naive: re-release with Laplace(T/eps) each
   step (budget split across T releases). Binary mechanism: O(log T)
   noise per release. Mean absolute error over the stream. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let epsilon = 1. in
  let reps = if quick then 3 else 20 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "E22: continual counting MAE over the stream (eps=%g)"
           epsilon)
      ~columns:
        [
          "T"; "binary MAE"; "naive MAE"; "ratio"; "predicted binary std";
        ]
  in
  List.iter
    (fun horizon ->
      let mae_binary = ref 0. and mae_naive = ref 0. in
      for _ = 1 to reps do
        let bm = Dp_mechanism.Binary_mechanism.create ~epsilon ~horizon g in
        let naive_scale = float_of_int horizon /. epsilon in
        let true_count = ref 0 in
        for _ = 1 to horizon do
          let bit = if Dp_rng.Sampler.bernoulli ~p:0.3 g then 1 else 0 in
          Dp_mechanism.Binary_mechanism.observe bm bit;
          true_count := !true_count + bit;
          mae_binary :=
            !mae_binary
            +. Float.abs
                 (Dp_mechanism.Binary_mechanism.current_count bm
                 -. float_of_int !true_count);
          let naive =
            float_of_int !true_count
            +. Dp_rng.Sampler.laplace ~mean:0. ~scale:naive_scale g
          in
          mae_naive := !mae_naive +. Float.abs (naive -. float_of_int !true_count)
        done
      done;
      let denom = float_of_int (reps * horizon) in
      let mb = !mae_binary /. denom and mn = !mae_naive /. denom in
      Table.add_rowf table
        [
          float_of_int horizon;
          mb;
          mn;
          mn /. mb;
          Dp_mechanism.Binary_mechanism.expected_noise_std ~epsilon ~horizon;
        ])
    (if quick then [ 64; 512 ] else [ 64; 512; 4096; 32768 ]);
  Table.print fmt table;
  Format.fprintf fmt
    "(binary-mechanism error grows polylogarithmically in T; the naive@.\
    \ split grows linearly — the gap widens without bound.)@."
