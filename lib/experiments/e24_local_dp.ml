(* E24 — local differential privacy: frequency estimation without a
   trusted curator.

   n users each hold a value from a k-ary Zipf-distributed alphabet;
   each randomizes locally (generalized randomized response vs unary
   encoding) and the curator debiases. L2 estimation error vs eps and
   k; the GRR analytic error law is checked, and the GRR/unary
   crossover in k (GRR wins small alphabets, unary large ones) is the
   expected shape. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let n = if quick then 20_000 else 100_000 in
  let table =
    Table.create
      ~title:(Printf.sprintf "E24: local-DP frequency estimation, L2 error (n=%d)" n)
      ~columns:[ "k"; "eps"; "GRR"; "GRR analytic"; "unary" ]
  in
  List.iter
    (fun k ->
      (* Zipf truth *)
      let weights = Array.init k (fun i -> 1. /. float_of_int (i + 1)) in
      let z = Dp_math.Summation.sum weights in
      let truth = Array.map (fun w -> w /. z) weights in
      let values =
        let table = Dp_rng.Alias.create weights in
        Array.init n (fun _ -> Dp_rng.Alias.sample table g)
      in
      List.iter
        (fun eps ->
          let l2 est =
            sqrt
              (Dp_math.Numeric.float_sum_range k (fun i ->
                   Dp_math.Numeric.sq (est.(i) -. truth.(i))))
          in
          let grr = Dp_mechanism.Local_dp.Grr.create ~epsilon:eps ~k in
          let reports = Array.map (fun v -> Dp_mechanism.Local_dp.Grr.respond grr v g) values in
          let err_grr = l2 (Dp_mechanism.Local_dp.Grr.estimate_frequencies grr reports) in
          let ue = Dp_mechanism.Local_dp.Unary.create ~epsilon:eps ~k in
          let reports = Array.map (fun v -> Dp_mechanism.Local_dp.Unary.respond ue v g) values in
          let err_ue = l2 (Dp_mechanism.Local_dp.Unary.estimate_frequencies ue reports) in
          let analytic =
            (* per-cell std times sqrt k *)
            Dp_mechanism.Local_dp.expected_l2_error_grr ~epsilon:eps ~k ~n
            *. sqrt (float_of_int k)
          in
          Table.add_rowf table [ float_of_int k; eps; err_grr; analytic; err_ue ])
        [ 0.5; 2. ])
    (if quick then [ 4; 64 ] else [ 4; 16; 64; 256 ]);
  Table.print fmt table;
  Format.fprintf fmt
    "(GRR error grows with k while unary encoding's does not: GRR wins@.\
    \ small alphabets, unary large ones; the GRR error tracks its@.\
    \ analytic law.)@."
