(* E12 — Figure 1 made concrete: print the information channel
   P(theta | Z) for a toy learning problem, with per-row posteriors,
   the output marginal (the optimal prior), mutual information and the
   exact privacy level. *)

let run ?(quick = false) ~seed fmt =
  ignore quick;
  ignore seed;
  let loss j z = if j = z then 0. else 1. in
  let beta = 3. in
  let gc =
    Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.5; 0.5 |] ~n:3
      ~predictors:[| 0; 1 |] ~beta ~loss ()
  in
  Format.fprintf fmt
    "@.== E12: the Figure 1 information channel, Z -> P(theta|Z) -> theta ==@.";
  Format.fprintf fmt
    "universe {0,1}, n=3 records, predictors {0,1}, 0-1 loss, beta=%g@.@." beta;
  Format.fprintf fmt "%-10s %-8s  %-10s %-10s  %s@." "sample Z" "P(Z)"
    "P(th=0|Z)" "P(th=1|Z)" "emp.risk(th=0,th=1)";
  Array.iteri
    (fun i s ->
      let row = Dp_info.Channel.row gc.Dp_pac_bayes.Gibbs_channel.channel i in
      Format.fprintf fmt "%-10s %-8.4f  %-10.4f %-10.4f  (%.3f, %.3f)@."
        (String.concat ""
           (Array.to_list (Array.map string_of_int s)))
        gc.Dp_pac_bayes.Gibbs_channel.input.(i)
        row.(0) row.(1)
        gc.Dp_pac_bayes.Gibbs_channel.risk.(i).(0)
        gc.Dp_pac_bayes.Gibbs_channel.risk.(i).(1))
    gc.Dp_pac_bayes.Gibbs_channel.samples;
  let marginal =
    Dp_info.Channel.output_marginal gc.Dp_pac_bayes.Gibbs_channel.channel
  in
  Format.fprintf fmt "@.output marginal (optimal prior pi_OPT): (%.4f, %.4f)@."
    marginal.(0) marginal.(1);
  Format.fprintf fmt "I(Z; theta) = %.4f nats@."
    (Dp_pac_bayes.Gibbs_channel.mutual_information gc);
  Format.fprintf fmt "exact channel epsilon = %.4f  (bound 2*beta*dR = %.4f)@."
    (Dp_pac_bayes.Gibbs_channel.dp_epsilon gc)
    (Dp_pac_bayes.Gibbs_channel.theoretical_epsilon gc ~loss_lo:0. ~loss_hi:1.)
