(* E11 — §4 / claim C6: the alternating (Blahut-Arimoto-style)
   minimization of E R̂ + I/beta converges to the Gibbs channel under
   the optimal prior pi = E_Z posterior.

   The risk matrix comes from the exact learning channel of E6. The
   table reports iterations to convergence, the converged objective vs
   the uniform-prior Gibbs channel objective (must be <=), and the
   fixed-point residual ||prior - marginal||_1 (must be ~0). *)

let run ?(quick = false) ~seed fmt =
  ignore quick;
  ignore seed;
  let loss j z = if j = z then 0. else 1. in
  let table =
    Table.create
      ~title:"E11: alternating minimization of E[risk] + I/beta (Thm 4.2)"
      ~columns:
        [
          "beta"; "iters"; "objective*"; "obj uniform-prior"; "improvement";
          "fixed-point resid";
        ]
  in
  List.iter
    (fun beta ->
      let gc =
        Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.7; 0.3 |] ~n:5
          ~predictors:[| 0; 1 |] ~beta ~loss ()
      in
      let r =
        Dp_info.Rate_risk.solve ~input:gc.Dp_pac_bayes.Gibbs_channel.input
          ~risk:gc.Dp_pac_bayes.Gibbs_channel.risk ~beta ()
      in
      let marginal = Dp_info.Channel.output_marginal r.Dp_info.Rate_risk.channel in
      let resid =
        Dp_math.Numeric.float_sum_range (Array.length marginal) (fun j ->
            Float.abs (marginal.(j) -. r.Dp_info.Rate_risk.prior.(j)))
      in
      let uniform_obj = Dp_pac_bayes.Gibbs_channel.objective gc in
      Table.add_rowf table
        [
          beta;
          float_of_int r.Dp_info.Rate_risk.iterations;
          r.Dp_info.Rate_risk.objective;
          uniform_obj;
          uniform_obj -. r.Dp_info.Rate_risk.objective;
          resid;
        ])
    [ 0.5; 2.; 8.; 32. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(objective* <= uniform-prior objective: optimizing the prior to@.\
    \ E_Z posterior can only help — Catoni's pi_OPT observation; the@.\
    \ fixed-point residual ~ 0 confirms convergence.)@."
