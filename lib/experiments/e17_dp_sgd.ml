(* E17 — DP-SGD vs the paper-era mechanisms.

   The modern private learner (per-example clipping + Gaussian noise +
   RDP accounting) on the E8 logistic task. DP-SGD is (eps, delta)-DP
   rather than pure eps-DP, so the comparison fixes delta = 1e-5 and
   sweeps the noise multiplier; each row reports the accounted eps and
   the accuracies of DP-SGD and the two pure-eps learners run at that
   same eps. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let dim = 5 in
  let theta_star = Array.init dim (fun i -> if i mod 2 = 0 then 2.5 else -2.5) in
  let n = if quick then 500 else 2000 in
  let make n =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.logistic_model ~theta:theta_star ~n g)
  in
  let train = make n and test = make 4000 in
  let delta = 1e-5 in
  let reps = if quick then 2 else 6 in
  let epochs = if quick then 5 else 15 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E17: DP-SGD (delta=%g, %d epochs) vs pure-eps learners (n=%d)"
           delta epochs n)
      ~columns:
        [ "sigma"; "eps(RDP)"; "dp-sgd"; "objective-pert"; "gibbs"; "non-private" ]
  in
  let lambda = 0.01 in
  let np = Dp_learn.Erm.train ~lambda ~loss:Dp_learn.Loss_fn.logistic train in
  let acc_np = Dp_learn.Erm.accuracy np.Dp_learn.Erm.theta test in
  List.iter
    (fun sigma ->
      let eps = Dp_learn.Dp_sgd.epsilon_for ~noise_multiplier:sigma ~epochs ~delta in
      let avg f = Dp_math.Summation.mean (Array.init reps (fun _ -> f ())) in
      let acc_sgd =
        avg (fun () ->
            let r =
              Dp_learn.Dp_sgd.train ~epochs ~noise_multiplier:sigma ~delta
                ~loss:Dp_learn.Loss_fn.logistic train g
            in
            Dp_learn.Erm.accuracy r.Dp_learn.Dp_sgd.theta test)
      in
      let acc_obj =
        avg (fun () ->
            let m =
              Dp_learn.Private_erm.objective_perturbation ~epsilon:eps ~lambda
                ~loss:Dp_learn.Loss_fn.logistic train g
            in
            Dp_learn.Erm.accuracy m.Dp_learn.Private_erm.theta test)
      in
      let acc_gibbs =
        avg (fun () ->
            let m =
              Dp_learn.Private_erm.gibbs
                ~mcmc_config:
                  {
                    Dp_pac_bayes.Mcmc.step_std = 0.3;
                    burn_in = (if quick then 1000 else 3000);
                    thin = 2;
                  }
                ~epsilon:eps ~radius:3. ~loss:Dp_learn.Loss_fn.logistic train g
            in
            Dp_learn.Erm.accuracy m.Dp_learn.Private_erm.theta test)
      in
      Table.add_rowf table [ sigma; eps; acc_sgd; acc_obj; acc_gibbs; acc_np ])
    [ 32.; 16.; 8.; 4.; 2. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(smaller noise multiplier => larger accounted eps => higher@.\
    \ accuracy for all learners; DP-SGD is competitive at moderate eps@.\
    \ despite paying delta > 0.)@."
