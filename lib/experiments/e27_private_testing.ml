(* E27 — private hypothesis testing: chi-square independence on a
   noisy contingency table.

   Two binary attributes with controllable dependence delta
   (P(b = a) = 1/2 + delta). Releasing the 2x2 table with Laplace(2/eps)
   noise is eps-DP; the test is then post-processing. Power (fraction
   of rejections at alpha = 0.05) vs eps and delta; under the null
   (delta = 0) the false positive rate must stay near alpha. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let n = 2000 in
  let trials = if quick then 100 else 500 in
  let alpha = 0.05 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E27: private chi-square independence test, rejection rate (n=%d, alpha=%g)"
           n alpha)
      ~columns:[ "delta"; "eps"; "private power"; "non-private power" ]
  in
  let gen delta =
    Array.init n (fun _ ->
        let a = if Dp_rng.Prng.bool g then 1 else 0 in
        let b =
          if Dp_rng.Sampler.bernoulli ~p:(0.5 +. delta) g then a else 1 - a
        in
        (a, b))
  in
  List.iter
    (fun delta ->
      List.iter
        (fun eps ->
          let reject_p = ref 0 and reject_np = ref 0 in
          for _ = 1 to trials do
            let t = Dp_stats.Contingency.of_pairs ~rows:2 ~cols:2 (gen delta) in
            let r_np = Dp_stats.Contingency.chi_square_independence t in
            if r_np.Dp_stats.Gof.p_value < alpha then incr reject_np;
            let mech = Dp_mechanism.Laplace.create ~sensitivity:2. ~epsilon:eps in
            let noisy =
              Dp_stats.Contingency.map_counts
                (fun c -> Dp_mechanism.Laplace.release mech ~value:c g)
                t
            in
            match Dp_stats.Contingency.chi_square_independence noisy with
            | r -> if r.Dp_stats.Gof.p_value < alpha then incr reject_p
            | exception Invalid_argument _ -> ()
          done;
          let ft = float_of_int trials in
          Table.add_rowf table
            [ delta; eps; float_of_int !reject_p /. ft; float_of_int !reject_np /. ft ])
        [ 0.2; 1.; 5. ])
    [ 0.0; 0.05; 0.1 ];
  Table.print fmt table;
  Format.fprintf fmt
    "(CAVEAT at delta=0: naive chi-square on a noisy table inflates the@.\
    \ false-positive rate at small eps because the noise itself looks@.\
    \ like signal — the classic pitfall motivating noise-aware private@.\
    \ tests. Power at delta>0 recovers as eps grows.)@."
