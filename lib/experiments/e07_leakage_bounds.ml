(* E7 — Claim C8 (Alvim et al. comparison): epsilon-DP bounds the
   information a channel can carry.

   Three channel families, all with exactly computable quantities:
   randomized response (n=1 record), the Gibbs learning channel
   (n records), and a discretized Laplace channel. For each: exact
   mutual information vs the group-privacy bound d*eps, Blahut-Arimoto
   capacity, and min-entropy leakage vs the Alvim bound. *)

let run ?(quick = false) ~seed fmt =
  ignore quick;
  ignore seed;
  let table =
    Table.create ~title:"E7: information bounds on eps-DP channels"
      ~columns:
        [
          "channel"; "eps"; "diam"; "I exact"; "I bound"; "capacity";
          "leak"; "leak bound";
        ]
  in
  (* randomized response at several eps *)
  List.iter
    (fun eps ->
      let rr = Dp_mechanism.Randomized_response.create ~epsilon:eps in
      let channel = Dp_mechanism.Randomized_response.channel_matrix rr in
      let input = [| 0.5; 0.5 |] in
      let mi = Dp_info.Entropy.mutual_information_channel ~input ~channel in
      let cap = (Dp_info.Blahut_arimoto.capacity ~channel ()).Dp_info.Blahut_arimoto.capacity in
      let leak = Dp_info.Leakage.min_entropy_leakage ~input ~channel in
      Table.add_row table
        [
          "rand-response";
          Table.fcell eps;
          "1";
          Table.fcell mi;
          Table.fcell (Dp_info.Leakage.mi_upper_bound_pure_dp ~epsilon:eps ~diameter:1);
          Table.fcell cap;
          Table.fcell leak;
          Table.fcell
            (Dp_info.Leakage.min_entropy_leakage_bound_alvim ~epsilon:eps ~n:1
               ~universe:2);
        ])
    [ 0.25; 1.0; 3.0 ];
  (* the Gibbs learning channel: n records, diameter n *)
  List.iter
    (fun beta ->
      let n = 5 in
      let loss j z = if j = z then 0. else 1. in
      let gc =
        Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.5; 0.5 |] ~n
          ~predictors:[| 0; 1 |] ~beta ~loss ()
      in
      let eps = Dp_pac_bayes.Gibbs_channel.dp_epsilon gc in
      let matrix =
        Array.init (Array.length gc.Dp_pac_bayes.Gibbs_channel.samples)
          (Dp_info.Channel.row gc.Dp_pac_bayes.Gibbs_channel.channel)
      in
      let input = gc.Dp_pac_bayes.Gibbs_channel.input in
      let mi = Dp_pac_bayes.Gibbs_channel.mutual_information gc in
      let cap =
        (Dp_info.Blahut_arimoto.capacity ~channel:matrix ())
          .Dp_info.Blahut_arimoto.capacity
      in
      let leak = Dp_info.Leakage.min_entropy_leakage ~input ~channel:matrix in
      Table.add_row table
        [
          "gibbs-learning";
          Table.fcell eps;
          string_of_int n;
          Table.fcell mi;
          Table.fcell
            (Dp_info.Leakage.mi_upper_bound_pure_dp ~epsilon:eps ~diameter:n);
          Table.fcell cap;
          Table.fcell leak;
          Table.fcell
            (Dp_info.Leakage.min_entropy_leakage_bound_alvim ~epsilon:eps ~n
               ~universe:2);
        ])
    [ 2.; 8. ];
  (* discretized Laplace release of a count over a 2-record database *)
  List.iter
    (fun eps ->
      let m = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:eps in
      (* inputs: counts 0,1,2; outputs: 24 bins on [-6, 8] *)
      let bins = 24 and lo = -6. and hi = 8. in
      let row v =
        Array.init bins (fun b ->
            let a = lo +. ((hi -. lo) *. float_of_int b /. float_of_int bins) in
            let b' = lo +. ((hi -. lo) *. float_of_int (b + 1) /. float_of_int bins) in
            let p = Dp_mechanism.Laplace.interval_probability m ~value:v ~lo:a ~hi:b' in
            p)
      in
      let normalize r =
        let s = Dp_math.Summation.sum r in
        Array.map (fun x -> x /. s) r
      in
      let channel = [| normalize (row 0.); normalize (row 1.); normalize (row 2.) |] in
      let input = [| 0.25; 0.5; 0.25 |] in
      let mi = Dp_info.Entropy.mutual_information_channel ~input ~channel in
      let cap =
        (Dp_info.Blahut_arimoto.capacity ~channel ()).Dp_info.Blahut_arimoto.capacity
      in
      let leak = Dp_info.Leakage.min_entropy_leakage ~input ~channel in
      Table.add_row table
        [
          "laplace-count";
          Table.fcell eps;
          "2";
          Table.fcell mi;
          Table.fcell (Dp_info.Leakage.mi_upper_bound_pure_dp ~epsilon:eps ~diameter:2);
          Table.fcell cap;
          Table.fcell leak;
          Table.fcell
            (Dp_info.Leakage.min_entropy_leakage_bound_alvim ~epsilon:eps ~n:2
               ~universe:2);
        ])
    [ 0.5; 2.0 ];
  Table.print fmt table;
  Format.fprintf fmt
    "(every exact I sits below its d*eps bound and every leakage below@.\
    \ the Alvim bound; the bound is tight for randomized response.)@."
