(* E26 — differentially-private PCA via covariance perturbation.

   Data with a planted 2-dimensional principal subspace inside d = 8
   dimensions; recovery measured by subspace affinity
   (|U1' U2|_F^2 / j, 1 = perfect). Expected: affinity -> 1 as eps*n
   grows; at tiny eps the noisy covariance's eigenvectors are random
   (affinity ~ j/d). *)

let make_data ~n ~d g =
  (* x = u1 * z1 + u2 * z2 + small noise, normalized into the ball *)
  let u1 = Array.init d (fun i -> if i = 0 then 1. else 0.) in
  let u2 = Array.init d (fun i -> if i = 1 then 1. else 0.) in
  Array.init n (fun _ ->
      let z1 = Dp_rng.Sampler.gaussian ~mean:0. ~std:0.5 g in
      let z2 = Dp_rng.Sampler.gaussian ~mean:0. ~std:0.35 g in
      let noise = Dp_rng.Sampler.gaussian_vector ~dim:d ~std:0.05 g in
      let x =
        Array.init d (fun i -> (u1.(i) *. z1) +. (u2.(i) *. z2) +. noise.(i))
      in
      Dp_linalg.Vec.project_l2_ball ~radius:1. x)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let d = 8 in
  let reps = if quick then 3 else 10 in
  let table =
    Table.create
      ~title:(Printf.sprintf "E26: private PCA subspace recovery (d=%d, j=2)" d)
      ~columns:[ "n"; "eps"; "affinity"; "explained (dp)"; "explained (exact)" ]
  in
  List.iter
    (fun n ->
      let points = make_data ~n ~d g in
      let exact = Dp_learn.Pca.fit ~j:2 points in
      List.iter
        (fun eps ->
          let aff = ref 0. and expl = ref 0. in
          for _ = 1 to reps do
            let m, _ = Dp_learn.Pca.fit_private ~epsilon:eps ~j:2 points g in
            aff := !aff +. Dp_learn.Pca.subspace_affinity exact m;
            expl := !expl +. m.Dp_learn.Pca.explained_ratio
          done;
          Table.add_rowf table
            [
              float_of_int n; eps;
              !aff /. float_of_int reps;
              !expl /. float_of_int reps;
              exact.Dp_learn.Pca.explained_ratio;
            ])
        [ 0.1; 1.; 10. ])
    (if quick then [ 5000 ] else [ 1000; 10_000; 100_000 ]);
  Table.print fmt table;
  Format.fprintf fmt
    "(affinity -> 1 with eps*n; at tiny eps*n the noisy eigenvectors@.\
    \ are near-random: affinity ~ j/d = 0.25.)@."
