(* E15 — information-theoretic lower bounds vs achieved utility (the
   paper's §5: implications of mutual-information bounds on the
   utility of DP learning).

   k-ary private identification: the data are n coin flips from one of
   k well-separated biases; the learner releases a hypothesis via the
   Gibbs posterior (= exponential mechanism on the negative empirical
   risk). Fano's inequality with the DP information ceiling
   min(I, n*eps) gives a floor on the identification error of ANY
   eps-DP procedure; the table shows the measured Gibbs error sitting
   above that floor, converging to it as eps grows. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let k = 8 in
  let n = 30 in
  let biases = Array.init k (fun i -> (float_of_int i +. 0.5) /. float_of_int k) in
  let trials = if quick then 200 else 2000 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E15: Fano floor vs Gibbs identification error (k=%d, n=%d)" k n)
      ~columns:
        [ "eps"; "beta"; "measured err"; "fano floor (DP)"; "fano floor (MI)" ]
  in
  (* loss of hypothesis j on a flip z in {0,1}: negative log likelihood,
     clipped; range for sensitivity *)
  let nll j z =
    let p = biases.(j) in
    let p = Dp_math.Numeric.clamp ~lo:0.05 ~hi:0.95 p in
    if z = 1 then -.log p else -.log (1. -. p)
  in
  let loss_lo = -.log 0.95 and loss_hi = -.log 0.05 in
  let range = loss_hi -. loss_lo in
  List.iter
    (fun eps ->
      let beta = eps *. float_of_int n /. (2. *. range) in
      let errors = ref 0 in
      (* measured mutual information of the induced channel, estimated
         from the joint empirical distribution of (true j, released j) *)
      let joint = Array.make_matrix k k 0. in
      for _ = 1 to trials do
        let true_j = Dp_rng.Prng.int g k in
        let sample =
          Array.init n (fun _ ->
              if Dp_rng.Sampler.bernoulli ~p:biases.(true_j) g then 1 else 0)
        in
        let risks =
          Array.init k (fun j ->
              Dp_math.Numeric.float_sum_range n (fun i -> nll j sample.(i))
              /. float_of_int n)
        in
        let t =
          Dp_pac_bayes.Gibbs.of_risks ~predictors:(Array.init k Fun.id) ~beta
            ~risks ()
        in
        let released = Dp_pac_bayes.Gibbs.sample t g in
        if released <> true_j then incr errors;
        joint.(true_j).(released) <- joint.(true_j).(released) +. 1.
      done;
      (* Miller-Madow-corrected plug-in estimate of the channel's MI
         from the (true j, released j) pairs *)
      let xs = Array.make trials 0 and ys = Array.make trials 0 in
      let idx = ref 0 in
      Array.iteri
        (fun a row ->
          Array.iteri
            (fun b c ->
              for _ = 1 to int_of_float c do
                xs.(!idx) <- a;
                ys.(!idx) <- b;
                incr idx
              done)
            row)
        joint;
      let mi_measured = Dp_info.Mi_estimate.miller_madow ~xs ~ys ~kx:k ~ky:k in
      Table.add_rowf table
        [
          eps;
          beta;
          float_of_int !errors /. float_of_int trials;
          Dp_info.Fano.fano_error_lower_bound_dp ~epsilon:eps ~diameter:n ~k;
          Dp_info.Fano.fano_error_lower_bound ~mi:mi_measured ~k;
        ])
    [ 0.02; 0.05; 0.1; 0.5; 2. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(measured error >= both floors on every row; at tiny eps the DP@.\
    \ ceiling n*eps makes identification provably impossible and the@.\
    \ measured error approaches 1 - 1/k, exactly as Fano predicts.)@."
