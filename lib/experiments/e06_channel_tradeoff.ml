(* E6 — Theorem 4.2 / §4: the risk-information tradeoff on the exact
   Fig. 1 channel, and two minimality statements:

   (i)  For its own (uniform) prior, the Gibbs channel minimizes the
        prior-explicit PAC-Bayes objective E R̂ + E_Z KL(rows‖pi)/beta
        among all channels (Lemma 3.2 applied row by row) — checked
        against random perturbed channels ("alt wins (KL)" must be 0).
   (ii) Under the OPTIMAL prior pi = E_Z posterior (the paper's §4
        assumption) the minimized objective becomes E R̂ + I/beta;
        the alternating solver's optimum is reported next to the
        uniform-prior Gibbs value of the same MI objective, and no
        perturbation of the solver's channel may beat it
        ("alt wins (MI)" must be 0).

   The channel is exact: universe {0,1} with Q=(0.6,0.4), all 2^n
   samples of size n=6, predictors {0,1}, 0-1 loss. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let loss j z = if j = z then 0. else 1. in
  let n = 6 in
  let alternatives = if quick then 30 else 300 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E6: risk-information tradeoff on the exact Fig.1 channel (n=%d)" n)
      ~columns:
        [
          "beta"; "eps bound"; "eps_exact"; "I(Z;th)"; "E[risk]";
          "obj KL"; "alt wins (KL)"; "obj MI*"; "alt wins (MI)";
        ]
  in
  List.iter
    (fun beta ->
      let gc =
        Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.6; 0.4 |] ~n
          ~predictors:[| 0; 1 |] ~beta ~loss ()
      in
      let pac_obj = Dp_pac_bayes.Gibbs_channel.pac_objective gc in
      let wins_kl = ref 0 in
      for _ = 1 to alternatives do
        let alt =
          Dp_info.Channel.perturb gc.Dp_pac_bayes.Gibbs_channel.channel
            ~magnitude:0.3 g
        in
        if Dp_pac_bayes.Gibbs_channel.pac_objective_of_channel gc alt < pac_obj
        then incr wins_kl
      done;
      (* optimal-prior optimum via the alternating solver *)
      let rr =
        Dp_info.Rate_risk.solve ~input:gc.Dp_pac_bayes.Gibbs_channel.input
          ~risk:gc.Dp_pac_bayes.Gibbs_channel.risk ~beta ()
      in
      let wins_mi = ref 0 in
      for _ = 1 to alternatives do
        let alt =
          Dp_info.Channel.perturb rr.Dp_info.Rate_risk.channel ~magnitude:0.3 g
        in
        if
          Dp_pac_bayes.Gibbs_channel.objective_of_channel gc alt
          < rr.Dp_info.Rate_risk.objective
        then incr wins_mi
      done;
      Table.add_rowf table
        [
          beta;
          Dp_pac_bayes.Gibbs_channel.theoretical_epsilon gc ~loss_lo:0.
            ~loss_hi:1.;
          Dp_pac_bayes.Gibbs_channel.dp_epsilon gc;
          Dp_pac_bayes.Gibbs_channel.mutual_information gc;
          Dp_pac_bayes.Gibbs_channel.expected_empirical_risk gc;
          pac_obj;
          float_of_int !wins_kl;
          rr.Dp_info.Rate_risk.objective;
          float_of_int !wins_mi;
        ])
    [ 0.5; 1.; 2.; 4.; 8.; 16. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(small beta = high privacy: low mutual information, higher risk;@.\
    \ large beta reverses the tilt. 'alt wins' = 0 on both objectives:@.\
    \ the Gibbs channel minimizes the KL objective for its prior, and@.\
    \ the optimal-prior solver's channel minimizes the MI objective.)@."
