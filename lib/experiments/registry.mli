(** Registry of all experiments and ablations, keyed by the ids used in
    DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;
  title : string;
  claim : string;  (** the paper claim the experiment instantiates *)
  run : ?quick:bool -> seed:int -> Format.formatter -> unit;
}

val all : entry list
(** In id order: E1..E34, A2..A4. *)

val find : string -> entry option
(** Case-insensitive lookup by id. *)

val run_all : ?quick:bool -> seed:int -> Format.formatter -> unit
