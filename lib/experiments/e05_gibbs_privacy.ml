(* E5 — Theorem 4.1: the Gibbs posterior is 2·beta·dR̂ differentially
   private.

   Finite predictor grid, 0-1 loss (range 1, so dR̂ = 1/n exactly).
   Because the posterior is in closed form, the privacy loss between a
   sample and each of many replace-one neighbours is computed exactly;
   the table reports the worst observed loss against the theoretical
   bound across beta (equivalently across the privacy level eps =
   2*beta/n). *)

let grid = Array.init 33 (fun i -> -2. +. (0.125 *. float_of_int i))

let zero_one theta (x, y) =
  if (if x >= theta then 1. else -1.) = y then 0. else 1.

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let n = 40 in
  let sample =
    Array.init n (fun _ ->
        let y = if Dp_rng.Prng.bool g then 1. else -1. in
        (Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g, y))
  in
  let neighbours = if quick then 50 else 400 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E5: Gibbs posterior privacy (Thm 4.1), n=%d, dR=1/n, %d neighbours"
           n neighbours)
      ~columns:
        [ "beta"; "eps bound=2b/n"; "eps_exact"; "ratio"; "E[emp risk]" ]
  in
  let fit s =
    Dp_pac_bayes.Gibbs.fit ~predictors:grid
      ~empirical_risk:(Dp_pac_bayes.Risk.empirical ~loss:zero_one s)
  in
  List.iter
    (fun beta ->
      let t = fit sample ~beta () in
      let lp = Dp_pac_bayes.Gibbs.log_probabilities t in
      let worst = ref 0. in
      for _ = 1 to neighbours do
        let i = Dp_rng.Prng.int g n in
        let s' = Array.copy sample in
        s'.(i) <-
          ( Dp_rng.Sampler.gaussian ~mean:0. ~std:2. g,
            if Dp_rng.Prng.bool g then 1. else -1. );
        let lp' = Dp_pac_bayes.Gibbs.log_probabilities (fit s' ~beta ()) in
        Array.iteri
          (fun j l -> worst := Float.max !worst (Float.abs (l -. lp'.(j))))
          lp
      done;
      let bound = 2. *. beta /. float_of_int n in
      Table.add_rowf table
        [
          beta;
          bound;
          !worst;
          !worst /. bound;
          Dp_pac_bayes.Gibbs.expected_empirical_risk t;
        ])
    [ 1.; 2.; 5.; 10.; 20.; 50. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(eps_exact <= bound on every row; the ratio below 1 reflects that@.\
    \ the 2-factor in Thm 2.3/4.1 is worst-case. Risk falls as beta —@.\
    \ and so the privacy cost — grows: the paper's tradeoff.)@."
