(* E10 — private regression (the paper's §5: "currently investigating
   differentially-private regression ... using PAC-Bayesian bounds").

   Linear ground truth inside the unit ball, labels clipped to [-1,1].
   Compare test MSE of: exact ridge, output-perturbed ridge, and the
   Gibbs posterior on the clipped squared loss, across eps. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let theta_star = [| 0.6; -0.4; 0.3 |] in
  let make n =
    Dp_dataset.Dataset.map_labels
      (Dp_math.Numeric.clamp ~lo:(-1.) ~hi:1.)
      (Dp_dataset.Synthetic.linear_regression ~theta:theta_star ~noise_std:0.1
         ~n g)
  in
  let train = make (if quick then 500 else 2000) in
  let test = make 2000 in
  let lambda = 0.05 in
  let exact = Dp_learn.Ridge.fit ~lambda train in
  let mse_exact = Dp_learn.Erm.mean_squared_error exact test in
  let reps = if quick then 3 else 10 in
  let table =
    Table.create ~title:"E10: private ridge regression, test MSE"
      ~columns:[ "eps"; "exact ridge"; "output-pert"; "gibbs"; "winner" ]
  in
  List.iter
    (fun eps ->
      let avg f = Dp_math.Summation.mean (Array.init reps (fun _ -> f ())) in
      let mse_out =
        avg (fun () ->
            Dp_learn.Erm.mean_squared_error
              (Dp_learn.Ridge.fit_output_perturbed ~epsilon:eps ~lambda train g)
              test)
      in
      let mse_gibbs =
        avg (fun () ->
            Dp_learn.Erm.mean_squared_error
              (Dp_learn.Ridge.fit_gibbs
                 ~mcmc_config:
                   {
                     Dp_pac_bayes.Mcmc.step_std = 0.2;
                     burn_in = (if quick then 1000 else 3000);
                     thin = 2;
                   }
                 ~epsilon:eps ~radius:1.5 train g)
              test)
      in
      Table.add_row table
        [
          Table.fcell eps;
          Table.fcell mse_exact;
          Table.fcell mse_out;
          Table.fcell mse_gibbs;
          (if mse_out < mse_gibbs then "output" else "gibbs");
        ])
    [ 0.1; 0.5; 1.; 2.; 10. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(both private MSEs decay to the exact-ridge MSE as eps grows; the@.\
    \ Gibbs sampler, confined to a bounded ball, wins at small eps where@.\
    \ worst-case output noise is enormous.)@."
