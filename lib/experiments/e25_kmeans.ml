(* E25 — differentially-private k-means (DPLloyd).

   Three well-separated Gaussian blobs in the unit ball; clustering
   cost (inertia) of non-private Lloyd vs DPLloyd across eps, plus the
   trivial single-center baseline as the "failure" reference. *)

let make_blobs ~n g =
  let centers = [| [| 0.6; 0. |]; [| -0.3; 0.5 |]; [| -0.3; -0.5 |] |] in
  Array.init n (fun i ->
      let c = centers.(i mod 3) in
      Dp_linalg.Vec.project_l2_ball ~radius:1.
        [|
          c.(0) +. Dp_rng.Sampler.gaussian ~mean:0. ~std:0.08 g;
          c.(1) +. Dp_rng.Sampler.gaussian ~mean:0. ~std:0.08 g;
        |])

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let n = if quick then 2000 else 20_000 in
  let points = make_blobs ~n g in
  let np = Dp_learn.Kmeans.fit ~k:3 points g in
  let single =
    Dp_learn.Kmeans.inertia
      ~centers:
        [|
          Array.init 2 (fun j ->
              Dp_math.Summation.mean (Array.map (fun p -> p.(j)) points));
        |]
      points
  in
  let reps = if quick then 3 else 10 in
  let table =
    Table.create
      ~title:(Printf.sprintf "E25: DPLloyd clustering cost (3 blobs, n=%d)" n)
      ~columns:[ "eps"; "dp inertia"; "lloyd inertia"; "1-center inertia" ]
  in
  List.iter
    (fun eps ->
      let dp =
        Dp_math.Summation.mean
          (Array.init reps (fun _ ->
               let m, _ = Dp_learn.Kmeans.fit_private ~epsilon:eps ~k:3 points g in
               m.Dp_learn.Kmeans.inertia))
      in
      Table.add_rowf table [ eps; dp; np.Dp_learn.Kmeans.inertia; single ])
    [ 0.1; 0.5; 2.; 10. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(DPLloyd approaches the Lloyd cost as eps (or n) grows and stays@.\
    \ well below the single-center collapse except at tiny eps*n.)@."
