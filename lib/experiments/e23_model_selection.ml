(* E23 — private hyperparameter selection (exponential mechanism on
   validation accuracy).

   Selecting the ridge-regularization strength lambda for logistic
   regression by validation accuracy. Non-private argmax vs the
   exponential mechanism at several eps: the private choice
   concentrates on near-optimal lambdas as eps grows, and the utility
   loss (accuracy of the selected model vs the best) shrinks. *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let dim = 5 in
  let theta_star = Array.init dim (fun i -> if i mod 2 = 0 then 2.5 else -2.5) in
  let make n =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.logistic_model ~theta:theta_star ~n g)
  in
  let train = make 800 and validation = make 400 and test = make 4000 in
  let lambdas = [| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |] in
  (* precompute: model and accuracies per lambda *)
  let models =
    Array.map
      (fun lambda ->
        (Dp_learn.Erm.train ~lambda ~loss:Dp_learn.Loss_fn.logistic train)
          .Dp_learn.Erm.theta)
      lambdas
  in
  let val_scores = Array.map (fun th -> Dp_learn.Erm.accuracy th validation) models in
  let test_scores = Array.map (fun th -> Dp_learn.Erm.accuracy th test) models in
  let best = Dp_linalg.Vec.argmax val_scores in
  let reps = if quick then 100 else 1000 in
  let table =
    Table.create
      ~title:"E23: private lambda selection (exp mechanism on validation acc)"
      ~columns:
        [ "eps"; "P[pick best]"; "E[test acc]"; "best test acc"; "regret" ]
  in
  List.iter
    (fun eps ->
      let picks = Array.make (Array.length lambdas) 0 in
      for _ = 1 to reps do
        let s =
          Dp_learn.Model_select.select ~epsilon:eps ~candidates:lambdas
            ~score:(fun l ->
              val_scores.(Option.get (Array.find_index (( = ) l) lambdas)))
            ~score_sensitivity:(1. /. 400.)
            g
        in
        picks.(s.Dp_learn.Model_select.index) <- picks.(s.Dp_learn.Model_select.index) + 1
      done;
      let fr = float_of_int reps in
      let e_test =
        Dp_math.Numeric.float_sum_range (Array.length lambdas) (fun i ->
            float_of_int picks.(i) /. fr *. test_scores.(i))
      in
      Table.add_rowf table
        [
          eps;
          float_of_int picks.(best) /. fr;
          e_test;
          test_scores.(best);
          test_scores.(best) -. e_test;
        ])
    [ 0.01; 0.05; 0.2; 1.; 5. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(at eps = 0.01 the pick is ~uniform over 7 candidates; by eps = 1@.\
    \ the mechanism almost always picks a near-optimal lambda and the@.\
    \ regret vanishes — selection costs almost no utility once@.\
    \ eps * m_validation is moderate.)@."
