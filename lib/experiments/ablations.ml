(* Ablations for the design choices called out in DESIGN.md.
   A1 (alias vs scan sampling throughput) is a timing study and lives
   in bench/main.ml; A2-A4 are correctness/quality studies. *)

(* A2 — log-space vs direct-space Gibbs weights. Direct exponentiation
   of -beta*risk underflows once beta spreads exceed ~745 nats; the
   log-space path (the library's) stays exact. *)
let run_a2 ?(quick = false) ~seed fmt =
  ignore quick;
  ignore seed;
  let table =
    Table.create ~title:"A2: log-space vs direct-space Gibbs weights"
      ~columns:
        [ "beta"; "direct Z"; "direct ok"; "logspace sum"; "logspace ok" ]
  in
  let risks = [| 0.; 0.4; 0.8; 1.2; 2. |] in
  List.iter
    (fun beta ->
      (* direct: w_i = exp(-beta r_i), normalize naively *)
      let w = Array.map (fun r -> exp (-.beta *. r)) risks in
      let z = Array.fold_left ( +. ) 0. w in
      let direct_ok =
        z > 0. && Float.is_finite z
        && Array.for_all (fun x -> Float.is_finite (x /. z)) w
        && Array.exists (fun x -> x /. z > 0. && x /. z < 1.) w
      in
      let t =
        Dp_pac_bayes.Gibbs.of_risks ~predictors:[| 0; 1; 2; 3; 4 |] ~beta
          ~risks ()
      in
      let p = Dp_pac_bayes.Gibbs.probabilities t in
      let s = Dp_math.Summation.sum p in
      let log_ok =
        Dp_math.Numeric.approx_equal ~rel_tol:1e-9 1. s
        && Array.for_all Float.is_finite p
      in
      Table.add_row table
        [
          Table.fcell beta;
          Table.fcell z;
          (if direct_ok then "yes" else "FAILS");
          Table.fcell s;
          (if log_ok then "yes" else "FAILS");
        ])
    [ 1.; 100.; 1000.; 10000. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(direct weights underflow to a degenerate distribution at large@.\
    \ beta; the log-space path used throughout the library does not.)@."

(* A3 — MCMC chain length vs total-variation distance to the exact
   grid Gibbs posterior: quantifies the approximation the continuous
   Gibbs learner makes. *)
let run_a3 ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let sample =
    Array.init 30 (fun _ ->
        let y = if Dp_rng.Prng.bool g then 1. else -1. in
        (Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g, y))
  in
  let grid_pts = Array.init 21 (fun i -> -2. +. (0.2 *. float_of_int i)) in
  let beta = 5. in
  let loss theta (x, y) = if (if x >= theta then 1. else -1.) = y then 0. else 1. in
  let emp = Dp_pac_bayes.Risk.empirical ~loss sample in
  let t =
    Dp_pac_bayes.Gibbs.fit ~predictors:grid_pts ~beta ~empirical_risk:emp ()
  in
  let grid = Array.map (fun th -> [| th |]) grid_pts in
  let grid_probs = Dp_pac_bayes.Gibbs.probabilities t in
  let log_density th =
    if th.(0) < -2. || th.(0) > 2. then neg_infinity else -.beta *. emp th.(0)
  in
  let table =
    Table.create ~title:"A3: MCMC chain length vs exact-posterior TV distance"
      ~columns:[ "kept samples"; "TV to exact"; "acceptance"; "ESS" ]
  in
  List.iter
    (fun n_samples ->
      let r =
        Dp_pac_bayes.Mcmc.run
          ~config:{ Dp_pac_bayes.Mcmc.step_std = 0.5; burn_in = 2000; thin = 5 }
          ~log_density ~init:[| 0. |] ~n_samples g
      in
      let tv = Dp_pac_bayes.Mcmc.tv_distance_to_grid r ~grid ~grid_probs in
      let ess =
        (Dp_pac_bayes.Diagnostics.summarize r ~coordinate:0)
          .Dp_pac_bayes.Diagnostics.ess
      in
      Table.add_rowf table
        [ float_of_int n_samples; tv; r.Dp_pac_bayes.Mcmc.acceptance_rate; ess ])
    (if quick then [ 200; 2000 ] else [ 100; 1000; 10_000; 50_000 ]);
  Table.print fmt table;
  Format.fprintf fmt
    "(TV decays roughly as 1/sqrt(kept samples): the finite chain is@.\
    \ the only approximation in the continuous Gibbs learner.)@."

(* A4 — Catoni's Phi-deformation vs the linearized bound across beta:
   how much tightness the deformation buys. *)
let run_a4 ?(quick = false) ~seed fmt =
  ignore quick;
  ignore seed;
  let table =
    Table.create ~title:"A4: Catoni deformation vs linearized bound (n=200)"
      ~columns:[ "beta"; "catoni"; "linearized"; "slack"; "correction" ]
  in
  let n = 200 and delta = 0.05 and emp_risk = 0.15 and kl = 2. in
  List.iter
    (fun beta ->
      let c = Dp_pac_bayes.Bounds.catoni ~beta ~n ~delta ~emp_risk ~kl in
      let l = Dp_pac_bayes.Bounds.linearized ~beta ~n ~delta ~emp_risk ~kl in
      Table.add_rowf table
        [ beta; c; l; l -. c; Dp_pac_bayes.Bounds.catoni_correction ~beta ~n ])
    [ 5.; 20.; 80.; 320.; 1280. ];
  Table.print fmt table;
  Format.fprintf fmt
    "(the deformation buys little when beta << n — the paper's remark@.\
    \ that the correction factor is then ~1 — and a lot when beta ~ n.)@."
