(* E31 — private range queries: flat vs hierarchical (Hay et al.).

   Zipf counts over a domain of m buckets; random ranges of several
   lengths answered under one eps budget. RMSE vs range length: flat
   error grows as sqrt(len); hierarchical stays polylog(m), winning for
   long ranges, losing slightly for singletons (it pays the log-factor
   budget split). *)

let run ?(quick = false) ~seed fmt =
  let g = Dp_rng.Prng.create seed in
  let m = 1024 in
  let epsilon = 1. in
  let counts = Dp_dataset.Synthetic.zipf_counts ~s:1.1 ~support:m ~n:100_000 g in
  let reps = if quick then 5 else 30 in
  let queries_per_len = if quick then 20 else 100 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E31: range queries over m=%d buckets (eps=%g), RMSE by range length"
           m epsilon)
      ~columns:
        [ "range len"; "flat RMSE"; "hier RMSE"; "flat analytic"; "winner" ]
  in
  let lens = [ 1; 16; 128; 1024 ] in
  let errs_flat = Array.make (List.length lens) 0. in
  let errs_hier = Array.make (List.length lens) 0. in
  for _ = 1 to reps do
    let flat = Dp_mechanism.Range_queries.flat_release ~epsilon counts g in
    let hier = Dp_mechanism.Range_queries.hierarchical_release ~epsilon counts g in
    List.iteri
      (fun li len ->
        for _ = 1 to queries_per_len do
          let lo = Dp_rng.Prng.int g (m - len + 1) in
          let hi = lo + len - 1 in
          let truth = float_of_int (Dp_mechanism.Range_queries.true_range counts ~lo ~hi) in
          errs_flat.(li) <-
            errs_flat.(li)
            +. Dp_math.Numeric.sq
                 (Dp_mechanism.Range_queries.range_query flat ~lo ~hi -. truth);
          errs_hier.(li) <-
            errs_hier.(li)
            +. Dp_math.Numeric.sq
                 (Dp_mechanism.Range_queries.range_query hier ~lo ~hi -. truth)
        done)
      lens
  done;
  List.iteri
    (fun li len ->
      let denom = float_of_int (reps * queries_per_len) in
      let f = sqrt (errs_flat.(li) /. denom) in
      let h = sqrt (errs_hier.(li) /. denom) in
      Table.add_row table
        [
          string_of_int len;
          Table.fcell f;
          Table.fcell h;
          Table.fcell
            (Dp_mechanism.Range_queries.expected_flat_std ~epsilon
               ~range_len:len);
          (if f < h then "flat" else "hier");
        ])
    lens;
  Table.print fmt table;
  Format.fprintf fmt
    "(flat error grows as sqrt(len) — exactly its analytic curve; the@.\
    \ hierarchy pays a log(m) budget split but answers any range from@.\
    \ O(log m) nodes, so it wins for long ranges; the crossover moves@.\
    \ earlier as the domain grows.)@."
