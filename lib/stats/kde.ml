open Dp_math

type t = { samples : float array; bandwidth : float }

let silverman xs =
  let sigma = Describe.std xs in
  let iqr = Describe.quantile xs 0.75 -. Describe.quantile xs 0.25 in
  let spread =
    if iqr > 0. then Float.min sigma (iqr /. 1.34)
    else sigma
  in
  let n = float_of_int (Array.length xs) in
  let h = 0.9 *. spread *. (n ** (-0.2)) in
  if h <= 0. then invalid_arg "Kde.fit: degenerate sample (zero spread)";
  h

let fit ?bandwidth xs =
  if Array.length xs < 2 then invalid_arg "Kde.fit: needs at least two samples";
  let bandwidth =
    match bandwidth with
    | Some h -> Numeric.check_pos "Kde.fit bandwidth" h
    | None -> silverman xs
  in
  { samples = Array.copy xs; bandwidth }

let gauss_const = 1. /. sqrt (2. *. Float.pi)

let density t x =
  let h = t.bandwidth in
  let n = float_of_int (Array.length t.samples) in
  Summation.sum_map
    (fun xi ->
      let z = (x -. xi) /. h in
      gauss_const *. exp (-0.5 *. z *. z))
    t.samples
  /. (n *. h)

let bandwidth t = t.bandwidth

let log_likelihood t xs =
  if Array.length xs = 0 then invalid_arg "Kde.log_likelihood: empty input";
  Summation.sum_map (fun x -> log (Float.max 1e-300 (density t x))) xs
  /. float_of_int (Array.length xs)
