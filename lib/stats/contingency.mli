(** Two-way contingency tables and the χ² independence test — the
    classical statistical-database workload (and the substrate for
    private hypothesis testing, experiment E27). *)

type t = { rows : int; cols : int; counts : float array array }

val create : rows:int -> cols:int -> t
(** Empty table. @raise Invalid_argument on non-positive dims. *)

val of_pairs : rows:int -> cols:int -> (int * int) array -> t
(** Tabulate (row, col) observations.
    @raise Invalid_argument on out-of-range categories. *)

val total : t -> float
val row_marginals : t -> float array
val col_marginals : t -> float array

val expected_under_independence : t -> float array array
(** [rᵢ·cⱼ/N] — the null model.
    @raise Invalid_argument on an empty table. *)

val chi_square_independence : t -> Gof.result
(** Pearson χ² test of independence with (r−1)(c−1) degrees of
    freedom. @raise Invalid_argument when any expected cell is ≤ 0. *)

val map_counts : (float -> float) -> t -> t
(** Transform every cell (e.g. add noise); negatives are clamped to
    0. The L1 sensitivity of the whole table under record replacement
    is 2 (one observation moves between cells). *)

val mutual_information : t -> float
(** Empirical mutual information (nats) between the two attributes. *)
