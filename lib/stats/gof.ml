open Dp_math

type result = { statistic : float; p_value : float }

(* Asymptotic Kolmogorov distribution survival function. *)
let kolmogorov_sf lambda =
  if lambda <= 0. then 1.
  else begin
    let s = ref 0. in
    for k = 1 to 100 do
      let term =
        (if k mod 2 = 1 then 1. else -1.)
        *. exp (-2. *. Numeric.sq (float_of_int k) *. Numeric.sq lambda)
      in
      s := !s +. term
    done;
    Numeric.clamp ~lo:0. ~hi:1. (2. *. !s)
  end

let ks_statistic sorted cdf =
  let n = Array.length sorted in
  let fn = float_of_int n in
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let hi = (float_of_int (i + 1) /. fn) -. f in
      let lo = f -. (float_of_int i /. fn) in
      d := Float.max !d (Float.max hi lo))
    sorted;
  !d

let ks_one_sample ~cdf xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Gof.ks_one_sample: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let d = ks_statistic sorted cdf in
  let fn = float_of_int n in
  (* Stephens' small-sample adjustment. *)
  let lambda = (sqrt fn +. 0.12 +. (0.11 /. sqrt fn)) *. d in
  { statistic = d; p_value = kolmogorov_sf lambda }

let ks_two_sample xs ys =
  let n = Array.length xs and m = Array.length ys in
  if n = 0 || m = 0 then invalid_arg "Gof.ks_two_sample: empty sample";
  let a = Array.copy xs and b = Array.copy ys in
  Array.sort compare a;
  Array.sort compare b;
  let fn = float_of_int n and fm = float_of_int m in
  let d = ref 0. and i = ref 0 and j = ref 0 in
  while !i < n && !j < m do
    let x = a.(!i) and y = b.(!j) in
    if x <= y then incr i;
    if y <= x then incr j;
    let fa = float_of_int !i /. fn and fb = float_of_int !j /. fm in
    d := Float.max !d (Float.abs (fa -. fb))
  done;
  let ne = fn *. fm /. (fn +. fm) in
  let lambda = (sqrt ne +. 0.12 +. (0.11 /. sqrt ne)) *. !d in
  { statistic = !d; p_value = kolmogorov_sf lambda }

let chi_square_sf ~df x =
  if df <= 0 then invalid_arg "Gof.chi_square_sf: df must be positive";
  if x <= 0. then 1.
  else
    1.
    -. Special.lower_incomplete_gamma_regularized ~a:(float_of_int df /. 2.)
         ~x:(x /. 2.)

let chi_square_gof ~expected ~observed =
  let k = Array.length expected in
  if k = 0 then invalid_arg "Gof.chi_square_gof: empty input";
  if Array.length observed <> k then
    invalid_arg "Gof.chi_square_gof: length mismatch";
  Array.iter
    (fun e ->
      if e <= 0. then invalid_arg "Gof.chi_square_gof: non-positive expected count")
    expected;
  let stat =
    Numeric.float_sum_range k (fun i ->
        Numeric.sq (observed.(i) -. expected.(i)) /. expected.(i))
  in
  { statistic = stat; p_value = chi_square_sf ~df:(k - 1) stat }

let chi_square_two_sample counts1 counts2 =
  let k = Array.length counts1 in
  if k = 0 then invalid_arg "Gof.chi_square_two_sample: empty input";
  if Array.length counts2 <> k then
    invalid_arg "Gof.chi_square_two_sample: length mismatch";
  Array.iter
    (fun c ->
      if c < 0. || not (Float.is_finite c) then
        invalid_arg "Gof.chi_square_two_sample: negative count")
    counts1;
  Array.iter
    (fun c ->
      if c < 0. || not (Float.is_finite c) then
        invalid_arg "Gof.chi_square_two_sample: negative count")
    counts2;
  let n1 = Numeric.float_sum_range k (fun i -> counts1.(i)) in
  let n2 = Numeric.float_sum_range k (fun i -> counts2.(i)) in
  if n1 = 0. || n2 = 0. then
    invalid_arg "Gof.chi_square_two_sample: empty sample";
  (* expected counts from the pooled proportions; all-empty bins carry
     no information and contribute no degree of freedom *)
  let stat = ref 0. and df = ref (-1) in
  for i = 0 to k - 1 do
    let pooled = counts1.(i) +. counts2.(i) in
    if pooled > 0. then begin
      incr df;
      let e1 = n1 *. pooled /. (n1 +. n2) in
      let e2 = n2 *. pooled /. (n1 +. n2) in
      stat :=
        !stat
        +. (Numeric.sq (counts1.(i) -. e1) /. e1)
        +. (Numeric.sq (counts2.(i) -. e2) /. e2)
    end
  done;
  if !df < 1 then { statistic = 0.; p_value = 1. }
  else { statistic = !stat; p_value = chi_square_sf ~df:!df !stat }
