(** Goodness-of-fit tests, used to validate the samplers in {!Dp_rng}
    and to sanity-check mechanism output distributions. *)

type result = { statistic : float; p_value : float }

val ks_one_sample : cdf:(float -> float) -> float array -> result
(** One-sample Kolmogorov–Smirnov test against a continuous CDF.
    The p-value uses the asymptotic Kolmogorov distribution
    [Q(λ) = 2 Σ (-1)^{k-1} e^{-2k²λ²}].
    @raise Invalid_argument on the empty sample. *)

val ks_two_sample : float array -> float array -> result
(** Two-sample KS test with the effective-sample-size correction. *)

val chi_square_gof : expected:float array -> observed:float array -> result
(** Pearson χ² test: [expected] are expected counts (not
    probabilities), degrees of freedom [bins - 1]. P-value from the
    regularized incomplete gamma.
    @raise Invalid_argument on length mismatch, empty input, or a
    non-positive expected count. *)

val chi_square_two_sample : float array -> float array -> result
(** Two-sample Pearson χ² on parallel bin counts: expected counts come
    from the pooled proportions, degrees of freedom are the non-empty
    pooled bins minus one (all-empty bins carry no information). The
    certification harness uses this as its bucketed same-distribution
    tester. With fewer than two non-empty bins the statistic is 0 and
    the p-value 1.
    @raise Invalid_argument on length mismatch, empty input, a negative
    or non-finite count, or an all-zero sample. *)

val chi_square_sf : df:int -> float -> float
(** Survival function of the χ² distribution: [P(X > x)]. *)
