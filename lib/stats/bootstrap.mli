(** Percentile bootstrap confidence intervals for experiment metrics. *)

type interval = { estimate : float; lo : float; hi : float }

val confidence_interval :
  ?replicates:int ->
  ?confidence:float ->
  statistic:(float array -> float) ->
  float array ->
  Dp_rng.Prng.t ->
  interval
(** [confidence_interval ~statistic xs g] resamples [xs] with
    replacement [replicates] times (default 1000) and returns the
    percentile interval at the given [confidence] (default 0.95)
    together with the point estimate on the original data.
    @raise Invalid_argument on an empty sample or confidence outside
    (0, 1). *)
