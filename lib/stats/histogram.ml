type t = {
  lo : float;
  hi : float;
  bins : int;
  counts : float array;
  total : float;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: requires lo < hi";
  if bins <= 0 then invalid_arg "Histogram.create: requires bins > 0";
  { lo; hi; bins; counts = Array.make bins 0.; total = 0. }

let bin_width t = (t.hi -. t.lo) /. float_of_int t.bins

let bin_index t x =
  if x < t.lo || x >= t.hi then None
  else begin
    let i = int_of_float ((x -. t.lo) /. bin_width t) in
    Some (Stdlib.min i (t.bins - 1))
  end

let clamped_index t x =
  match bin_index t x with
  | Some i -> i
  | None -> if x < t.lo then 0 else t.bins - 1

let add t x =
  let i = clamped_index t x in
  let counts = Array.copy t.counts in
  counts.(i) <- counts.(i) +. 1.;
  { t with counts; total = t.total +. 1. }

let of_samples ~lo ~hi ~bins xs =
  let t = create ~lo ~hi ~bins in
  let counts = Array.make bins 0. in
  Array.iter (fun x -> let i = clamped_index t x in counts.(i) <- counts.(i) +. 1.) xs;
  { t with counts; total = float_of_int (Array.length xs) }

let count t i = t.counts.(i)

let total t = t.total

let probability t i =
  if t.total <= 0. then invalid_arg "Histogram.probability: empty histogram";
  t.counts.(i) /. t.total

let probabilities t =
  if t.total <= 0. then invalid_arg "Histogram.probabilities: empty histogram";
  Array.map (fun c -> c /. t.total) t.counts

let density t i = probability t i /. bin_width t

let density_at t x =
  match bin_index t x with None -> 0. | Some i -> density t i

let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. bin_width t)

let map_counts f t =
  let counts = Array.map (fun c -> Float.max 0. (f c)) t.counts in
  { t with counts; total = Dp_math.Summation.sum counts }

let l1_distance a b =
  if a.bins <> b.bins || a.lo <> b.lo || a.hi <> b.hi then
    invalid_arg "Histogram.l1_distance: mismatched binning";
  let pa = probabilities a and pb = probabilities b in
  Dp_math.Numeric.float_sum_range a.bins (fun i -> Float.abs (pa.(i) -. pb.(i)))
