open Dp_math

type t = { rows : int; cols : int; counts : float array array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Contingency.create: non-positive dimensions";
  { rows; cols; counts = Array.make_matrix rows cols 0. }

let of_pairs ~rows ~cols pairs =
  let t = create ~rows ~cols in
  Array.iter
    (fun (r, c) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Contingency.of_pairs: category out of range";
      t.counts.(r).(c) <- t.counts.(r).(c) +. 1.)
    pairs;
  t

let total t =
  Numeric.float_sum_range t.rows (fun i -> Summation.sum t.counts.(i))

let row_marginals t = Array.map Summation.sum t.counts

let col_marginals t =
  Array.init t.cols (fun j ->
      Numeric.float_sum_range t.rows (fun i -> t.counts.(i).(j)))

let expected_under_independence t =
  let n = total t in
  if n <= 0. then invalid_arg "Contingency.expected_under_independence: empty table";
  let r = row_marginals t and c = col_marginals t in
  Array.init t.rows (fun i -> Array.init t.cols (fun j -> r.(i) *. c.(j) /. n))

let chi_square_independence t =
  let expected = expected_under_independence t in
  let stat = ref 0. in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      let e = expected.(i).(j) in
      if e <= 0. then
        invalid_arg "Contingency.chi_square_independence: zero expected cell";
      stat := !stat +. (Numeric.sq (t.counts.(i).(j) -. e) /. e)
    done
  done;
  let df = (t.rows - 1) * (t.cols - 1) in
  { Gof.statistic = !stat; p_value = Gof.chi_square_sf ~df !stat }

let map_counts f t =
  {
    t with
    counts = Array.map (Array.map (fun c -> Float.max 0. (f c))) t.counts;
  }

let mutual_information t =
  let n = total t in
  if n <= 0. then invalid_arg "Contingency.mutual_information: empty table";
  let joint = Array.map (Array.map (fun c -> c /. n)) t.counts in
  Numeric.float_sum_range t.rows (fun i ->
      Numeric.float_sum_range t.cols (fun j ->
          let pij = joint.(i).(j) in
          if pij <= 0. then 0.
          else begin
            let pi = Summation.sum joint.(i) in
            let pj =
              Numeric.float_sum_range t.rows (fun k -> joint.(k).(j))
            in
            pij *. log (pij /. (pi *. pj))
          end))
  |> Float.max 0.
