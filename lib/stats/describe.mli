(** Descriptive statistics. *)

val mean : float array -> float
(** @raise Invalid_argument on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator).
    @raise Invalid_argument when fewer than two observations. *)

val std : float array -> float

val median : float array -> float
(** Does not mutate its argument. *)

val quantile : float array -> float -> float
(** [quantile xs p] is the linearly-interpolated [p]-quantile (type-7,
    the R default). @raise Invalid_argument for [p] outside [0,1] or
    the empty array. *)

val min_max : float array -> float * float

val standardize : float array -> float array
(** [(x - mean) / std]. @raise Invalid_argument when the std is zero. *)

(** Single-pass numerically-stable accumulation of count/mean/variance
    (Welford's algorithm), usable for streaming experiment metrics. *)
module Online : sig
  type t

  val empty : t
  val add : t -> float -> t
  val count : t -> int
  val mean : t -> float
  (** @raise Invalid_argument when empty. *)

  val variance : t -> float
  (** Unbiased. @raise Invalid_argument with fewer than two points. *)

  val std : t -> float
  val merge : t -> t -> t
  (** Chan et al. parallel combination. *)
end
