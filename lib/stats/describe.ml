open Dp_math

let mean = Summation.mean

let variance xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Describe.variance: needs at least two points";
  let m = mean xs in
  Summation.sum_map (fun x -> Numeric.sq (x -. m)) xs /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Describe.quantile: empty array";
  let p = Numeric.check_prob "Describe.quantile p" p in
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  (* Type-7: h = (n-1)p; linear interpolation between floor and ceil. *)
  let h = float_of_int (n - 1) *. p in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Describe.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let standardize xs =
  let m = mean xs and s = std xs in
  if s = 0. then invalid_arg "Describe.standardize: zero standard deviation";
  Array.map (fun x -> (x -. m) /. s) xs

module Online = struct
  type t = { count : int; mean : float; m2 : float }

  let empty = { count = 0; mean = 0.; m2 = 0. }

  let add t x =
    let count = t.count + 1 in
    let delta = x -. t.mean in
    let mean = t.mean +. (delta /. float_of_int count) in
    let m2 = t.m2 +. (delta *. (x -. mean)) in
    { count; mean; m2 }

  let count t = t.count

  let mean t =
    if t.count = 0 then invalid_arg "Describe.Online.mean: no observations";
    t.mean

  let variance t =
    if t.count < 2 then
      invalid_arg "Describe.Online.variance: needs at least two points";
    t.m2 /. float_of_int (t.count - 1)

  let std t = sqrt (variance t)

  let merge a b =
    if a.count = 0 then b
    else if b.count = 0 then a
    else begin
      let count = a.count + b.count in
      let delta = b.mean -. a.mean in
      let fa = float_of_int a.count and fb = float_of_int b.count in
      let fc = float_of_int count in
      let mean = a.mean +. (delta *. fb /. fc) in
      let m2 = a.m2 +. b.m2 +. (Numeric.sq delta *. fa *. fb /. fc) in
      { count; mean; m2 }
    end
end
