type interval = { estimate : float; lo : float; hi : float }

let confidence_interval ?(replicates = 1000) ?(confidence = 0.95) ~statistic xs
    g =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.confidence_interval: empty sample";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap.confidence_interval: confidence must be in (0,1)";
  if replicates <= 0 then
    invalid_arg "Bootstrap.confidence_interval: replicates must be positive";
  let estimate = statistic xs in
  let resample = Array.make n 0. in
  let stats =
    Array.init replicates (fun _ ->
        for i = 0 to n - 1 do
          resample.(i) <- xs.(Dp_rng.Prng.int g n)
        done;
        statistic resample)
  in
  let alpha = (1. -. confidence) /. 2. in
  {
    estimate;
    lo = Describe.quantile stats alpha;
    hi = Describe.quantile stats (1. -. alpha);
  }
