(** Fixed-width histograms.

    Histograms are both a statistics tool (empirical output
    distributions in the privacy auditor) and a learning object (the DP
    density estimator of experiment E9 releases noisy histogram
    counts). *)

type t = {
  lo : float;
  hi : float;
  bins : int;
  counts : float array;  (** may be fractional after noising *)
  total : float;  (** running total of counts (≥ 0 after clamping) *)
}

val create : lo:float -> hi:float -> bins:int -> t
(** Empty histogram on [\[lo, hi)].
    @raise Invalid_argument when [lo >= hi] or [bins <= 0]. *)

val bin_index : t -> float -> int option
(** The bin containing the value, or [None] when out of range. *)

val add : t -> float -> t
(** Increment the bin containing the value; out-of-range values are
    clamped into the edge bins (so mass is never silently dropped). *)

val of_samples : lo:float -> hi:float -> bins:int -> float array -> t

val count : t -> int -> float

val probability : t -> int -> float
(** Normalized bin mass. @raise Invalid_argument when the histogram is
    empty. *)

val probabilities : t -> float array

val density : t -> int -> float
(** Probability divided by bin width: a piecewise-constant pdf. *)

val density_at : t -> float -> float
(** Density of the bin containing the point; 0 outside the range. *)

val bin_width : t -> float

val bin_center : t -> int -> float

val map_counts : (float -> float) -> t -> t
(** Transform each count (e.g. add Laplace noise); the result's counts
    are clamped at 0 and the total recomputed. *)

val l1_distance : t -> t -> float
(** L1 distance between the normalized histograms.
    @raise Invalid_argument on mismatched binning. *)

val total : t -> float
