(** Gaussian kernel density estimation, used as the non-private
    baseline in the density-estimation experiments (E9) and examples. *)

type t

val fit : ?bandwidth:float -> float array -> t
(** [fit xs] builds a Gaussian KDE. When [bandwidth] is omitted it is
    chosen by Silverman's rule [0.9 min(σ, IQR/1.34) n^{-1/5}].
    @raise Invalid_argument on fewer than two samples or a non-positive
    bandwidth. *)

val density : t -> float -> float

val bandwidth : t -> float

val log_likelihood : t -> float array -> float
(** Mean log density of held-out points (model comparison metric). *)
