(** Checked-in lint exemptions.

    A [lint.exempt] file holds one entry per line — [RULE FRAGMENT] —
    suppressing findings of [RULE] ([*] for every rule) in any file
    whose reported path contains [FRAGMENT] as a substring. Blank
    lines and [#] comments are ignored. *)

type t

val empty : t
val parse : string -> (t, string) result
val load : string -> (t, string) result
val exempt : t -> rule:string -> file:string -> bool
