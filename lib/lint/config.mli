(** Checked-in lint/flow exemptions.

    A [lint.exempt] file holds one entry per line — [RULE FRAGMENT] —
    suppressing findings of [RULE] in any file whose reported path
    contains [FRAGMENT] as a substring. [RULE] is [*] (every rule),
    one rule id ([R7], [F2]), or an inclusive range over one family
    ([R2-R8], [F1-F3]). Blank lines and [#] comments are ignored.
    [parse] and [to_string] round-trip exactly. *)

type rule_spec =
  | Any
  | One of string
  | Range of { prefix : string; lo : int; hi : int }

type entry = { spec : rule_spec; fragment : string }
type t = entry list

val empty : t
val parse : string -> (t, string) result
val load : string -> (t, string) result

val to_string : t -> string
(** One [RULE FRAGMENT] line per entry; [parse (to_string t) = Ok t]. *)

val spec_matches : rule_spec -> rule:string -> bool
val exempt : t -> rule:string -> file:string -> bool
