(* Findings are shared between the token linter (R1..R9) and the flow
   analyzer (F1..F3): one report type, one text/JSON rendering, one
   sort order. Token findings have an empty witness; flow findings
   carry the source-to-sink call chain. *)

type step = { s_file : string; s_line : int; s_col : int; s_what : string }

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;  (** 0-based column of the offending token *)
  message : string;
  witness : step list;
      (** source-to-sink chain, outermost call first; [] for token rules *)
}

let compare_findings a b =
  match compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> (
          match compare a.col b.col with
          | 0 -> compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

(* Overlapping rules can fire on the same token (two clauses of one
   rule, or a token rule and its flow successor run side by side);
   identical (rule, site) findings collapse to the first. *)
let dedup findings =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun f ->
      let key = (f.rule, f.file, f.line, f.col) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    findings

let pp_step fmt s =
  Format.fprintf fmt "    via %s:%d:%d %s" s.s_file s.s_line s.s_col s.s_what

let pp_text fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message;
  List.iter (fun s -> Format.fprintf fmt "@.%a" pp_step s) f.witness

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let step_json s =
  Printf.sprintf {|{"file":"%s","line":%d,"col":%d,"what":"%s"}|}
    (json_escape s.s_file) s.s_line s.s_col (json_escape s.s_what)

(* One object per line: greppable, and a stream stays valid JSON-lines
   even if the process dies mid-report. *)
let pp_json fmt f =
  Format.fprintf fmt
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s","witness":[%s]}|}
    (json_escape f.rule) (json_escape f.file) f.line f.col
    (json_escape f.message)
    (String.concat "," (List.map step_json f.witness))
