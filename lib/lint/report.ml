type finding = { rule : string; file : string; line : int; message : string }

let compare_findings a b =
  match compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.rule b.rule | c -> c)
  | c -> c

let pp_text fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.file f.line f.rule f.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One object per line: greppable, and a stream stays valid JSON-lines
   even if the process dies mid-report. *)
let pp_json fmt f =
  Format.fprintf fmt
    {|{"rule":"%s","file":"%s","line":%d,"message":"%s"}|}
    (json_escape f.rule) (json_escape f.file) f.line (json_escape f.message)
