(* The privacy invariants of this codebase, as lexical rules. Each rule
   is deliberately scoped by path segment: an invariant like
   "charge before release" is meaningless outside the serving engine,
   and keeping scopes tight keeps false positives near zero. *)

type ctx = {
  file : string;  (** path as reported, '/'-separated *)
  segs : string list;
  tokens : Lexer.token array;
}

let all =
  [
    ( "R1",
      "no Stdlib.Random outside lib/rng — all noise must flow through the \
       seeded, splittable Dp_rng.Prng" );
    ( "R2",
      "charge before release: in lib/engine, a plan's run closure may only \
       be invoked after a ledger spend / journal append in the same \
       top-level definition" );
    ( "R3",
      "every lib/**/*.ml has a matching .mli — invariants live in \
       interfaces, and an unconstrained module leaks internals" );
    ( "R4",
      "no difference-of-logs or ratio-of-exps on unbounded quantities in \
       lib/mechanism or lib/pac_bayes — use closed forms or the Dp_math \
       log-domain helpers (underflow turns likelihood ratios into NaN)" );
    ( "R5",
      "no catch-all exception handlers in lib/engine — a swallowed \
       exception can release an answer whose charge failed" );
    ( "R6",
      "no printing of raw dataset values in lib/engine serving paths — \
       only noised answers may reach an output channel" );
    ( "R7",
      "metric and span labels come from the closed Dp_obs.Name catalogue — \
       in lib/engine, lib/mechanism and lib/net, never build a label string \
       at a metrics/span call site (a query argument in a metric name is a \
       side channel)" );
    ( "R8",
      "gate before release: in lib/train, a Released model may only be \
       constructed after a Gates.check / Gates.deterministic verdict in the \
       same top-level definition (an ungated sample is a biased release)" );
    ( "R9",
      "the certifier owns its randomness: in lib/certify, never Prng.copy a \
       generator or reach into an engine's rng field — split fresh streams \
       from the harness's own seed (an audit that shares the privacy noise \
       stream it is testing certifies nothing)" );
  ]

let has_seg ctx s = List.mem s ctx.segs
let is_ml ctx = Filename.check_suffix ctx.file ".ml"

let tok ctx i =
  if i >= 0 && i < Array.length ctx.tokens then ctx.tokens.(i).Lexer.text else ""

let finding ctx rule i message =
  {
    Report.rule;
    file = ctx.file;
    line = ctx.tokens.(i).Lexer.line;
    col = ctx.tokens.(i).Lexer.col;
    message;
    witness = [];
  }

(* R1 ------------------------------------------------------------- *)

let r1 ctx =
  if has_seg ctx "rng" then []
  else
    let out = ref [] in
    Array.iteri
      (fun i (t : Lexer.token) ->
        if t.text = "Random" && tok ctx (i + 1) = "." then
          let qualified = tok ctx (i - 1) = "." in
          if (not qualified) || tok ctx (i - 2) = "Stdlib" then
            out :=
              finding ctx "R1" i
                "Stdlib.Random is unseeded global state; draw noise via \
                 Dp_rng (lib/rng)"
              :: !out)
      ctx.tokens;
    List.rev !out

(* R2 ------------------------------------------------------------- *)

(* Top-level chunks: a new column-0 structure keyword starts a new
   dominance scope, so a spend in one function cannot excuse a release
   in the next. *)
let chunk_starts =
  [ "let"; "and"; "module"; "type"; "exception"; "open"; "include"; "val" ]

let dominators = [ "spend"; "append"; "journal_append"; "replay_charge" ]

let r2 ctx =
  if not (has_seg ctx "engine" && is_ml ctx) then []
  else begin
    let out = ref [] in
    let dominated = ref false in
    Array.iteri
      (fun i (t : Lexer.token) ->
        if t.Lexer.col = 0 && List.mem t.text chunk_starts then
          dominated := false;
        if List.mem t.text dominators then dominated := true;
        if
          t.text = "run"
          && tok ctx (i - 1) = "."
          && (not (List.mem (tok ctx (i + 1)) [ "="; ":"; ";" ]))
          && not !dominated
        then
          out :=
            finding ctx "R2" i
              "release before charge: .run invoked with no preceding ledger \
               spend / journal append in this definition"
            :: !out)
      ctx.tokens;
    List.rev !out
  end

(* R3 ------------------------------------------------------------- *)

let r3 ~files scanned =
  List.filter_map
    (fun file ->
      if
        Filename.check_suffix file ".ml"
        && List.mem "lib" (String.split_on_char '/' file)
        && not (List.mem (file ^ "i") files)
      then
        Some
          {
            Report.rule = "R3";
            file;
            line = 1;
            col = 0;
            message = "library module without an interface: add " ^ file ^ "i";
            witness = [];
          }
      else None)
    scanned

(* R4 ------------------------------------------------------------- *)

(* Matches  log ( ... ) -. log   and   exp ( ... ) /. exp   with the
   parens balanced — the shapes that underflow before the subtraction
   (or division) can cancel. *)
let close_paren ctx i =
  (* [i] points at '('; index just after its matching ')', or None *)
  let n = Array.length ctx.tokens in
  let rec go depth j =
    if j >= n then None
    else
      match tok ctx j with
      | "(" -> go (depth + 1) (j + 1)
      | ")" -> if depth = 1 then Some (j + 1) else go (depth - 1) (j + 1)
      | _ -> go depth (j + 1)
  in
  go 0 i

let r4 ctx =
  if not (has_seg ctx "mechanism" || has_seg ctx "pac_bayes") then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i (t : Lexer.token) ->
        let pair fn op =
          t.text = fn
          && tok ctx (i + 1) = "("
          &&
          match close_paren ctx (i + 1) with
          | Some j -> tok ctx j = op && tok ctx (j + 1) = fn
          | None -> false
        in
        if pair "log" "-." then
          out :=
            finding ctx "R4" i
              "log a -. log b underflows to -inf - -inf = nan in the tails; \
               use the closed form or Dp_math's log-domain helpers"
            :: !out
        else if pair "exp" "/." then
          out :=
            finding ctx "R4" i
              "exp a /. exp b overflows/underflows in the tails; subtract in \
               log domain instead"
            :: !out)
      ctx.tokens;
    List.rev !out
  end

(* R5 ------------------------------------------------------------- *)

let r5 ctx =
  if not (has_seg ctx "engine" && is_ml ctx) then []
  else begin
    let out = ref [] in
    let add i msg = out := finding ctx "R5" i msg :: !out in
    Array.iteri
      (fun i (t : Lexer.token) ->
        if t.text = "_" && tok ctx (i + 1) = "->" && tok ctx (i - 1) = "with"
        then begin
          (* `with _ ->` is only a handler under a `try`; under `match`
             it is an ordinary wildcard. *)
          let rec back j =
            if j < 0 then ()
            else
              match tok ctx j with
              | "try" ->
                  add i
                    "catch-all `try ... with _ ->` can swallow a failed \
                     charge; match the specific exceptions"
              | "match" -> ()
              | _ -> back (j - 1)
          in
          back (i - 2)
        end;
        if t.text = "_" && tok ctx (i - 1) = "exception" && tok ctx (i + 1) = "->"
        then
          add i
            "catch-all `exception _ ->` case; match the specific exceptions";
        if t.text = "Failure" && tok ctx (i + 1) = "_" then
          add i
            "matching `Failure _` hides which invariant failed; use a typed \
             error or match the message")
      ctx.tokens;
    List.rev !out
  end

(* R6 ------------------------------------------------------------- *)

let print_heads =
  [
    "Printf"; "Format"; "print_string"; "print_endline"; "print_float";
    "print_int"; "prerr_string"; "prerr_endline"; "output_string";
  ]

(* A bounded token window approximates "the print's arguments": wide
   enough for `Printf.sprintf fmt (f c.values)`, narrow enough not to
   leak across statements — and a `;` ends the arguments for sure. *)
let r6_window = 14

let r6 ctx =
  if not (has_seg ctx "engine" && is_ml ctx) then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i (t : Lexer.token) ->
        if List.mem t.text print_heads then
          let hit = ref false in
          let j = ref (i + 1) in
          while !j <= i + r6_window && tok ctx !j <> ";" do
            if tok ctx !j = "values" then hit := true;
            incr j
          done;
          if !hit then
            out :=
              finding ctx "R6" i
                "raw dataset values reach an output channel; only noised \
                 answers may be printed"
              :: !out)
      ctx.tokens;
    List.rev !out
  end

(* R7 ------------------------------------------------------------- *)

(* A metrics/span record call is `Module.fn args...` where Module is an
   observability module and fn an instrumented-record function. Labels
   must be Dp_obs.Name constructors, so any string-building token among
   the arguments means a label (or tag key) is being assembled from
   runtime data — exactly the side channel the closed catalogue exists
   to rule out. The window mirrors R6: bounded, and a `;` ends the
   arguments for sure. String literals never trip the rule (the lexer
   strips them); only the *building* of strings does. *)

let obs_modules = [ "Metrics"; "Span"; "Obs"; "Dp_obs"; "Trace"; "Draws" ]

let record_fns =
  [
    "incr"; "add"; "set_counter"; "set_gauge"; "observe"; "begin_"; "with_";
    "tag"; "record"; "dataset";
  ]

let string_builders =
  [
    "^"; "sprintf"; "asprintf"; "Printf"; "Format"; "string_of_int";
    "string_of_float"; "concat"; "String"; "Bytes"; "Buffer";
  ]

let r7_window = 12

let r7 ctx =
  if
    not
      ((has_seg ctx "engine" || has_seg ctx "mechanism" || has_seg ctx "net")
      && is_ml ctx)
  then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i (t : Lexer.token) ->
        if
          List.mem t.text record_fns
          && tok ctx (i - 1) = "."
          && List.mem (tok ctx (i - 2)) obs_modules
        then begin
          let hit = ref false in
          let j = ref (i + 1) in
          while !j <= i + r7_window && tok ctx !j <> ";" do
            if List.mem (tok ctx !j) string_builders then hit := true;
            incr j
          done;
          if !hit then
            out :=
              finding ctx "R7" i
                "metric/span label built at the call site; use a closed \
                 Dp_obs.Name constructor (runtime data in a label is a \
                 side channel)"
              :: !out
        end)
      ctx.tokens;
    List.rev !out
  end

(* R8 ------------------------------------------------------------- *)

(* The training twin of R2: where R2 guards the charge, R8 guards the
   gate. A `Released { ... }` construction is the moment a posterior
   draw leaves the sampler, so it must be dominated — in the same
   column-0 chunk — by a convergence verdict (`Gates.check` for MCMC,
   `Gates.deterministic` for closed-form backends). The type
   declaration `Released of { ... }` is not a construction: its next
   token is `of`, never `{`. *)

let r8_dominators = [ "check"; "deterministic" ]

let r8 ctx =
  if not (has_seg ctx "train" && is_ml ctx) then []
  else begin
    let out = ref [] in
    let dominated = ref false in
    Array.iteri
      (fun i (t : Lexer.token) ->
        if t.Lexer.col = 0 && List.mem t.text chunk_starts then
          dominated := false;
        if List.mem t.text r8_dominators then dominated := true;
        if t.text = "Released" && tok ctx (i + 1) = "{" && not !dominated then
          out :=
            finding ctx "R8" i
              "release before gate: Released constructed with no preceding \
               Gates.check / Gates.deterministic verdict in this definition"
            :: !out)
      ctx.tokens;
    List.rev !out
  end

(* R9 ------------------------------------------------------------- *)

(* The certification harness hypothesis-tests the engine's noise, so it
   must be statistically independent of it. [Prng.copy] duplicates a
   stream — the one way to alias the engine's privacy generator — and a
   [.rng] field access reaches into an engine record for its stream.
   Either one correlates the audit's draws with the noise under test;
   the harness may only [Prng.create] from its own seed and
   [Prng.split] children off that. *)

let r9 ctx =
  if not (has_seg ctx "certify" && is_ml ctx) then []
  else begin
    let out = ref [] in
    Array.iteri
      (fun i (t : Lexer.token) ->
        if t.text = "copy" && tok ctx (i - 1) = "." && tok ctx (i - 2) = "Prng"
        then
          out :=
            finding ctx "R9" i
              "Prng.copy aliases a noise stream; the certifier must split \
               fresh streams from its own seed, never duplicate one"
            :: !out;
        if t.text = "rng" && tok ctx (i - 1) = "." then
          out :=
            finding ctx "R9" i
              "certifier reads an engine's rng field; drawing on the \
               privacy stream under test voids the audit"
            :: !out)
      ctx.tokens;
    List.rev !out
  end

let run ctx =
  List.concat [ r1 ctx; r2 ctx; r4 ctx; r5 ctx; r6 ctx; r7 ctx; r8 ctx; r9 ctx ]
