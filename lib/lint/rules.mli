(** The named privacy-invariant rules.

    Token-level rules (R1, R2, R4, R5, R6, R7, R8, R9) run per file via
    {!run}; the interface-coverage rule (R3) runs once over the scanned
    file set via {!r3}. Scoping is by path segment — e.g. R2/R5/R6 only
    fire in [lib/engine], R7 in [lib/engine] and [lib/mechanism], R8 in
    [lib/train], R9 in [lib/certify] — see {!all} for the catalogue. *)

type ctx = {
  file : string;  (** path as reported, '/'-separated *)
  segs : string list;  (** [file] split on '/' *)
  tokens : Lexer.token array;
}

val all : (string * string) list
(** [(id, summary)] for every rule, in id order. *)

val run : ctx -> Report.finding list
(** All token-level rules on one file, in source order per rule. *)

val r3 : files:string list -> string list -> Report.finding list
(** [r3 ~files scanned]: findings for every [lib/**/*.ml] in [scanned]
    with no matching [.mli] in [files] (the full scanned set). *)
