(** Walking, lexing and rule dispatch — the engine of [dpkit lint]. *)

val scan_dir : string -> string list
(** All [.ml]/[.mli] files under a directory (skipping [_build],
    [.git], …), as sorted '/'-separated paths relative to it. *)

val lint :
  ?exempt:Config.t -> root:string -> string list -> Report.finding list
(** Lint the given root-relative files: token rules per file (with
    [lint:allow] comment suppressions applied), R3 over the whole set,
    then {!Config} exemptions, sorted by file/line/rule. *)

val lint_dir : ?exempt:Config.t -> string -> Report.finding list
(** [lint ~root (scan_dir root)]. *)
