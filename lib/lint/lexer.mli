(** A comment/string-aware token scanner for OCaml-ish source.

    Not a full OCaml lexer — just enough structure for the privacy
    lint rules: comments (nested) and string/char literals are
    stripped so their contents can never trigger a rule, identifiers
    and numbers lex as single tokens, and the handful of two-character
    operators the rules inspect ([->], [-.], [/.], …) are kept
    intact. Every token carries its 1-based line and 0-based column. *)

type token = { text : string; line : int; col : int }

type t = {
  tokens : token array;
  allows : (int * string) list;
      (** [lint:allow RULE] and [flow:allow RULE] comment directives:
          (line, rule). A finding of [rule] on exactly that line is
          suppressed. The R*/F* namespaces are disjoint, so both kinds
          share one list. *)
}

val scan : string -> t
