(** Lint findings and their text/JSON renderings. *)

type finding = { rule : string; file : string; line : int; message : string }

val compare_findings : finding -> finding -> int
(** Order by file, then line, then rule. *)

val pp_text : Format.formatter -> finding -> unit
(** [FILE:LINE: [RULE] message] — editor-clickable. *)

val pp_json : Format.formatter -> finding -> unit
(** One JSON object (single line, no trailing newline) per finding. *)
