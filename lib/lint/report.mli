(** Findings and their text/JSON renderings, shared by the token
    linter ([dpkit lint], rules R1..R9) and the interprocedural flow
    analyzer ([dpkit flow], checks F1..F3). *)

type step = { s_file : string; s_line : int; s_col : int; s_what : string }
(** One frame of a witness path: where, plus a human description of
    the hop ("tainted by Registry.column", "calls Helper.fire", …). *)

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;  (** 0-based column of the offending token *)
  message : string;
  witness : step list;
      (** source-to-sink chain, outermost call first; [] for token rules *)
}

val compare_findings : finding -> finding -> int
(** Order by file, then line, then column, then rule. *)

val dedup : finding list -> finding list
(** Drop all but the first finding per (rule, file, line, col) — the
    overlapping-rules case where two clauses fire on one token. Keeps
    the input order. *)

val pp_text : Format.formatter -> finding -> unit
(** [FILE:LINE:COL: [RULE] message] — editor-clickable — followed by
    one indented [via FILE:LINE:COL what] line per witness step. *)

val pp_json : Format.formatter -> finding -> unit
(** One JSON object (single line, no trailing newline) per finding,
    witness included. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (used by
    the flow analyzer's SARIF writer too). *)
