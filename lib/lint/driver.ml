let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let scan_dir root =
  (* .ml/.mli files under [root], paths relative to it, sorted *)
  let rec walk rel acc =
    let abs = if rel = "" then root else Filename.concat root rel in
    match Sys.is_directory abs with
    | exception Sys_error _ -> acc
    | false ->
        if
          Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli"
        then rel :: acc
        else acc
    | true ->
        if List.mem (Filename.basename abs) skip_dirs then acc
        else
          Array.fold_left
            (fun acc entry ->
              let child = if rel = "" then entry else rel ^ "/" ^ entry in
              walk child acc)
            acc (Sys.readdir abs)
  in
  List.sort compare (walk "" [])

let lint ?(exempt = Config.empty) ~root files =
  let per_file file =
    let { Lexer.tokens; allows } = Lexer.scan (read_file (Filename.concat root file)) in
    let ctx = { Rules.file; segs = String.split_on_char '/' file; tokens } in
    List.filter
      (fun (f : Report.finding) ->
        not (List.mem (f.line, f.rule) allows))
      (Rules.run ctx)
  in
  let findings =
    List.concat_map per_file files @ Rules.r3 ~files files
  in
  findings
  |> List.filter (fun (f : Report.finding) ->
         not (Config.exempt exempt ~rule:f.rule ~file:f.file))
  |> List.sort Report.compare_findings
  |> Report.dedup

let lint_dir ?exempt root = lint ?exempt ~root (scan_dir root)
