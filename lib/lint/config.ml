(* Exemption entries: `RULE-SPEC PATH-FRAGMENT` per line. A rule spec
   is `*` (every rule), one rule id (`R7`, `F2`), or an inclusive
   range over one rule family (`R2-R8`, `F1-F3`). The parser and
   [to_string] round-trip exactly — pinned by a qcheck property — so a
   programmatically-edited lint.exempt never drifts. *)

type rule_spec =
  | Any
  | One of string
  | Range of { prefix : string; lo : int; hi : int }

type entry = { spec : rule_spec; fragment : string }
type t = entry list

let empty = []

(* A rule id is an alphabetic family prefix plus a decimal index:
   R1..R9, F1..F3. Returns (prefix, index). *)
let split_rule s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && not (s.[!i] >= '0' && s.[!i] <= '9') do incr i done;
  if !i = 0 || !i = n then None
  else
    match int_of_string_opt (String.sub s !i (n - !i)) with
    | Some idx when idx >= 0 -> Some (String.sub s 0 !i, idx)
    | _ -> None

let parse_spec s =
  if s = "*" then Ok Any
  else
    match String.index_opt s '-' with
    | None -> Ok (One s)
    | Some i -> (
        let a = String.sub s 0 i
        and b = String.sub s (i + 1) (String.length s - i - 1) in
        match (split_rule a, split_rule b) with
        | Some (pa, lo), Some (pb, hi) when pa = pb && lo <= hi ->
            Ok (Range { prefix = pa; lo; hi })
        | _ ->
            Error
              (Printf.sprintf
                 "bad rule range %S (want e.g. R2-R8, same family, lo <= hi)"
                 s))

let spec_to_string = function
  | Any -> "*"
  | One r -> r
  | Range { prefix; lo; hi } -> Printf.sprintf "%s%d-%s%d" prefix lo prefix hi

let to_string t =
  String.concat ""
    (List.map
       (fun e -> spec_to_string e.spec ^ " " ^ e.fragment ^ "\n")
       t)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (n + 1) rest
        else
          match String.index_opt line ' ' with
          | None ->
              Error
                (Printf.sprintf
                   "lint.exempt line %d: expected 'RULE PATH-FRAGMENT', got %S"
                   n line)
          | Some i -> (
              let rule = String.sub line 0 i in
              let fragment =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              if fragment = "" then
                Error (Printf.sprintf "lint.exempt line %d: empty path" n)
              else
                match parse_spec rule with
                | Error msg ->
                    Error (Printf.sprintf "lint.exempt line %d: %s" n msg)
                | Ok spec -> go ({ spec; fragment } :: acc) (n + 1) rest))
  in
  go [] 1 lines

let load path =
  match open_in_bin path with
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      parse s
  | exception Sys_error msg -> Error msg

let contains ~fragment s =
  let fn = String.length fragment and sn = String.length s in
  let rec at i =
    if i + fn > sn then false
    else if String.sub s i fn = fragment then true
    else at (i + 1)
  in
  fn > 0 && at 0

let spec_matches spec ~rule =
  match spec with
  | Any -> true
  | One r -> r = rule
  | Range { prefix; lo; hi } -> (
      match split_rule rule with
      | Some (p, idx) -> p = prefix && lo <= idx && idx <= hi
      | None -> false)

let exempt t ~rule ~file =
  List.exists
    (fun e -> spec_matches e.spec ~rule && contains ~fragment:e.fragment file)
    t
