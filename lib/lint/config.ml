type entry = { rule : string; fragment : string }
type t = entry list

let empty = []

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (n + 1) rest
        else
          match String.index_opt line ' ' with
          | None ->
              Error
                (Printf.sprintf
                   "lint.exempt line %d: expected 'RULE PATH-FRAGMENT', got %S"
                   n line)
          | Some i ->
              let rule = String.sub line 0 i in
              let fragment =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              if fragment = "" then
                Error (Printf.sprintf "lint.exempt line %d: empty path" n)
              else go ({ rule; fragment } :: acc) (n + 1) rest)
  in
  go [] 1 lines

let load path =
  match open_in_bin path with
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      parse s
  | exception Sys_error msg -> Error msg

let contains ~fragment s =
  let fn = String.length fragment and sn = String.length s in
  let rec at i =
    if i + fn > sn then false
    else if String.sub s i fn = fragment then true
    else at (i + 1)
  in
  fn > 0 && at 0

let exempt t ~rule ~file =
  List.exists
    (fun e -> (e.rule = "*" || e.rule = rule) && contains ~fragment:e.fragment file)
    t
