type token = { text : string; line : int; col : int }
type t = { tokens : token array; allows : (int * string) list }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

(* Two-character operators the rules care about; anything else lexes as
   a single symbol character. *)
let two_char_ops = [ "->"; "-."; "/."; "*."; "+."; "<="; ">="; ":="; "::"; "<>" ]

(* Find "lint:allow RULE" / "flow:allow RULE" directives inside a
   comment body; [line] is the line the directive starts on. The two
   rule namespaces are disjoint — R-rules vs F-rules — so one allow
   list serves both the token linter and the flow analyzer. *)
let allow_keys = [ "lint:allow"; "flow:allow" ]

let key_at body i =
  List.find_opt
    (fun key ->
      let kn = String.length key in
      i + kn <= String.length body && String.sub body i kn = key)
    allow_keys

let allows_of_comment ~line body =
  let n = String.length body in
  let rec find acc i cur_line =
    if i >= n then acc
    else if body.[i] = '\n' then find acc (i + 1) (cur_line + 1)
    else
      match key_at body i with
      | Some key ->
          begin
            let j = ref (i + String.length key) in
            while !j < n && body.[!j] = ' ' do incr j done;
            let k = ref !j in
            while
              !k < n && (is_ident_char body.[!k] || is_digit body.[!k])
            do
              incr k
            done;
            let rule = String.sub body !j (!k - !j) in
            let acc = if rule = "" then acc else (cur_line, rule) :: acc in
            find acc !k cur_line
          end
      | None -> find acc (i + 1) cur_line
  in
  find [] 0 line

let scan src =
  let n = String.length src in
  let tokens = ref [] in
  let allows = ref [] in
  let line = ref 1 and bol = ref 0 in
  let emit text start = tokens := { text; line = !line; col = start - !bol } :: !tokens in
  let i = ref 0 in
  let newline at = incr line; bol := at + 1 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin newline !i; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment, possibly nested; harvest lint:allow directives *)
      let start = !i and start_line = !line in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if src.[!i] = '\n' then begin newline !i; incr i end
        else if src.[!i] = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth; i := !i + 2
        end
        else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth; i := !i + 2
        end
        else incr i
      done;
      allows :=
        allows_of_comment ~line:start_line (String.sub src start (!i - start))
        @ !allows
    end
    else if c = '"' then begin
      (* string literal: contents never produce tokens *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '\\' && !i + 1 < n then begin
          (* escape sequence; a backslash-newline continuation still
             ends a source line *)
          if src.[!i + 1] = '\n' then newline (!i + 1);
          i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then newline !i;
          if src.[!i] = '"' then fin := true;
          incr i
        end
      done
    end
    else if c = '{' && !i + 1 < n && src.[!i + 1] = '|' then begin
      (* basic quoted string {| ... |} *)
      i := !i + 2;
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '|' && !i + 1 < n && src.[!i + 1] = '}' then begin
          fin := true; i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then newline !i;
          incr i
        end
      done
    end
    else if c = '\'' then begin
      (* char literal vs type-variable quote *)
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && !j <= !i + 5 && src.[!j] <> '\'' do incr j done;
        if !j < n && src.[!j] = '\'' then i := !j + 1
        else begin emit "'" !i; incr i end
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then i := !i + 3
      else begin emit "'" !i; incr i end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      emit (String.sub src start (!i - start)) start
    end
    else if is_digit c then begin
      (* numbers (incl. 1e-6, 0x1f, 1_000.) lex as one token so their
         inner '-'/'.' never look like operators *)
      let start = !i in
      incr i;
      let continue = ref true in
      while !continue && !i < n do
        let d = src.[!i] in
        if
          is_ident_char d || is_digit d || d = '.'
          || ((d = '+' || d = '-')
             && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E'))
        then incr i
        else continue := false
      done;
      emit (String.sub src start (!i - start)) start
    end
    else begin
      let two =
        if !i + 1 < n then
          let s = String.sub src !i 2 in
          if List.mem s two_char_ops then Some s else None
        else None
      in
      match two with
      | Some s -> emit s !i; i := !i + 2
      | None -> emit (String.make 1 c) !i; incr i
    end
  done;
  { tokens = Array.of_list (List.rev !tokens); allows = !allows }
