open Dp_mechanism

type event = { label : string; budget : Privacy.budget }

type outcome =
  | Consistent of Privacy.budget
  | Overdraft of { index : int; label : string; remaining : Privacy.budget }

let replay ~total events =
  let acc = Privacy.Accountant.create ~total in
  let rec go i = function
    | [] -> Consistent (Privacy.Accountant.spent acc)
    | e :: rest -> (
        match Privacy.Accountant.spend acc e.budget with
        | () -> go (i + 1) rest
        | exception Privacy.Budget_exceeded { remaining; _ } ->
            Overdraft { index = i; label = e.label; remaining })
  in
  go 0 events

let pp_outcome fmt = function
  | Consistent spent ->
      Format.fprintf fmt "consistent: spent %a" Privacy.pp_budget spent
  | Overdraft { index; label; remaining } ->
      Format.fprintf fmt "OVERDRAFT at event %d (%s): only %a remaining"
        index label Privacy.pp_budget remaining
