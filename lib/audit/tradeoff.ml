type point = { fpr : float; fnr : float }

type report = {
  roc : point list;
  min_total_error : float;
  region_violations : int;
  epsilon_theory : float;
}

let region_floor ~epsilon ~fpr =
  let fpr = Dp_math.Numeric.check_prob "Tradeoff.region_floor fpr" fpr in
  let epsilon = Dp_math.Numeric.check_nonneg "Tradeoff.region_floor epsilon" epsilon in
  Float.max 0.
    (Float.max
       (1. -. (exp epsilon *. fpr))
       (exp (-.epsilon) *. (1. -. fpr)))

(* ROC of the likelihood-ratio family between discrete distributions:
   sort outcomes by decreasing ratio q/p and sweep the rejection set.
   Rejecting H0 on the swept set S gives fpr = p(S), fnr = 1 - q(S). *)
let roc_of_distributions ~p ~q =
  let k = Array.length p in
  if Array.length q <> k then
    invalid_arg "Tradeoff.roc_of_distributions: length mismatch";
  let order = Array.init k Fun.id in
  Array.sort
    (fun i j ->
      (* decreasing likelihood ratio q/p, with q/0 = +inf first *)
      let r i = if p.(i) = 0. then infinity else q.(i) /. p.(i) in
      compare (r j) (r i))
    order;
  let clamp = Dp_math.Numeric.clamp ~lo:0. ~hi:1. in
  let points = ref [ { fpr = 0.; fnr = 1. } ] in
  let fp = ref 0. and tp = ref 0. in
  Array.iter
    (fun i ->
      fp := !fp +. p.(i);
      tp := !tp +. q.(i);
      points := { fpr = clamp !fp; fnr = clamp (1. -. !tp) } :: !points)
    order;
  List.sort (fun a b -> compare a.fpr b.fpr) !points

let audit ?(slack = 0.02) ~trials ~outcomes ~epsilon_theory ~run ~run' g =
  if trials <= 0 then invalid_arg "Tradeoff.audit: trials must be positive";
  if outcomes <= 0 then invalid_arg "Tradeoff.audit: outcomes must be positive";
  let counts = Array.make outcomes 1. and counts' = Array.make outcomes 1. in
  for _ = 1 to trials do
    let o = run g in
    if o < 0 || o >= outcomes then invalid_arg "Tradeoff.audit: outcome out of range";
    counts.(o) <- counts.(o) +. 1.;
    let o' = run' g in
    if o' < 0 || o' >= outcomes then invalid_arg "Tradeoff.audit: outcome out of range";
    counts'.(o') <- counts'.(o') +. 1.
  done;
  let total = float_of_int trials +. float_of_int outcomes in
  let p = Array.map (fun c -> c /. total) counts in
  let q = Array.map (fun c -> c /. total) counts' in
  let roc = roc_of_distributions ~p ~q in
  let min_total_error =
    List.fold_left (fun acc pt -> Float.min acc (pt.fpr +. pt.fnr)) infinity roc
  in
  let region_violations =
    List.length
      (List.filter
         (fun pt ->
           pt.fnr < region_floor ~epsilon:epsilon_theory ~fpr:pt.fpr -. slack)
         roc)
  in
  { roc; min_total_error; region_violations; epsilon_theory }
