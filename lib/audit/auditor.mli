(** Empirical differential-privacy auditing (experiments E1/E2/E5).

    Runs a mechanism many times on a fixed pair of neighbouring inputs
    and estimates the privacy loss
    [ε̂ = max_S |log (P[M(D) ∈ S] / P[M(D') ∈ S])|] over a finite
    event family S (single outcomes for discrete mechanisms, bins for
    continuous ones). Laplace (add-α) smoothing keeps empty cells from
    producing spurious infinities; with [trials] large and the true
    mechanism ε-DP, [ε̂ ≤ ε + sampling error].

    The estimator is a *lower*-bound style audit: it can expose a
    violation (ε̂ ≫ ε) but cannot certify privacy; the exact checks on
    finite mechanisms ([Dp_info.Entropy.max_divergence] on closed-form
    distributions) complement it. *)

type report = {
  epsilon_hat : float;  (** smoothed max |log ratio| over events *)
  epsilon_lower : float;
      (** conservative (confidence-adjusted) estimate: each event's
          numerator count is shrunk and denominator inflated by three
          Poisson standard deviations before the ratio; low-count tail
          bins then cannot raise it spuriously. [passes] uses this. *)
  epsilon_theory : float;  (** the claimed ε, echoed for tables *)
  worst_event : int;  (** index of the event achieving ε̂ *)
  trials : int;
  counts : float array * float array;  (** smoothed counts on (D, D') *)
}

val audit_discrete :
  ?smoothing:float ->
  trials:int ->
  outcomes:int ->
  epsilon_theory:float ->
  run:(Dp_rng.Prng.t -> int) ->
  run':(Dp_rng.Prng.t -> int) ->
  Dp_rng.Prng.t ->
  report
(** [audit_discrete ~trials ~outcomes ~run ~run' g]: [run]/[run'] are
    the mechanism fixed to the two neighbouring inputs, producing an
    outcome in [\[0, outcomes)]. [smoothing] defaults to 1 (add-one).
    @raise Invalid_argument on non-positive trials/outcomes or an
    outcome out of range. *)

val audit_continuous :
  ?smoothing:float ->
  trials:int ->
  bins:int ->
  lo:float ->
  hi:float ->
  epsilon_theory:float ->
  run:(Dp_rng.Prng.t -> float) ->
  run':(Dp_rng.Prng.t -> float) ->
  Dp_rng.Prng.t ->
  report
(** Same for real-valued outputs, binned on [\[lo, hi\]] (out-of-range
    samples are clamped into the edge bins). *)

val audit_exact : p:float array -> q:float array -> float
(** Exact two-sided max divergence between closed-form output
    distributions — zero sampling error; use whenever the mechanism's
    distribution is computable. *)

val passes : report -> slack:float -> bool
(** [epsilon_lower ≤ ε_theory + slack]. *)
