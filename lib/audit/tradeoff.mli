(** The hypothesis-testing characterization of differential privacy
    (Wasserman–Zhou / Kairouz et al.; the two-party view is the
    paper's ref 10, McGregor et al.).

    An adversary observing one output of an ε-DP mechanism and testing
    H₀: input was D vs H₁: input was D′ faces, for ANY test, false
    positive/negative rates inside the region

    [α·e^ε + β ≥ 1  and  α + β·e^ε ≥ 1].

    This module computes the empirical ROC of the (optimal)
    likelihood-ratio family built from smoothed output frequencies and
    checks it against the region — a sharper audit than the max-ratio
    estimator because it uses every threshold at once. *)

type point = { fpr : float; fnr : float }

type report = {
  roc : point list;  (** one point per threshold, sorted by fpr *)
  min_total_error : float;  (** min over the ROC of fpr + fnr *)
  region_violations : int;
      (** points strictly below the ε-DP tradeoff boundary (must be 0
          up to sampling error) *)
  epsilon_theory : float;
}

val region_floor : epsilon:float -> fpr:float -> float
(** The ε-DP floor on the false-negative rate at a given FPR:
    [max(0, 1 − e^ε·α, e^{−ε}·(1 − α))]. *)

val audit :
  ?slack:float ->
  trials:int ->
  outcomes:int ->
  epsilon_theory:float ->
  run:(Dp_rng.Prng.t -> int) ->
  run':(Dp_rng.Prng.t -> int) ->
  Dp_rng.Prng.t ->
  report
(** Builds smoothed output frequencies under both inputs, forms the
    likelihood-ratio ROC over all thresholds, and counts region
    violations beyond [slack] (default 0.02).
    @raise Invalid_argument on non-positive trials/outcomes. *)

val roc_of_distributions : p:float array -> q:float array -> point list
(** The exact ROC of the likelihood-ratio test between two known
    output distributions (no sampling). *)
