(** Deterministic replay of a budget trace.

    The serving engine logs one record per decision; replaying the
    charged amounts through a fresh [Privacy.Accountant] verifies,
    after the fact, that the claimed spend never overdrew the declared
    total — the accounting analogue of the output-distribution audits
    in {!Auditor}. Because the engine logs *marginal* composed charges
    (the increase of the composed spend, whatever the composition
    backend), the marginals telescope and basic composition of the
    trace is exact for every backend. *)

open Dp_mechanism

type event = { label : string; budget : Privacy.budget }
(** One charged release: a human-readable label and the budget it cost. *)

type outcome =
  | Consistent of Privacy.budget  (** final spent budget of the trace *)
  | Overdraft of { index : int; label : string; remaining : Privacy.budget }
      (** the first event (0-based) whose charge exceeded what was
          left *)

val replay : total:Privacy.budget -> event list -> outcome
(** Replays in order through [Privacy.Accountant], catching its typed
    {!Privacy.Budget_exceeded} rejection. *)

val pp_outcome : Format.formatter -> outcome -> unit
