type report = {
  epsilon_hat : float;
  epsilon_lower : float;
  epsilon_theory : float;
  worst_event : int;
  trials : int;
  counts : float array * float array;
}

(* z for the conservative per-event confidence adjustment: shrink the
   numerator count and inflate the denominator count by three Poisson
   standard deviations before taking the ratio. Low-count tail bins
   then contribute nothing spurious. *)
let audit_z = 3.

let estimate ~smoothing ~epsilon_theory ~trials counts counts' =
  let k = Array.length counts in
  let total = float_of_int trials +. (smoothing *. float_of_int k) in
  let p i = (counts.(i) +. smoothing) /. total in
  let q i = (counts'.(i) +. smoothing) /. total in
  let worst = ref 0 and worst_val = ref 0. in
  for i = 0 to k - 1 do
    let r = Float.abs (log (p i /. q i)) in
    if r > !worst_val then begin
      worst_val := r;
      worst := i
    end
  done;
  (* Conservative estimate: per-event lower confidence bound on the
     ratio, in both directions. *)
  let lower_dir c1 c2 =
    let best = ref 0. in
    for i = 0 to k - 1 do
      let hi_count = c1.(i) +. smoothing in
      let lo_num = hi_count -. (audit_z *. sqrt hi_count) in
      let lo_den = c2.(i) +. smoothing in
      let hi_den = lo_den +. (audit_z *. sqrt lo_den) +. (audit_z *. audit_z) in
      if lo_num > 0. then best := Float.max !best (log (lo_num /. hi_den))
    done;
    !best
  in
  {
    epsilon_hat = !worst_val;
    epsilon_lower = Float.max (lower_dir counts counts') (lower_dir counts' counts);
    epsilon_theory;
    worst_event = !worst;
    trials;
    counts =
      ( Array.init k (fun i -> counts.(i) +. smoothing),
        Array.init k (fun i -> counts'.(i) +. smoothing) );
  }

let audit_discrete ?(smoothing = 1.) ~trials ~outcomes ~epsilon_theory ~run
    ~run' g =
  if trials <= 0 then invalid_arg "Auditor.audit_discrete: trials must be positive";
  if outcomes <= 0 then
    invalid_arg "Auditor.audit_discrete: outcomes must be positive";
  ignore (Dp_math.Numeric.check_nonneg "Auditor smoothing" smoothing);
  let counts = Array.make outcomes 0. and counts' = Array.make outcomes 0. in
  let record arr o =
    if o < 0 || o >= outcomes then
      invalid_arg "Auditor.audit_discrete: outcome out of range";
    arr.(o) <- arr.(o) +. 1.
  in
  for _ = 1 to trials do
    record counts (run g);
    record counts' (run' g)
  done;
  estimate ~smoothing ~epsilon_theory ~trials counts counts'

let audit_continuous ?(smoothing = 1.) ~trials ~bins ~lo ~hi ~epsilon_theory
    ~run ~run' g =
  if trials <= 0 then
    invalid_arg "Auditor.audit_continuous: trials must be positive";
  if bins <= 0 then invalid_arg "Auditor.audit_continuous: bins must be positive";
  if lo >= hi then invalid_arg "Auditor.audit_continuous: lo >= hi";
  let width = (hi -. lo) /. float_of_int bins in
  let bin x =
    let i = int_of_float ((x -. lo) /. width) in
    Stdlib.max 0 (Stdlib.min (bins - 1) i)
  in
  let counts = Array.make bins 0. and counts' = Array.make bins 0. in
  for _ = 1 to trials do
    let o = bin (run g) in
    counts.(o) <- counts.(o) +. 1.;
    let o' = bin (run' g) in
    counts'.(o') <- counts'.(o') +. 1.
  done;
  estimate ~smoothing ~epsilon_theory ~trials counts counts'

let audit_exact ~p ~q =
  Float.max
    (Dp_info.Entropy.max_divergence p q)
    (Dp_info.Entropy.max_divergence q p)

let passes r ~slack = r.epsilon_lower <= r.epsilon_theory +. slack
