open Dp_net

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Extract the released value(s) from an [ok seq=… value=…] /
   [values=[…]] reply line. *)
let parse_answer line =
  if not (starts_with "ok " line) then Error line
  else
    let tokens = String.split_on_char ' ' line in
    let rec find = function
      | [] -> Error ("no value in reply: " ^ line)
      | t :: rest ->
          if starts_with "value=" t then
            match float_of_string_opt (String.sub t 6 (String.length t - 6)) with
            | Some v -> Ok [| v |]
            | None -> Error ("bad value in reply: " ^ line)
          else if starts_with "values=[" t && String.length t > 9 then begin
            let body = String.sub t 8 (String.length t - 9) in
            let parts = String.split_on_char ',' body in
            match
              List.map
                (fun p ->
                  match float_of_string_opt p with
                  | Some v -> v
                  | None -> raise Exit)
                parts
            with
            | vs -> Ok (Array.of_list vs)
            | exception Exit -> Error ("bad values in reply: " ^ line)
          end
          else find rest
    in
    find tokens

let request_answer session line =
  match Client.request session line with
  | Error msg -> raise (Certify.Draw_failed msg)
  | Ok [] -> raise (Certify.Draw_failed "empty reply")
  | Ok (first :: _) -> (
      match parse_answer first with
      | Ok vs -> vs
      | Error msg -> raise (Certify.Draw_failed msg))

let register session ~name ~rows ~eps =
  let line =
    Printf.sprintf "register %s rows=%d eps=1e12 delta=0.5 default-eps=%.12g \
                    no-cache"
      name rows eps
  in
  match Client.request session line with
  | Error msg -> Error msg
  | Ok (first :: _) when starts_with "ok registered" first -> Ok ()
  | Ok (first :: _) when contains_sub "already registered" first ->
      (* a restarted server recovered the pair from its journal *)
      Ok ()
  | Ok (first :: _) -> Error first
  | Ok [] -> Error "empty reply to register"

let mean xs =
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let source ?(rows = 64) ?(base = "certify") ~host ~port ~query ~eps () =
  match Dp_engine.Query.parse query with
  | Error msg -> Error ("certify: " ^ msg)
  | Ok q -> (
      let cfg = { (Client.default_config ~port) with Client.host } in
      let session = Client.open_session cfg in
      let neighbor = base ^ "~flip0" in
      match
        ( register session ~name:base ~rows ~eps,
          register session ~name:neighbor ~rows ~eps )
      with
      | Error msg, _ | _, Error msg ->
          Client.close_session session;
          Error ("certify: register: " ^ msg)
      | Ok (), Ok () ->
          let norm = Dp_engine.Query.normalize q in
          let ask name =
            Printf.sprintf "query %s %s eps=%.12g" name norm eps
          in
          let raw1 () = request_answer session (ask base) in
          let raw2 () = request_answer session (ask neighbor) in
          (* Vector answers are projected onto the coordinate a small
             pilot says the neighbour pair moves most; scalar answers
             project trivially. The pilot also anchors the continuous
             bucket grid — over the wire the auditor has no raw data,
             so everything is estimated from released values only. *)
          let pilot n f =
            let acc = ref [||] in
            for _ = 1 to n do
              let v = f () in
              if Array.length !acc = 0 then acc := Array.make (Array.length v) 0.;
              Array.iteri (fun i x -> !acc.(i) <- !acc.(i) +. x) v
            done;
            Array.map (fun s -> s /. float_of_int n) !acc
          in
          let m1 = pilot 32 raw1 and m2 = pilot 32 raw2 in
          let j = ref 0 in
          Array.iteri
            (fun i x ->
              if Float.abs (x -. m2.(i)) > Float.abs (m1.(!j) -. m2.(!j)) then
                j := i)
            m1;
          let j = !j in
          let integer_outcomes =
            match q with Dp_engine.Query.Count _ -> true | _ -> false
          in
          let bucket =
            if integer_outcomes then Certify.iround
            else begin
              (* a grid of half the wire precision floor or the claimed
                 scale, anchored between the two pilot means *)
              let mid = 0.5 *. (m1.(j) +. m2.(j)) in
              let spread =
                Float.max (Float.abs (mean m1 -. mean m2)) (0.5 /. eps)
              in
              Certify.grid_bucket ~mid ~width:(Float.max (spread /. 4.) 1e-6)
            end
          in
          let project vs =
            if j < Array.length vs then vs.(j)
            else raise (Certify.Draw_failed "projection out of range")
          in
          Ok
            ( {
                Certify.name = norm;
                eps;
                delta = 0.;
                bucket;
                label = string_of_int;
                llr = None;
                bin_prob = None;
                draw1 = (fun _ -> project (raw1 ()));
                draw2 = (fun _ -> project (raw2 ()));
              },
              fun () -> Client.close_session session ))
