type outcome = {
  key : int;
  label : string;
  count1 : int;
  count2 : int;
  eps_hat : float;
  eps_lb : float;
  mass_lb : float;
  violation : bool;
}

type t = {
  trials1 : int;
  trials2 : int;
  distinct : int;
  outcomes : outcome list;
  eps_hat : float;
  eps_lb : float;
  violations : int;
  ok : bool;
}

let default_label = string_of_int

(* ε-DP says every outcome's probability ratio between neighbours lies
   in [e^{-ε}, e^{ε}]. The test inverts this per bucketed outcome: from
   Clopper–Pearson intervals [l1,u1] ∋ p and [l2,u2] ∋ q, every ratio
   consistent with the data lies in [l1/u2, u1/l2], so

     LB |log p/q| = max(log(l1/u2), log(l2/u1), 0)

   is a conservative lower bound on the realized privacy loss. Intervals
   are Bonferroni-corrected across the distinct outcomes, so the whole
   test rejects a truly ε-DP mechanism with probability at most α. The
   (ε, δ) relaxation allows outcomes beyond e^ε as long as their mass
   is at most δ: an outcome only counts as a violation when even the
   lower confidence bound of its mass exceeds δ. *)
let run ~eps ?(delta = 0.) ?(alpha = 0.05) ?(label = default_label)
    ~bucket samples1 samples2 =
  let n1 = Array.length samples1 and n2 = Array.length samples2 in
  if n1 = 0 || n2 = 0 then invalid_arg "Lr_test.run: empty sample";
  if eps <= 0. then invalid_arg "Lr_test.run: eps must be positive";
  if delta < 0. || delta >= 1. then
    invalid_arg "Lr_test.run: delta must be in [0,1)";
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Lr_test.run: alpha must be in (0,1)";
  let counts = Hashtbl.create 64 in
  let bump side v =
    let k = bucket v in
    let c1, c2 = try Hashtbl.find counts k with Not_found -> (0, 0) in
    Hashtbl.replace counts k
      (if side then (c1 + 1, c2) else (c1, c2 + 1))
  in
  Array.iter (bump true) samples1;
  Array.iter (bump false) samples2;
  let distinct = Hashtbl.length counts in
  let alpha_bonf = alpha /. float_of_int distinct in
  let outcomes =
    Hashtbl.fold
      (fun key (count1, count2) acc ->
        let l1, u1 = Binomial.clopper_pearson ~k:count1 ~n:n1 ~alpha:alpha_bonf in
        let l2, u2 = Binomial.clopper_pearson ~k:count2 ~n:n2 ~alpha:alpha_bonf in
        let lb a b = if a <= 0. then 0. else log (a /. b) in
        let eps_lb = Float.max 0. (Float.max (lb l1 u2) (lb l2 u1)) in
        let eps_hat =
          Float.abs
            (log
               (Binomial.smoothed ~k:count1 ~n:n1
               /. Binomial.smoothed ~k:count2 ~n:n2))
        in
        let mass_lb = Float.max l1 l2 in
        let violation = eps_lb > eps && mass_lb > delta in
        { key; label = label key; count1; count2; eps_hat; eps_lb; mass_lb;
          violation }
        :: acc)
      counts []
  in
  let outcomes = List.sort (fun a b -> compare a.key b.key) outcomes in
  let fold f init = List.fold_left f init outcomes in
  let eps_hat = fold (fun m o -> Float.max m o.eps_hat) 0. in
  let eps_lb = fold (fun m o -> Float.max m o.eps_lb) 0. in
  let violations = fold (fun n o -> if o.violation then n + 1 else n) 0 in
  {
    trials1 = n1;
    trials2 = n2;
    distinct;
    outcomes;
    eps_hat;
    eps_lb;
    violations;
    ok = violations = 0;
  }

(* The closed-form leg: mechanisms expose the claimed model's exact
   per-outcome loss, so the mass observed beyond e^ε — which (ε, δ)-DP
   caps at δ — can be bounded directly. *)
let loss_tail ~llr ~eps ?(alpha = 0.05) samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Lr_test.loss_tail: empty sample";
  let tol = 1e-9 *. Float.max 1. eps in
  let k =
    Array.fold_left
      (fun acc y -> if Float.abs (llr y) > eps +. tol then acc + 1 else acc)
      0 samples
  in
  let lo, hi = Binomial.clopper_pearson ~k ~n ~alpha in
  (k, lo, hi)
