(** Exact binomial confidence machinery for the certification harness.

    Clopper–Pearson intervals are the conservative (exact-coverage)
    choice: the harness turns outcome frequencies into probability
    intervals, and a privacy violation is only ever declared from the
    interval endpoints, never from point estimates — so a [certify
    failed] verdict holds at the stated confidence no matter how skewed
    the outcome distribution is. *)

val beta_inv : a:float -> b:float -> float -> float
(** [beta_inv ~a ~b p]: the p-quantile of Beta(a, b), by bisection on
    {!Dp_math.Special.incomplete_beta_regularized}. Clamped results at
    [p <= 0] / [p >= 1] are 0 / 1.
    @raise Invalid_argument for non-positive shapes. *)

val clopper_pearson : k:int -> n:int -> alpha:float -> float * float
(** Exact two-sided (1 − α) confidence interval for a binomial
    proportion after [k] successes in [n] trials:
    [(BetaInv(α/2; k, n−k+1), BetaInv(1−α/2; k+1, n−k))], with the
    conventional 0 and 1 endpoints at [k = 0] and [k = n].
    @raise Invalid_argument on [n <= 0], [k] out of range, or α outside
    (0,1). *)

val smoothed : k:int -> n:int -> float
(** Haldane–Anscombe point estimate [(k + 1/2)/(n + 1)] — keeps the
    log-ratio ε̂ finite for outcomes one side never produced.
    @raise Invalid_argument on [n <= 0]. *)
