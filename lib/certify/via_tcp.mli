(** TCP-backed certification sources — [dpkit certify --via tcp].

    Certifies the *served binary*, not a library re-run: the source
    registers a {!Dp_engine.Registry.synthetic} dataset and its
    [BASE~flip0] neighbour on a live [dpkit serve --tcp] process (huge
    budget, caching off, so every trial is a fresh release), then draws
    every sample through {!Dp_net.Client} sessions — the same retrying
    client path analysts use, which is what lets fault-armed soak legs
    (conn-reset, journal faults) and kill −9 restarts happen mid-run
    without tearing the measurement. Registration tolerates ["already
    registered"], so a harness can reconnect to a restarted server that
    recovered the pair from its journal.

    Over the wire the auditor holds no raw data, so TCP sources carry
    no closed forms ([llr = bin_prob = None]): the distribution-free
    lr and ks legs do the testing, with bucket grids anchored on a
    small pilot of released values. *)

val source :
  ?rows:int ->
  ?base:string ->
  host:string ->
  port:int ->
  query:string ->
  eps:float ->
  unit ->
  (Certify.source * (unit -> unit), string) result
(** [source ~host ~port ~query ~eps ()] registers the neighbour pair
    (default name [certify], 64 rows) and returns the source plus a
    closer for the underlying session. Draw failures surface as
    {!Certify.Draw_failed}. *)
