(** Statistical DP certification — the engine behind [dpkit certify].

    A certification run executes one mechanism face (count / sum /
    histogram / quantile query planning, or the Gibbs-posterior train
    face) thousands of times on both sides of a canonical neighbour
    pair and hypothesis-tests the claimed (ε, δ) against the observed
    output distributions:

    - {b lr}: the per-outcome likelihood-ratio test ({!Lr_test}) —
      distribution-free, Clopper–Pearson-exact, Bonferroni-corrected; a
      violation verdict holds at confidence 1 − α.
    - {b ks}: the two-sample Kolmogorov–Smirnov statistic against the
      ε-aware bound [TV ≤ (e^ε − 1 + 2δ)/(e^ε + 1)] plus two DKW
      fluctuation terms.
    - {b model}: χ² goodness of fit of the observed outcomes against
      the claimed mechanism's closed-form distribution, when one exists
      (geometric pmf, Laplace CDF, discrete-Gaussian pmf, Gibbs
      posterior probabilities).
    - {b tail}: the outcome mass the claimed closed-form loss
      ({!Dp_mechanism.Laplace.log_likelihood_ratio} and friends) puts
      beyond e^ε, bounded by Clopper–Pearson and compared against the
      claimed δ.

    Sources describe where samples come from; {!of_query} builds one on
    the engine's own {!Dp_engine.Planner} release path against a
    {!Dp_engine.Registry.synthetic} dataset and its [BASE~flip0]
    neighbour, and [Via_tcp] builds one that drives a live
    [dpkit serve --tcp] process. The harness never touches the engine's
    privacy RNG stream: it owns its own generator and splits per-side
    streams from it (lint rule R9 enforces the discipline). *)

exception Draw_failed of string
(** A source could not produce a sample (protocol error, unexpected
    reply shape). Not a privacy verdict — the caller reports it as an
    infrastructure failure. *)

type source = {
  name : string;  (** normalized query text, or ["train"] *)
  eps : float;  (** claimed ε under test *)
  delta : float;  (** claimed δ under test *)
  bucket : float -> int;  (** outcome bucketing for the discrete tests *)
  label : int -> string;
  llr : (float -> float) option;
      (** claimed model's closed-form privacy loss at an outcome *)
  bin_prob : (int -> float) option;
      (** claimed model's outcome-bucket probability on the first
          dataset *)
  draw1 : Dp_rng.Prng.t -> float;  (** one release on D *)
  draw2 : Dp_rng.Prng.t -> float;  (** one release on the neighbour D' *)
}

type samples = { a : float array; b : float array }

val collect : trials:int -> source -> Dp_rng.Prng.t -> samples
(** Draw [trials] releases per side. Each side gets its own split of
    the generator, so the two sample streams are independent and
    deterministic given the seed.
    @raise Invalid_argument on non-positive [trials]. *)

type check = { check : string; ok : bool; detail : string }

type report = {
  source : string;
  trials : int;
  eps_claimed : float;
  delta_claimed : float;
  alpha : float;
  eps_hat : float;  (** max smoothed per-outcome ε̂ *)
  eps_lb : float;  (** max per-outcome lower confidence bound *)
  checks : check list;
  ok : bool;
}

val analyze : ?alpha:float -> source -> samples -> report
(** Run every applicable check on already-collected samples (α defaults
    to 0.05). *)

val run : ?alpha:float -> trials:int -> source -> Dp_rng.Prng.t -> report
(** [collect] then [analyze]. *)

val verdict_line : report -> string
(** The machine-readable verdict: [ok certified source=… trials=…
    eps-claimed=… eps-hat=… eps-lb=… alpha=… checks=…] on success,
    [err certify-failed … failed=…] listing the failing checks
    otherwise. Deterministic given the samples. *)

(** {2 Crash-recovery comparison}

    Distribution tests cannot detect a replayed noise stream — re-served
    pre-crash draws have exactly the claimed distribution. The recovery
    check therefore pairs the two-sample tests (pre- and post-restart
    outputs must stay within the same distribution) with a positional
    equality detector: independent noise streams essentially never
    agree coordinate-wise, so a high match fraction is the signature of
    seeded-restart noise reuse. *)

type recovery = {
  n : int;  (** compared prefix length *)
  match_fraction : float;
  ks : Dp_stats.Gof.result;
  chi2 : Dp_stats.Gof.result option;  (** present when a bucket is given *)
  reuse : bool;  (** [match_fraction >= 0.9] over at least 10 draws *)
  drifted : bool;  (** a same-distribution p-value fell below α *)
  recovery_ok : bool;
}

val recovery_check :
  ?alpha:float ->
  ?bucket:(float -> int) ->
  pre:float array ->
  post:float array ->
  unit ->
  recovery
(** @raise Invalid_argument on an empty side. *)

val recovery_line : recovery -> string
(** [ok certified recovery …] / [err certify-failed recovery …
    failed=noise-reuse,distribution-drift]. *)

val iround : float -> int
(** Nearest-integer bucketing for integer-valued mechanisms. *)

val grid_bucket : mid:float -> width:float -> float -> int
(** Fixed-width grid bucketing anchored at [mid], for continuous
    mechanisms. *)

(** {2 In-process sources} *)

type broken = [ `None | `Half_scale ]
(** Deliberate-breakage hooks for the test suite: [`Half_scale] runs
    the mechanism calibrated for 2ε while still claiming ε — the noise
    has half the claimed scale, which the testers must detect. *)

val of_query :
  ?rows:int ->
  ?backend:[ `Basic | `Rdp of float ] ->
  ?break_:broken ->
  seed:int ->
  eps:float ->
  Dp_engine.Query.t ->
  (source, string) result
(** Build a source on the engine's real release path: a
    {!Dp_engine.Registry.synthetic} dataset (default 64 rows) and its
    [certify~flip0] neighbour, each released through
    {!Dp_engine.Planner.plan}. Scalar count/sum/mean sources carry the
    matching closed forms; vector answers (histogram, cdf) are
    projected onto the coordinate the neighbour pair moves most (a
    fixed post-processing, so any violation found is genuine). Under
    [`Rdp delta] the count face claims the discrete Gaussian's
    RDP-converted (ε, δ). *)

val gibbs_source :
  ?predictors:int ->
  ?rows:int ->
  ?break_:broken ->
  seed:int ->
  eps:float ->
  unit ->
  (source, string) result
(** The train face: a Gibbs posterior (paper Theorem 4.1) over a
    threshold-classifier grid on the synthetic dataset and its
    neighbour, with β calibrated so [2βΔR̂ = ε]. Outcomes are predictor
    indices; the posterior's log-probabilities provide exact closed
    forms for the model and tail checks. *)

val stream_source :
  ?break_:broken -> eps:float -> unit -> (source, string) result
(** The continual-observation append face: the tree-mechanism counter
    ({!Dp_stream.Counter}) over horizon 8, released at t = 4 — the one
    prefix whose dyadic decomposition is a single node, so the release
    is the true count plus one Laplace(1/ε) draw and the per-node
    closed forms (Laplace llr and CDF bin probabilities) apply exactly.
    Neighbours differ in the first stream bit. Every draw runs the real
    [prepare]/[commit] append path. *)
