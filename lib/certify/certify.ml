open Dp_engine
open Dp_mechanism

exception Draw_failed of string

type source = {
  name : string;
  eps : float;
  delta : float;
  bucket : float -> int;
  label : int -> string;
  llr : (float -> float) option;
  bin_prob : (int -> float) option;
  draw1 : Dp_rng.Prng.t -> float;
  draw2 : Dp_rng.Prng.t -> float;
}

type samples = { a : float array; b : float array }

let collect ~trials source g =
  if trials <= 0 then invalid_arg "Certify.collect: trials must be positive";
  (* split per side so the two streams stay independent of trial count *)
  let g1 = Dp_rng.Prng.split g in
  let g2 = Dp_rng.Prng.split g in
  let a = Array.make trials 0. and b = Array.make trials 0. in
  for i = 0 to trials - 1 do
    a.(i) <- source.draw1 g1
  done;
  for i = 0 to trials - 1 do
    b.(i) <- source.draw2 g2
  done;
  { a; b }

type check = { check : string; ok : bool; detail : string }

type report = {
  source : string;
  trials : int;
  eps_claimed : float;
  delta_claimed : float;
  alpha : float;
  eps_hat : float;
  eps_lb : float;
  checks : check list;
  ok : bool;
}

(* (ε, δ)-DP bounds total variation: P(S) ≤ e^ε Q(S) + δ on every
   event and symmetrically, which maximizes at
   TV ≤ (e^ε − 1 + 2δ)/(e^ε + 1) — tanh(ε/2) at δ = 0. *)
let tv_bound ~eps ~delta =
  let e = exp eps in
  if Float.is_finite e then Float.min 1. ((e -. 1. +. (2. *. delta)) /. (e +. 1.))
  else 1.

(* One-sided DKW fluctuation of an empirical CDF at confidence α. *)
let dkw ~n ~alpha = sqrt (log (2. /. alpha) /. (2. *. float_of_int n))

let lr_check ~alpha source s =
  let lr =
    Lr_test.run ~eps:source.eps ~delta:source.delta ~alpha ~label:source.label
      ~bucket:source.bucket s.a s.b
  in
  ( lr,
    {
      check = "lr";
      ok = lr.Lr_test.ok;
      detail =
        Printf.sprintf "outcomes=%d eps-lb=%.6f violations=%d"
          lr.Lr_test.distinct lr.Lr_test.eps_lb lr.Lr_test.violations;
    } )

let ks_check ~alpha source s =
  let r = Dp_stats.Gof.ks_two_sample s.a s.b in
  let bound =
    tv_bound ~eps:source.eps ~delta:source.delta
    +. dkw ~n:(Array.length s.a) ~alpha
    +. dkw ~n:(Array.length s.b) ~alpha
  in
  {
    check = "ks";
    ok = r.Dp_stats.Gof.statistic <= bound;
    detail =
      Printf.sprintf "statistic=%.6f bound=%.6f p-same=%.4f"
        r.Dp_stats.Gof.statistic bound r.Dp_stats.Gof.p_value;
  }

(* χ² of the observed outcome counts on D against the claimed model's
   closed-form distribution. Low-expectation buckets (and the never-
   observed remainder of the support) pool into one cell, keeping the
   χ² approximation honest. *)
let model_check ~alpha source s =
  match source.bin_prob with
  | None -> None
  | Some prob ->
      let n = Array.length s.a in
      let fn = float_of_int n in
      let counts = Hashtbl.create 64 in
      Array.iter
        (fun v ->
          let k = source.bucket v in
          Hashtbl.replace counts k
            (1 + try Hashtbl.find counts k with Not_found -> 0))
        s.a;
      let keys = List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) counts []) in
      let kept, pooled_obs, kept_p =
        List.fold_left
          (fun (kept, pooled, kp) k ->
            let o = float_of_int (Hashtbl.find counts k) in
            let p = prob k in
            let e = fn *. p in
            if e >= 5. then ((e, o) :: kept, pooled, kp +. p)
            else (kept, pooled +. o, kp))
          ([], 0., 0.) keys
      in
      let rest_p = Float.max 0. (1. -. kept_p) in
      let cells =
        if rest_p > 0. || pooled_obs > 0. then
          (Float.max (fn *. rest_p) (fn *. 1e-12), pooled_obs) :: kept
        else kept
      in
      if List.length cells < 2 then
        Some
          {
            check = "model";
            ok = true;
            detail = "degenerate (single outcome cell)";
          }
      else
        let expected = Array.of_list (List.map fst cells) in
        let observed = Array.of_list (List.map snd cells) in
        let r = Dp_stats.Gof.chi_square_gof ~expected ~observed in
        Some
          {
            check = "model";
            ok = r.Dp_stats.Gof.p_value >= alpha;
            detail =
              Printf.sprintf "cells=%d statistic=%.4f p=%.4f"
                (Array.length expected) r.Dp_stats.Gof.statistic
                r.Dp_stats.Gof.p_value;
          }

let tail_check ~alpha source s =
  match source.llr with
  | None -> None
  | Some llr ->
      let k, lo, hi = Lr_test.loss_tail ~llr ~eps:source.eps ~alpha s.a in
      Some
        {
          check = "tail";
          ok = lo <= source.delta;
          detail =
            Printf.sprintf "beyond-eps=%d mass=[%.6f,%.6f] delta=%.2e" k lo hi
              source.delta;
        }

let analyze ?(alpha = 0.05) source s =
  (* the verdict is the conjunction of up to four tests, so each runs at
     a Bonferroni share of α — a truly (ε, δ)-DP face fails the *whole*
     certification with probability at most α *)
  let a = alpha /. 4. in
  let lr, lr_c = lr_check ~alpha:a source s in
  let checks =
    [ Some lr_c; Some (ks_check ~alpha:a source s);
      model_check ~alpha:a source s; tail_check ~alpha:a source s ]
    |> List.filter_map Fun.id
  in
  {
    source = source.name;
    trials = Array.length s.a;
    eps_claimed = source.eps;
    delta_claimed = source.delta;
    alpha;
    eps_hat = lr.Lr_test.eps_hat;
    eps_lb = lr.Lr_test.eps_lb;
    checks;
    ok = List.for_all (fun (c : check) -> c.ok) checks;
  }

let run ?alpha ~trials source g = analyze ?alpha source (collect ~trials source g)

let verdict_line r =
  let status (c : check) = if c.ok then "ok" else "FAIL" in
  let checks =
    String.concat ","
      (List.map (fun c -> Printf.sprintf "%s:%s" c.check (status c)) r.checks)
  in
  if r.ok then
    Printf.sprintf
      "ok certified source=%s trials=%d eps-claimed=%.6f eps-hat=%.6f \
       eps-lb=%.6f alpha=%.6f checks=%s"
      r.source r.trials r.eps_claimed r.eps_hat r.eps_lb r.alpha checks
  else
    Printf.sprintf
      "err certify-failed source=%s trials=%d eps-claimed=%.6f eps-hat=%.6f \
       eps-lb=%.6f alpha=%.6f checks=%s failed=%s"
      r.source r.trials r.eps_claimed r.eps_hat r.eps_lb r.alpha checks
      (String.concat ","
         (List.filter_map
            (fun (c : check) -> if c.ok then None else Some c.check)
            r.checks))

(* ------------------------------------------------------------------ *)
(* Crash-recovery comparison *)

type recovery = {
  n : int;
  match_fraction : float;
  ks : Dp_stats.Gof.result;
  chi2 : Dp_stats.Gof.result option;
  reuse : bool;
  drifted : bool;
  recovery_ok : bool;
}

(* Distribution tests cannot see a replayed noise stream — a restart
   that re-serves the pre-crash draws has exactly the right
   distribution. Positional equality can: two independent continuous
   (or wide discrete) streams essentially never agree coordinate-wise,
   so a high match fraction is the signature of noise reuse. *)
let recovery_check ?(alpha = 0.05) ?bucket ~pre ~post () =
  let n1 = Array.length pre and n2 = Array.length post in
  if n1 = 0 || n2 = 0 then invalid_arg "Certify.recovery_check: empty sample";
  let n = min n1 n2 in
  let matches = ref 0 in
  for i = 0 to n - 1 do
    if pre.(i) = post.(i) then incr matches
  done;
  let match_fraction = float_of_int !matches /. float_of_int n in
  let ks = Dp_stats.Gof.ks_two_sample pre post in
  let chi2 =
    Option.map
      (fun bucket ->
        let lo = ref max_int and hi = ref min_int in
        let key v = bucket v in
        Array.iter (fun v -> let k = key v in lo := min !lo k; hi := max !hi k) pre;
        Array.iter (fun v -> let k = key v in lo := min !lo k; hi := max !hi k) post;
        let width = !hi - !lo + 1 in
        let count xs =
          let c = Array.make width 0. in
          Array.iter (fun v -> let k = key v - !lo in c.(k) <- c.(k) +. 1.) xs;
          c
        in
        Dp_stats.Gof.chi_square_two_sample (count pre) (count post))
      bucket
  in
  let reuse = n >= 10 && match_fraction >= 0.9 in
  let drifted =
    ks.Dp_stats.Gof.p_value < alpha
    || match chi2 with
       | Some r -> r.Dp_stats.Gof.p_value < alpha
       | None -> false
  in
  { n; match_fraction; ks; chi2; reuse; drifted;
    recovery_ok = (not reuse) && not drifted }

let recovery_line r =
  let chi2 =
    match r.chi2 with
    | Some c -> Printf.sprintf " chi2-p=%.4f" c.Dp_stats.Gof.p_value
    | None -> ""
  in
  if r.recovery_ok then
    Printf.sprintf
      "ok certified recovery n=%d match-fraction=%.4f ks-p=%.4f%s" r.n
      r.match_fraction r.ks.Dp_stats.Gof.p_value chi2
  else
    Printf.sprintf
      "err certify-failed recovery n=%d match-fraction=%.4f ks-p=%.4f%s \
       failed=%s"
      r.n r.match_fraction r.ks.Dp_stats.Gof.p_value chi2
      (String.concat ","
         ((if r.reuse then [ "noise-reuse" ] else [])
         @ if r.drifted then [ "distribution-drift" ] else []))

(* ------------------------------------------------------------------ *)
(* In-process sources: the real served release path (Planner.plan on
   Registry datasets), on the canonical BASE~flip0 neighbour pair. *)

type broken = [ `None | `Half_scale ]

let huge_budget = Privacy.approx ~epsilon:1e12 ~delta:0.5

let iround v = int_of_float (Float.round v)

let grid_bucket ~mid ~width v =
  int_of_float (Float.floor ((v -. mid) /. width))

let scalar_value (ds : Registry.dataset) query =
  let col name =
    match Registry.column ds name with
    | Some c -> c
    | None -> invalid_arg "Certify: missing column"
  in
  match query with
  | Query.Count None -> Some (float_of_int ds.Registry.rows)
  | Query.Count (Some { column; op; threshold }) ->
      let sat v =
        match op with
        | Query.Le -> v <= threshold
        | Query.Lt -> v < threshold
        | Query.Ge -> v >= threshold
        | Query.Gt -> v > threshold
      in
      Some
        (float_of_int
           (Array.fold_left
              (fun acc v -> if sat v then acc + 1 else acc)
              0 (col column).Registry.values))
  | Query.Sum { column } ->
      Some (Dp_math.Summation.sum (col column).Registry.values)
  | Query.Mean { column } ->
      Some (Dp_math.Summation.mean (col column).Registry.values)
  | _ -> None

(* Mean of a small pilot of releases per coordinate, used only to pick
   the projection coordinate for vector answers (post-processing, so
   any projection is privacy-safe to certify). *)
let pilot_means run g =
  let reps = 64 in
  let acc = ref [||] in
  for _ = 1 to reps do
    match run g with
    | Planner.Vector v ->
        if Array.length !acc = 0 then acc := Array.make (Array.length v) 0.;
        Array.iteri (fun i x -> !acc.(i) <- !acc.(i) +. x) v
    | Planner.Scalar _ -> invalid_arg "Certify: scalar answer in vector pilot"
  done;
  Array.map (fun s -> s /. float_of_int reps) !acc

let project j = function
  | Planner.Scalar v -> v
  | Planner.Vector v ->
      if j < Array.length v then v.(j)
      else raise (Draw_failed "projection index out of range")

let of_query ?(rows = 64) ?(backend = `Basic) ?(break_ = `None) ~seed ~eps
    query =
  if eps <= 0. || not (Float.is_finite eps) then
    Error "certify: eps must be positive and finite"
  else
    let policy =
      {
        (Registry.default_policy ~total:huge_budget) with
        Registry.cache = false;
        backend =
          (match backend with
          | `Basic -> Ledger.Basic
          | `Rdp delta -> Ledger.Rdp { delta });
      }
    in
    let data_seed = seed lxor 0x43455254 (* "CERT" *) in
    let base = "certify" in
    match
      ( Registry.synthetic ~name:base ~rows ~policy  (* flow:allow F3 — certify seeds the engine under test *)
          (Dp_rng.Prng.create data_seed),
        Registry.synthetic ~name:(base ^ "~flip0") ~rows ~policy  (* flow:allow F3 — neighbour pair shares the data seed *)
          (Dp_rng.Prng.create data_seed) )
    with
    | exception Invalid_argument msg -> Error msg
    | ds1, ds2 -> (
        (* a deliberately broken mechanism under test: half-scale noise
           is the mechanism calibrated for 2ε served under a claim of ε *)
        let mech_eps = match break_ with `None -> eps | `Half_scale -> 2. *. eps in
        match
          (Planner.plan ds1 ~epsilon:mech_eps query,
           Planner.plan ds2 ~epsilon:mech_eps query)
        with
        | Error msg, _ | _, Error msg -> Error msg
        | Ok p1, Ok p2 ->
            let name = Query.normalize query in
            let v1 = scalar_value ds1 query and v2 = scalar_value ds2 query in
            let delta =
              match (backend, query) with
              | `Rdp _, Query.Quantile _ -> 0.
              | `Rdp d, _ -> d
              | `Basic, _ -> 0.
            in
            let default =
              {
                name;
                eps;
                delta;
                bucket = iround;
                label = string_of_int;
                llr = None;
                bin_prob = None;
                draw1 = (fun g -> project 0 (p1.Planner.run g));
                draw2 = (fun g -> project 0 (p2.Planner.run g));
              }
            in
            let source =
              match (query, backend, v1, v2) with
              | Query.Count _, `Basic, Some c1, Some c2 ->
                  let m = Geometric_mech.create ~sensitivity:1 ~epsilon:eps in
                  let c1 = iround c1 and c2 = iround c2 in
                  {
                    default with
                    llr =
                      Some
                        (fun y ->
                          Geometric_mech.log_likelihood_ratio m ~value1:c1
                            ~value2:c2 (iround y));
                    bin_prob = Some (fun k -> Geometric_mech.pmf m ~value:c1 k);
                  }
              | Query.Count _, `Rdp d, Some c1, Some c2 ->
                  let sigma = sqrt (2. *. log (1.25 /. d)) /. eps in
                  let m = Discrete_gaussian.create ~sensitivity:1 ~sigma in
                  let claimed = Discrete_gaussian.budget m ~delta:d in
                  let c1 = iround c1 and c2 = iround c2 in
                  {
                    default with
                    eps = claimed.Privacy.epsilon;
                    delta = claimed.Privacy.delta;
                    llr =
                      Some
                        (fun y ->
                          Discrete_gaussian.log_likelihood_ratio m ~value1:c1
                            ~value2:c2 (iround y));
                    bin_prob =
                      Some (fun k -> Discrete_gaussian.pmf m (k - c1));
                  }
              | (Query.Sum _ | Query.Mean _), `Basic, Some f1, Some f2 ->
                  let sens = p1.Planner.spec.Planner.sensitivity in
                  let m = Laplace.create ~sensitivity:sens ~epsilon:eps in
                  let mid = 0.5 *. (f1 +. f2) in
                  let width = 0.5 *. Laplace.scale m in
                  let bucket = grid_bucket ~mid ~width in
                  {
                    default with
                    bucket;
                    llr =
                      Some
                        (fun y ->
                          Laplace.log_likelihood_ratio m ~value1:f1 ~value2:f2 y);
                    bin_prob =
                      Some
                        (fun k ->
                          let lo = mid +. (float_of_int k *. width) in
                          Laplace.cdf m ~value:f1 (lo +. width)
                          -. Laplace.cdf m ~value:f1 lo);
                  }
              | Query.Quantile { column; _ }, _, _, _ ->
                  let c =
                    match Registry.column ds1 column with
                    | Some c -> c
                    | None -> invalid_arg "Certify: missing column"
                  in
                  let width = (c.Registry.hi -. c.Registry.lo) /. 64. in
                  { default with bucket = grid_bucket ~mid:c.Registry.lo ~width }
              | (Query.Histogram _ | Query.Cdf _), _, _, _ ->
                  (* vector answer: certify the coordinate the neighbour
                     pair moves most (a fixed post-processing) *)
                  let gp = Dp_rng.Prng.create (data_seed lxor 0x50494c54) in
                  let m1 = pilot_means p1.Planner.run gp in
                  let m2 = pilot_means p2.Planner.run gp in
                  let j = ref 0 in
                  Array.iteri
                    (fun i x ->
                      if Float.abs (x -. m2.(i)) > Float.abs (m1.(!j) -. m2.(!j))
                      then j := i)
                    m1;
                  let j = !j in
                  let mid = 0.5 *. (m1.(j) +. m2.(j)) in
                  let width = Float.max (0.5 /. eps) 1e-6 in
                  {
                    default with
                    bucket = grid_bucket ~mid ~width;
                    draw1 = (fun g -> project j (p1.Planner.run g));
                    draw2 = (fun g -> project j (p2.Planner.run g));
                  }
              | _ -> default
            in
            Ok source)

(* ------------------------------------------------------------------ *)
(* The train face: the Gibbs posterior over a finite predictor grid is
   the engine's training mechanism (paper Theorem 4.1 — the exponential
   mechanism with quality −R̂), and its posterior probabilities are
   computable, so the certification gets exact closed forms. *)

let gibbs_source ?(predictors = 17) ?(rows = 64) ?(break_ = `None) ~seed ~eps
    () =
  if eps <= 0. || not (Float.is_finite eps) then
    Error "certify: eps must be positive and finite"
  else if predictors < 2 then Error "certify: need at least 2 predictors"
  else
    let policy = { (Registry.default_policy ~total:huge_budget) with cache = false } in
    let data_seed = seed lxor 0x43455254 in
    match
      ( Registry.synthetic ~name:"certify" ~rows ~policy
          (Dp_rng.Prng.create data_seed),
        Registry.synthetic ~name:"certify~flip0" ~rows ~policy
          (Dp_rng.Prng.create data_seed) )
    with
    | exception Invalid_argument msg -> Error msg
    | ds1, ds2 ->
        let col ds name =
          match Registry.column ds name with
          | Some c -> c.Registry.values
          | None -> invalid_arg "Certify: missing column"
        in
        let thresholds =
          Array.init predictors (fun i ->
              -4. +. (8. *. float_of_int i /. float_of_int (predictors - 1)))
        in
        let risk ds =
          let score = col ds "score" and income = col ds "income" in
          let n = Array.length score in
          fun t ->
            let wrong = ref 0 in
            for i = 0 to n - 1 do
              let predicted = score.(i) > t and actual = income.(i) > 50_000. in
              if predicted <> actual then incr wrong
            done;
            float_of_int !wrong /. float_of_int n
        in
        (* ΔR̂ = 1/n under record replacement; Theorem 4.1 gives privacy
           2βΔR̂, so β = ε·n/2 realizes the claimed ε. The deliberately
           broken half-scale variant *samples* from the 2ε posterior
           while the closed forms keep describing the claimed ε one —
           the model check must notice the mismatch. *)
        let fit ~at ds =
          let n = Array.length (col ds "score") in
          Dp_pac_bayes.Gibbs.fit ~predictors:thresholds
            ~beta:(at *. float_of_int n /. 2.)
            ~empirical_risk:(risk ds) ()
        in
        let run_eps =
          match break_ with `None -> eps | `Half_scale -> 2. *. eps
        in
        let g1 = fit ~at:run_eps ds1 and g2 = fit ~at:run_eps ds2 in
        let c1 = fit ~at:eps ds1 and c2 = fit ~at:eps ds2 in
        let lp1 = Dp_pac_bayes.Gibbs.log_probabilities c1 in
        let lp2 = Dp_pac_bayes.Gibbs.log_probabilities c2 in
        let p1 = Dp_pac_bayes.Gibbs.probabilities c1 in
        let index_of t =
          let j = ref 0 in
          Array.iteri (fun i x -> if x = t then j := i) thresholds;
          !j
        in
        Ok
          {
            name = "train";
            eps;
            delta = 0.;
            bucket = iround;
            label = string_of_int;
            llr =
              Some
                (fun y ->
                  let k = iround y in
                  if k < 0 || k >= predictors then nan else lp1.(k) -. lp2.(k));
            bin_prob =
              Some (fun k -> if k < 0 || k >= predictors then 0. else p1.(k));
            draw1 =
              (fun g -> float_of_int (index_of (Dp_pac_bayes.Gibbs.sample g1 g)));
            draw2 =
              (fun g -> float_of_int (index_of (Dp_pac_bayes.Gibbs.sample g2 g)));
          }

(* ------------------------------------------------------------------ *)
(* The stream append face: the tree-mechanism continual counter at the
   one prefix that decomposes into a single dyadic node. With horizon 8
   the first four appends close exactly the level-2 block [1..4], so
   read(4) is the true prefix count plus one Laplace(1/ε) node draw — a
   clean scalar face for the per-node closed forms. The neighbour pair
   flips the first bit (event-level adjacency), moving that node's true
   sum by 1. Every release runs the real Counter prepare/commit path;
   the extra lower-level node draws are burned deterministically. *)

let stream_source ?(break_ = `None) ~eps () =
  if eps <= 0. || not (Float.is_finite eps) then
    Error "certify: eps must be positive and finite"
  else
    let bits1 = [ 1; 0; 1; 1 ] and bits2 = [ 0; 0; 1; 1 ] in
    (* half-scale breakage: the counter calibrated for 2ε (scale 1/2ε)
       served under a claim of ε *)
    let run_eps = match break_ with `None -> eps | `Half_scale -> 2. *. eps in
    let release bits g =
      let c = Dp_stream.Counter.create ~epsilon:run_eps ~horizon:8 in
      let scale = Dp_stream.Counter.noise_scale c in
      List.iter
        (fun bit ->
          let nodes =
            Dp_stream.Counter.prepare c ~bit ~noise:(fun () ->
                Dp_rng.Sampler.laplace ~mean:0. ~scale g)
          in
          Dp_stream.Counter.commit c ~bit nodes)
        bits;
      Dp_stream.Counter.read c
    in
    let f1 = float_of_int (List.fold_left ( + ) 0 bits1) in
    let f2 = float_of_int (List.fold_left ( + ) 0 bits2) in
    let m = Laplace.create ~sensitivity:1. ~epsilon:eps in
    let mid = 0.5 *. (f1 +. f2) in
    let width = 0.5 *. Laplace.scale m in
    Ok
      {
        name = "stream";
        eps;
        delta = 0.;
        bucket = grid_bucket ~mid ~width;
        label = string_of_int;
        llr =
          Some (fun y -> Laplace.log_likelihood_ratio m ~value1:f1 ~value2:f2 y);
        bin_prob =
          Some
            (fun k ->
              let lo = mid +. (float_of_int k *. width) in
              Laplace.cdf m ~value:f1 (lo +. width) -. Laplace.cdf m ~value:f1 lo);
        draw1 = release bits1;
        draw2 = release bits2;
      }
