open Dp_math

(* The regularized incomplete beta is strictly increasing in x on (0,1)
   for positive shapes, so the quantile falls to plain bisection; 60
   halvings pin the root far below any statistical resolution the
   harness can distinguish. *)
let beta_inv ~a ~b p =
  if a <= 0. || b <= 0. then invalid_arg "Binomial.beta_inv: shapes must be positive";
  if p <= 0. then 0.
  else if p >= 1. then 1.
  else begin
    let lo = ref 0. and hi = ref 1. in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if Special.incomplete_beta_regularized ~a ~b ~x:mid < p then lo := mid
      else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let clopper_pearson ~k ~n ~alpha =
  if n <= 0 then invalid_arg "Binomial.clopper_pearson: n must be positive";
  if k < 0 || k > n then invalid_arg "Binomial.clopper_pearson: k out of range";
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Binomial.clopper_pearson: alpha must be in (0,1)";
  let a2 = alpha /. 2. in
  let lo =
    if k = 0 then 0.
    else beta_inv ~a:(float_of_int k) ~b:(float_of_int (n - k + 1)) a2
  in
  let hi =
    if k = n then 1.
    else beta_inv ~a:(float_of_int (k + 1)) ~b:(float_of_int (n - k)) (1. -. a2)
  in
  (lo, hi)

let smoothed ~k ~n =
  if n <= 0 then invalid_arg "Binomial.smoothed: n must be positive";
  (float_of_int k +. 0.5) /. (float_of_int n +. 1.)
