(** The per-outcome likelihood-ratio test at the heart of [dpkit
    certify].

    ε-DP is exactly the statement that every outcome's probability
    ratio between neighbouring datasets lies in [e^{−ε}, e^{ε}]
    (paper §2.2). Given outcome samples from both sides of a neighbour
    pair, this module buckets them, bounds each outcome's two
    probabilities with Bonferroni-corrected Clopper–Pearson intervals,
    and derives a conservative lower confidence bound on the realized
    privacy loss [|log p/q|] per outcome. A violation is declared only
    when that lower bound exceeds the claimed ε — and, for (ε, δ)
    claims, only when the outcome's mass provably exceeds δ — so a
    truly ε-DP mechanism fails the whole test with probability at most
    α regardless of the outcome distribution. *)

type outcome = {
  key : int;  (** bucket key *)
  label : string;
  count1 : int;
  count2 : int;
  eps_hat : float;  (** Haldane–Anscombe-smoothed |log p̂/q̂| *)
  eps_lb : float;  (** conservative lower confidence bound on |log p/q| *)
  mass_lb : float;  (** lower confidence bound on max(p, q) *)
  violation : bool;  (** [eps_lb > ε] and [mass_lb > δ] *)
}

type t = {
  trials1 : int;
  trials2 : int;
  distinct : int;  (** distinct buckets observed (Bonferroni divisor) *)
  outcomes : outcome list;  (** sorted by bucket key *)
  eps_hat : float;  (** max smoothed point estimate over outcomes *)
  eps_lb : float;  (** max lower confidence bound over outcomes *)
  violations : int;
  ok : bool;
}

val run :
  eps:float ->
  ?delta:float ->
  ?alpha:float ->
  ?label:(int -> string) ->
  bucket:(float -> int) ->
  float array ->
  float array ->
  t
(** [run ~eps ~bucket s1 s2] tests the claimed ε (default δ = 0,
    α = 0.05) on outcome samples from the two sides of a neighbour
    pair. [bucket] maps a released value to its outcome bucket (the
    identity rounding for integer mechanisms, a fixed-width grid for
    continuous ones).
    @raise Invalid_argument on empty samples or out-of-range ε, δ, α. *)

val loss_tail :
  llr:(float -> float) ->
  eps:float ->
  ?alpha:float ->
  float array ->
  int * float * float
(** [loss_tail ~llr ~eps samples]: how much outcome mass the *claimed*
    closed-form model puts beyond loss ε — the mass (ε, δ)-DP caps at
    δ. Returns the exceedance count and its Clopper–Pearson interval.
    For pure-ε mechanisms the closed form is bounded by ε, so the count
    is 0 by construction; for the Gaussian mechanisms it measures the
    realized δ.
    @raise Invalid_argument on an empty sample. *)
