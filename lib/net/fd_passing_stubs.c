/* SCM_RIGHTS fd passing over a Unix-domain datagram socketpair.
 *
 * The OCaml stdlib's Unix module has no sendmsg/recvmsg, so the pool's
 * coordinator<->worker control channel needs these two primitives to
 * hand accepted TCP connections to workers. Datagram sockets keep
 * message boundaries, so each recvmsg returns exactly one control
 * message plus (at most) one attached descriptor.
 */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

/* dp_fd_send(sock, fd_opt, bytes, len): send one datagram carrying
   [len] bytes of [bytes] and, when [fd_opt] is [Some fd], that fd as
   SCM_RIGHTS ancillary data. */
CAMLprim value dp_fd_send(value vsock, value vfd_opt, value vbuf, value vlen)
{
  CAMLparam4(vsock, vfd_opt, vbuf, vlen);
  int sock = Int_val(vsock);
  size_t len = (size_t)Long_val(vlen);
  char copy[65536];
  struct msghdr msg;
  struct iovec iov;
  char cbuf[CMSG_SPACE(sizeof(int))];
  ssize_t n;

  if (len > sizeof(copy)) caml_invalid_argument("fd_send: message too long");
  memcpy(copy, Bytes_val(vbuf), len);

  memset(&msg, 0, sizeof(msg));
  iov.iov_base = copy;
  iov.iov_len = len;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;

  if (Is_some(vfd_opt)) {
    int fd = Int_val(Some_val(vfd_opt));
    struct cmsghdr *cmsg;
    memset(cbuf, 0, sizeof(cbuf));
    msg.msg_control = cbuf;
    msg.msg_controllen = CMSG_SPACE(sizeof(int));
    cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int));
    memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));
  }

  caml_release_runtime_system();
  do {
    n = sendmsg(sock, &msg, 0);
  } while (n == -1 && errno == EINTR);
  caml_acquire_runtime_system();

  if (n == -1) uerror("fd_send", Nothing);
  CAMLreturn(Val_unit);
}

/* dp_fd_recv(sock, bytes): receive one datagram into [bytes]; returns
   (payload_length, fd option). Length 0 with no fd means the peer
   closed the channel (we never send empty datagrams). */
CAMLprim value dp_fd_recv(value vsock, value vbuf)
{
  CAMLparam2(vsock, vbuf);
  CAMLlocal2(vres, vfd_opt);
  int sock = Int_val(vsock);
  size_t cap = caml_string_length(vbuf);
  char copy[65536];
  struct msghdr msg;
  struct iovec iov;
  char cbuf[CMSG_SPACE(sizeof(int))];
  struct cmsghdr *cmsg;
  ssize_t n;
  int fd = -1;

  if (cap > sizeof(copy)) cap = sizeof(copy);

  memset(&msg, 0, sizeof(msg));
  iov.iov_base = copy;
  iov.iov_len = cap;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);

  caml_release_runtime_system();
  do {
    n = recvmsg(sock, &msg, 0);
  } while (n == -1 && errno == EINTR);
  caml_acquire_runtime_system();

  if (n == -1) uerror("fd_recv", Nothing);

  for (cmsg = CMSG_FIRSTHDR(&msg); cmsg != NULL;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS &&
        cmsg->cmsg_len >= CMSG_LEN(sizeof(int))) {
      memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
      break;
    }
  }

  memcpy(Bytes_val(vbuf), copy, (size_t)n);

  if (fd >= 0) {
    vfd_opt = caml_alloc_some(Val_int(fd));
  } else {
    vfd_opt = Val_none;
  }
  vres = caml_alloc_tuple(2);
  Store_field(vres, 0, Val_long(n));
  Store_field(vres, 1, vfd_opt);
  CAMLreturn(vres);
}
