external fd_send :
  Unix.file_descr -> Unix.file_descr option -> Bytes.t -> int -> unit
  = "dp_fd_send"

external fd_recv : Unix.file_descr -> Bytes.t -> int * Unix.file_descr option
  = "dp_fd_recv"

let max_msg = 65536

let channel () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_DGRAM 0

let send sock ?fd msg =
  let len = String.length msg in
  if len = 0 || len > max_msg then
    invalid_arg "Fd_passing.send: message must be 1..65536 bytes";
  fd_send sock fd (Bytes.of_string msg) len

type received = { msg : string; fd : Unix.file_descr option }

let recv sock =
  let buf = Bytes.create max_msg in
  let n, fd = fd_recv sock buf in
  if n = 0 && fd = None then None
  else Some { msg = Bytes.sub_string buf 0 n; fd }
