type line = { text : string; bytes : int }

type t = { max : int; buf : Buffer.t; mutable count : int }

let create ?(max = Dp_engine.Protocol.max_line_bytes) () =
  { max; buf = Buffer.create 128; count = 0 }

let pending_bytes t = t.count

(* Scan [len] bytes of [chunk] starting at [off] for newlines. Bytes of
   the current partial line are buffered only while the buffer holds at
   most [max] bytes — so an oversized line occupies at most [max + 1]
   bytes of memory no matter how it is split across TCP segments, while
   [count] keeps the true length for the caller's over-limit reply.
   The cap must apply across segments: reassembling a line from many
   small reads and only then checking its length would let a peer buffer
   unbounded garbage one segment at a time. *)
let feed t chunk off len =
  let lines = ref [] in
  for i = off to off + len - 1 do
    match Bytes.get chunk i with
    | '\n' ->
        lines := { text = Buffer.contents t.buf; bytes = t.count } :: !lines;
        Buffer.clear t.buf;
        t.count <- 0
    | ch ->
        if Buffer.length t.buf <= t.max then Buffer.add_char t.buf ch;
        t.count <- t.count + 1
  done;
  List.rev !lines
