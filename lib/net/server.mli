(** Multi-client TCP frontend for the line protocol — [dpkit serve --tcp].

    A single-threaded [Unix.select] loop serves many concurrent
    connections, executing requests through {!Dp_engine.Protocol.exec}
    verbatim — the wire dialect, error taxonomy, and privacy behaviour
    are byte-identical to the stdio server; only the transport differs.
    On the wire each request line is answered by one {e reply frame}:
    the reply lines followed by a blank line, so a client can delimit
    multi-line replies without knowing the command grammar.

    {2 Robustness properties}

    - {b Bounded memory per connection}: request lines are reassembled
      by {!Linebuf}, which holds at most [max_line_bytes + 1] bytes per
      connection however a peer fragments an oversized line.
    - {b Slow-loris defense}: the idle clock advances only on
      {e completed} request lines, never raw bytes, so dribbling a
      never-terminated line is indistinguishable from silence and the
      connection is closed at the idle timeout. Replies that the client
      will not drain are bounded by the per-request reply deadline.
    - {b Admission control}: past [max_conns] connections or
      [max_inflight] queued work items, new arrivals are shed with
      [err overloaded retry-after=MS]. The shed decision and the hint
      are computed from queue depth {e only} — never ledger or budget
      state — so being shed reveals nothing about spent ε.
    - {b Graceful drain}: {!request_stop} (called from SIGTERM/SIGINT
      handlers) makes {!run} stop accepting and reading, finish every
      queued request, flush every reply, close all connections, and
      return — after which the caller snapshots metrics and closes the
      engine (fsyncing the journal).
    - {b Fault points}: [accept-fail], [read-stall], [write-drop] and
      [conn-reset] ({!Dp_engine.Faults}) are honoured at the matching
      spots, so the chaos harness can tear connections mid-reply and
      assert that clients retry to a consistent, never-double-released
      outcome. *)

type config = {
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  backlog : int;
  max_conns : int;  (** accept-time admission bound *)
  max_inflight : int;  (** queued requests + unflushed replies bound *)
  max_append_inflight : int;
      (** lower shed watermark for [append] lines: a journal-fsync-heavy
          append flood is shed before it can starve interactive queries
          (decision is first-token syntax + queue depth, never budget) *)
  idle_timeout_s : float;
  reply_deadline_s : float;  (** request queued to reply flushed *)
  retry_after_base_ms : int;  (** scales the depth-based retry hint *)
}

val default_config : config
(** Ephemeral port, 64 conns, 128 inflight (32 for appends), 30s idle,
    10s deadline, 50ms retry-after base. *)

type t

val create : ?config:config -> Dp_engine.Engine.t -> (t, string) result
(** Bind and listen on loopback. The engine's fault plan and metric
    registry are picked up from the engine itself. *)

val port : t -> int
(** The bound port (resolved when [config.port = 0]). *)

val run : t -> unit
(** Serve until {!request_stop} and the subsequent drain complete.
    Only an injected {!Dp_engine.Faults.Crash} escapes — everything
    else is a typed reply line to the client. *)

val request_stop : t -> unit
(** Begin graceful drain; safe to call from a signal handler (it only
    sets a flag — the select loop notices on its next turn, including
    via [EINTR]). *)

val draining : t -> bool
val conn_count : t -> int
