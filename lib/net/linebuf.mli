(** Incremental bounded line reassembly for non-blocking sockets.

    The stdio server's bounded reader ({!Dp_engine.Protocol.serve})
    pulls one character at a time from an [in_channel]; a [select] loop
    gets whole TCP segments instead, and a request line may arrive
    split across many of them. This buffer reassembles newline-
    terminated lines across segment boundaries while keeping the same
    memory bound as the stdio reader: at most
    [max + 1] bytes are ever buffered for the current line, however the
    peer fragments it, while the true byte count is still tracked so an
    over-limit line gets the exact same
    [err bad-argument line exceeds ...] reply on both transports. *)

type line = {
  text : string;  (** line content, truncated to [max + 1] bytes *)
  bytes : int;  (** true length — compare against the cap, not [text] *)
}

type t

val create : ?max:int -> unit -> t
(** [max] defaults to {!Dp_engine.Protocol.max_line_bytes}. *)

val feed : t -> Bytes.t -> int -> int -> line list
(** [feed t chunk off len] consumes [len] bytes at [off] and returns
    the lines completed by this segment, in arrival order. Bytes after
    the last newline stay buffered (bounded) for the next segment. *)

val pending_bytes : t -> int
(** True length of the buffered partial line (0 if none). A peer that
    dribbles a never-terminated line grows this count, not memory. *)
