open Dp_engine

type config = {
  host : string;
  port : int;
  attempts : int;
  backoff_s : float;
  cap_s : float;
  reply_timeout_s : float;
  jitter : Dp_rng.Prng.t option;
}

let default_config ~port =
  {
    host = "127.0.0.1";
    port;
    attempts = 8;
    backoff_s = 0.05;
    cap_s = 2.0;
    reply_timeout_s = 10.;
    jitter = None;
  }

let now_s () = float_of_int (Dp_obs.Clock.now_ns ()) /. 1e9

type wire = { fd : Unix.file_descr; lb : Linebuf.t }

let connect cfg =
  match Unix.getaddrinfo cfg.host (string_of_int cfg.port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | [] -> Error (Printf.sprintf "no address for %s" cfg.host)
  | ai :: _ -> (
      let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
      match Unix.connect fd ai.Unix.ai_addr with
      | () -> Ok { fd; lb = Linebuf.create () }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message e))

let disconnect w =
  match w with
  | None -> ()
  | Some { fd; _ } -> ( try Unix.close fd with Unix.Unix_error _ -> ())

let send_line { fd; _ } line =
  let b = Bytes.of_string (line ^ "\n") in
  let rec go off =
    if off >= Bytes.length b then Ok ()
    else
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

(* Read one reply frame: lines up to the blank terminator. An EOF or a
   timeout before the terminator is a torn frame — indistinguishable
   from a server that died mid-reply, so the caller treats it exactly
   like a transient error and retries the whole request. *)
let read_frame cfg w =
  let buf = Bytes.create 4096 in
  let deadline = now_s () +. cfg.reply_timeout_s in
  let rec go acc pending =
    match pending with
    | l :: rest ->
        if l.Linebuf.text = "" then Ok (List.rev acc, rest)
        else go (l :: acc) rest
    | [] ->
        let left = deadline -. now_s () in
        if left <= 0. then Error "reply timeout"
        else (
          match Unix.select [ w.fd ] [] [] left with
          | [], _, _ -> Error "reply timeout"
          | _ -> (
              match Unix.read w.fd buf 0 (Bytes.length buf) with
              | 0 -> Error "connection closed mid-reply"
              | n -> go acc (Linebuf.feed w.lb buf 0 n)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go acc []
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Unix.error_message e)))
  in
  match go [] [] with
  | Ok (lines, leftover) ->
      (* server replies are strictly request-ordered; nothing may sit
         between frames *)
      ignore leftover;
      Ok (List.map (fun l -> l.Linebuf.text) lines)
  | Error _ as e -> e

type verdict = Final | Transient of string | Overloaded of int

let classify = function
  | [] -> Transient "empty reply frame"
  | first :: _ ->
      let starts p =
        String.length first >= String.length p
        && String.sub first 0 (String.length p) = p
      in
      if starts "err overloaded" then
        let ms =
          List.fold_left
            (fun acc tok ->
              match String.index_opt tok '=' with
              | Some i when String.sub tok 0 i = "retry-after" -> (
                  match
                    int_of_string_opt
                      (String.sub tok (i + 1) (String.length tok - i - 1))
                  with
                  | Some v -> v
                  | None -> acc)
              | _ -> acc)
            0
            (String.split_on_char ' ' first)
        in
        Overloaded ms
      else if starts "err transient" then Transient first
      else Final

let backoff cfg ~attempt =
  Faults.backoff_delay ~cap_s:cfg.cap_s ?jitter:cfg.jitter
    ~backoff_s:cfg.backoff_s ~attempt ()

(* One request, retried to a final reply. Only [err transient],
   [err overloaded] and wire failures (refused, reset, torn frame,
   timeout) are retried — every other reply is the server's final word
   and is returned as-is. Overloaded sleeps at least the server's
   retry-after hint; everything else sleeps capped exponential backoff
   with full jitter, so a herd of clients bounced by the same restart
   does not return as a herd. *)
let request_on cfg wire line =
  let rec attempt n =
    let retry err =
      disconnect !wire;
      wire := None;
      if n >= cfg.attempts then
        Error (Printf.sprintf "gave up after %d attempts (%s)" cfg.attempts err)
      else begin
        Unix.sleepf (backoff cfg ~attempt:n);
        attempt (n + 1)
      end
    in
    let conn =
      match !wire with
      | Some w -> Ok w
      | None -> (
          match connect cfg with
          | Ok w ->
              wire := Some w;
              Ok w
          | Error _ as e -> e)
    in
    match conn with
    | Error msg -> retry msg
    | Ok w -> (
        match send_line w line with
        | Error msg -> retry msg
        | Ok () -> (
            match read_frame cfg w with
            | Error msg -> retry msg
            | Ok frame -> (
                match classify frame with
                | Final -> Ok frame
                | Transient msg ->
                    if n >= cfg.attempts then Ok frame else retry msg
                | Overloaded ms ->
                    if n >= cfg.attempts then Ok frame
                    else begin
                      (* the hint is a floor, not the whole story: keep
                         the jittered exponential underneath so repeated
                         sheds still decorrelate *)
                      Unix.sleepf
                        (Float.max
                           (float_of_int ms /. 1000.)
                           (backoff cfg ~attempt:n));
                      attempt (n + 1)
                    end)))
  in
  attempt 1

(* Sessions: the same retrying request loop over a persistent
   connection, exposed programmatically so the certification harness
   can drive a live server through the exact client code path analysts
   use (reconnect-on-reset included). *)
type session = { cfg : config; wire : wire option ref }

let open_session cfg = { cfg; wire = ref None }
let request s line = request_on s.cfg s.wire line

let close_session s =
  disconnect !(s.wire);
  s.wire := None

let skip line =
  let line = String.trim line in
  line = "" || line.[0] = '#'

let run cfg ic oc =
  let wire = ref None in
  let failures = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if not (skip line) then begin
         (match request_on cfg wire line with
         | Ok frame -> List.iter (fun l -> Printf.fprintf oc "%s\n" l) frame
         | Error msg ->
             incr failures;
             Printf.fprintf oc "err transient client %s\n" msg);
         flush oc
       end
     done
   with End_of_file -> ());
  disconnect !wire;
  if !failures = 0 then 0 else 1
