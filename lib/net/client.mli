(** Retrying line-protocol client — [dpkit client].

    Reads request lines from an input channel, sends each to the TCP
    frontend, and prints the reply lines (without the blank frame
    terminator, so the output matches the stdio server's byte-for-
    byte). Each request is retried to a final reply through capped
    exponential backoff with full jitter ({!Dp_engine.Faults.backoff_delay}):

    - retried: [err transient], [err overloaded] (sleeping at least the
      server's [retry-after=MS] hint), and wire failures — connection
      refused, reset, torn reply frame, reply timeout. Retrying these
      is safe by the engine's charge-before-answer discipline: a torn
      connection may cost budget (the charge was durable even if the
      answer never arrived), but re-asking an answered query is a cache
      hit, so no noise value is ever released twice.
    - final: every other reply ([ok ...], [err bad-*], [err
      budget-exceeded], [err degraded], [err fatal]) — the server's
      word, printed as-is.

    Blank and [#]-comment input lines are skipped locally (never sent),
    keeping the request/frame pairing trivially in sync. *)

type config = {
  host : string;
  port : int;
  attempts : int;  (** per request *)
  backoff_s : float;  (** backoff base *)
  cap_s : float;  (** backoff cap *)
  reply_timeout_s : float;  (** select timeout for one reply frame *)
  jitter : Dp_rng.Prng.t option;
      (** full-jitter stream; [None] = deterministic un-jittered
          backoff (tests). Never a privacy stream. *)
}

val default_config : port:int -> config
(** 127.0.0.1, 8 attempts, 50ms base, 2s cap, 10s reply timeout. *)

(** {2 Sessions}

    The same retrying request loop, exposed programmatically over a
    persistent connection. The statistical certification harness
    ([dpkit certify --via tcp]) uses sessions to drive a live server
    through the exact code path analysts use — including transparent
    reconnection after a connection reset, which is what lets the
    fault-armed soak legs keep measuring across injected resets. *)

type session

val open_session : config -> session
(** Lazy: no connection is made until the first {!request}. *)

val request : session -> string -> (string list, string) result
(** One request line, retried to a final reply frame (returned without
    the blank terminator). [Error] only after [attempts] give-ups. *)

val close_session : session -> unit
(** Close the underlying connection, if any. The session may be reused
    (the next {!request} reconnects). *)

val run : config -> in_channel -> out_channel -> int
(** Drive requests from the channel until EOF; returns the exit code —
    0 when every request reached a final reply, 1 when any gave up. *)
