(** SCM_RIGHTS descriptor passing for the worker pool's control
    channel.

    The pool coordinator owns the TCP listener and hands each accepted
    connection to a worker over a Unix-domain {e datagram} socketpair
    ({!channel}): datagrams keep message boundaries, so every receive
    yields exactly one control message plus at most one attached
    descriptor — no framing layer needed on top. The same channel
    carries the lease/registration RPCs as plain text messages with no
    descriptor attached. *)

val channel : unit -> Unix.file_descr * Unix.file_descr
(** A connected [PF_UNIX SOCK_DGRAM] socketpair (reliable, ordered,
    boundary-preserving on every platform dpkit serves from). *)

val send : Unix.file_descr -> ?fd:Unix.file_descr -> string -> unit
(** [send sock ?fd msg] sends [msg] as one datagram, attaching [fd] as
    SCM_RIGHTS ancillary data when given. The receiver gets its own
    duplicate of the descriptor; the sender still owns (and should
    close) its copy. Blocks if the channel is full — that is the
    pool's natural backpressure. Messages are capped at 64 KiB.
    @raise Unix.Unix_error on a dead peer (e.g. [EPIPE], [ECONNRESET]).
    @raise Invalid_argument on an oversized message. *)

type received = {
  msg : string;  (** the datagram payload *)
  fd : Unix.file_descr option;  (** the passed descriptor, if any *)
}

val recv : Unix.file_descr -> received option
(** Receive one datagram; [None] means the peer closed the channel (a
    zero-length read with no descriptor — empty datagrams are never
    sent). Blocks until a message arrives; use [Unix.select] on the
    channel fd to poll. *)
