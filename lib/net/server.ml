open Dp_engine

type config = {
  port : int;
  backlog : int;
  max_conns : int;
  max_inflight : int;
  max_append_inflight : int;
  idle_timeout_s : float;
  reply_deadline_s : float;
  retry_after_base_ms : int;
}

let default_config =
  {
    port = 0;
    backlog = 64;
    max_conns = 64;
    max_inflight = 128;
    max_append_inflight = 32;
    idle_timeout_s = 30.;
    reply_deadline_s = 10.;
    retry_after_base_ms = 50;
  }

(* One connection's whole state machine: bounded line reassembly in,
   queued requests, one reply frame at a time out. [out]/[out_pos] is
   the unflushed reply; a conn with a non-empty [out] counts toward the
   admission depth (its reply occupies the pipeline until the client
   drains it). *)
type conn = {
  fd : Unix.file_descr;
  lb : Linebuf.t;
  requests : Linebuf.line Queue.t;
  mutable out : Bytes.t;
  mutable out_pos : int;
  mutable close_after_flush : bool;
  mutable eof : bool;
  mutable closed : bool;
  mutable last_request : float;  (** completed-request time, not bytes *)
  mutable deadline : float;  (** absolute; 0. = no reply in flight *)
  mutable req_start_ns : int;  (** 0 = no request being served *)
  accept_ns : int;
  mutable replied : bool;  (** first reply fully flushed *)
}

type t = {
  eng : Engine.t;
  cfg : config;
  listener : Unix.file_descr;
  port : int;
  scope : Dp_obs.Metrics.scope;
  faults : Faults.t;
  mutable conns : conn list;
  mutable stopping : bool;
  mutable listener_open : bool;
  mutable drained : bool;
}

let now_s () = float_of_int (Dp_obs.Clock.now_ns ()) /. 1e9

let create ?(config = default_config) eng =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
    Unix.listen fd config.backlog;
    Unix.set_nonblock fd;
    (match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port)
  with
  | port ->
      Ok
        {
          eng;
          cfg = config;
          listener = fd;
          port;
          scope = Dp_obs.Metrics.global (Engine.metrics eng);
          faults = Engine.faults eng;
          conns = [];
          stopping = false;
          listener_open = true;
          drained = false;
        }
  | exception Unix.Unix_error (e, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let port t = t.port
let conn_count t = List.length t.conns
let request_stop t = t.stopping <- true
let draining t = t.stopping

let has_output c = c.out_pos < Bytes.length c.out

(* Admission depth: requests waiting to execute plus replies waiting to
   flush. This is the ONLY input to the shed decision and the
   retry-after hint — never ledger or budget state, so being shed
   reveals nothing about spent epsilon (rejection is otherwise a side
   channel: "overloaded" must not be a euphemism for "budget low"). *)
let depth t =
  List.fold_left
    (fun acc c ->
      if c.closed then acc
      else
        acc + Queue.length c.requests
        + (if has_output c || c.req_start_ns > 0 then 1 else 0))
    0 t.conns

let retry_after_ms t =
  min 60_000 (t.cfg.retry_after_base_ms * (1 + depth t))

let overloaded_line t =
  Printf.sprintf "err overloaded retry-after=%d" (retry_after_ms t)

(* Append one reply frame: the reply lines, then the blank-line
   terminator that lets the client know the frame is complete. *)
let queue_frame ?(terminated = true) c lines =
  let b = Buffer.create 256 in
  if has_output c then
    Buffer.add_subbytes b c.out c.out_pos (Bytes.length c.out - c.out_pos);
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    lines;
  if terminated then Buffer.add_char b '\n';
  c.out <- Buffer.to_bytes b;
  c.out_pos <- 0

let close_conn t reason c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    (match reason with
    | `Normal -> ()
    | `Deadline -> Dp_obs.Metrics.incr t.scope Dp_obs.Name.Net_deadline_closed
    | `Drain -> Dp_obs.Metrics.incr t.scope Dp_obs.Name.Net_drained)
  end

let mk_conn fd =
  {
    fd;
    lb = Linebuf.create ();
    requests = Queue.create ();
    out = Bytes.empty;
    out_pos = 0;
    close_after_flush = false;
    eof = false;
    closed = false;
    last_request = now_s ();
    deadline = 0.;
    req_start_ns = 0;
    accept_ns = Dp_obs.Clock.now_ns ();
    replied = false;
  }

let accept_phase t =
  if Faults.fire t.faults Faults.Accept_fail then
    (* the connection stays in the kernel backlog for a later turn *)
    ()
  else
    match Unix.accept t.listener with
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED | Unix.EINTR), _, _)
      ->
        ()
    | fd, _ ->
        Unix.set_nonblock fd;
        if List.length t.conns >= t.cfg.max_conns then begin
          (* shed at the door, but with a typed reply: the client learns
             it was load, not its request, and when to come back *)
          Dp_obs.Metrics.incr t.scope Dp_obs.Name.Net_conns_shed;
          let c = mk_conn fd in
          c.eof <- true;
          c.close_after_flush <- true;
          c.deadline <- now_s () +. t.cfg.reply_deadline_s;
          queue_frame c [ overloaded_line t ];
          t.conns <- c :: t.conns
        end
        else begin
          Dp_obs.Metrics.incr t.scope Dp_obs.Name.Net_conns_accepted;
          t.conns <- mk_conn fd :: t.conns
        end

(* Append floods shed at a lower watermark than everything else: each
   append costs a journal fsync, so a firehose of them would occupy the
   whole pipeline and starve interactive queries long before the global
   bound trips. The test is purely syntactic (first token) plus queue
   depth — still never ledger or budget state. *)
let is_append_line text =
  let t = String.trim text in
  t = "append"
  || String.length t > 6
     && String.sub t 0 7 = "append "

let handle_line t c (l : Linebuf.line) =
  c.last_request <- now_s ();
  let bound =
    if is_append_line l.Linebuf.text then
      min t.cfg.max_append_inflight t.cfg.max_inflight
    else t.cfg.max_inflight
  in
  if depth t >= bound then begin
    Dp_obs.Metrics.incr t.scope Dp_obs.Name.Net_requests_shed;
    queue_frame c [ overloaded_line t ];
    if c.deadline = 0. then c.deadline <- now_s () +. t.cfg.reply_deadline_s
  end
  else begin
    Queue.push l c.requests;
    if c.deadline = 0. then c.deadline <- now_s () +. t.cfg.reply_deadline_s
  end

let read_buf = Bytes.create 4096

let read_phase t c =
  if c.closed || c.eof then ()
  else if Faults.fire t.faults Faults.Read_stall then
    (* drop this readiness notification; the data waits in the socket *)
    ()
  else
    match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | 0 ->
        c.eof <- true;
        if Queue.is_empty c.requests && not (has_output c) then
          close_conn t `Normal c
    | n -> List.iter (handle_line t c) (Linebuf.feed c.lb read_buf 0 n)
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn t `Normal c

(* Execute at most one queued request per conn per loop turn (round-
   robin fairness), and only once the previous reply frame is fully
   flushed — the reply order on a connection is the request order. *)
let exec_phase t c =
  if c.closed || has_output c || Queue.is_empty c.requests then ()
  else begin
    let l = Queue.pop c.requests in
    c.req_start_ns <- Dp_obs.Clock.now_ns ();
    Dp_obs.Metrics.incr t.scope Dp_obs.Name.Net_requests;
    let text, bytes =
      if Faults.fire t.faults Faults.Garbage_line then
        let g = String.make (Protocol.max_line_bytes + 64) '\xfe' in
        (g, String.length g)
      else (l.Linebuf.text, l.Linebuf.bytes)
    in
    let reply =
      if bytes > Protocol.max_line_bytes then
        [ Protocol.oversized_reply bytes ]
      else Protocol.exec t.eng text
    in
    if Protocol.is_quit text then c.close_after_flush <- true;
    if Faults.fire t.faults Faults.Write_drop then
      (* reply computed (and any charge journaled), zero bytes written:
         the client must retry through a torn connection *)
      close_conn t `Normal c
    else if Faults.fire t.faults Faults.Conn_reset then begin
      (* first line only, no terminator: a torn frame mid-reply *)
      (match reply with
      | first :: _ -> queue_frame ~terminated:false c [ first ]
      | [] -> ());
      c.close_after_flush <- true
    end
    else queue_frame c reply
  end

let write_phase t c =
  if c.closed || not (has_output c) then ()
  else
    match Unix.write c.fd c.out c.out_pos (Bytes.length c.out - c.out_pos) with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        close_conn t `Normal c
    | n ->
        c.out_pos <- c.out_pos + n;
        if not (has_output c) then begin
          c.out <- Bytes.empty;
          c.out_pos <- 0;
          if not c.replied then begin
            c.replied <- true;
            Dp_obs.Metrics.observe t.scope Dp_obs.Name.Net_accept_to_reply_ns
              (Dp_obs.Clock.elapsed_ns c.accept_ns)
          end;
          if c.req_start_ns > 0 then begin
            Dp_obs.Metrics.observe t.scope Dp_obs.Name.Net_reply_ns
              (Dp_obs.Clock.elapsed_ns c.req_start_ns);
            c.req_start_ns <- 0
          end;
          if Queue.is_empty c.requests then c.deadline <- 0.;
          if c.close_after_flush || (c.eof && Queue.is_empty c.requests) then
            close_conn t `Normal c
        end

(* Deadlines and idle timeouts. [last_request] only advances on a
   {e completed} request line (or at accept), never on raw bytes — a
   slow-loris peer dribbling one byte of a never-terminated line per
   second makes no progress by this clock and is closed at the idle
   timeout like any silent connection. *)
let timeout_phase t =
  let now = now_s () in
  List.iter
    (fun c ->
      if c.closed then ()
      else if c.deadline > 0. && now > c.deadline then close_conn t `Deadline c
      else if
        c.deadline = 0.
        && Queue.is_empty c.requests
        && (not (has_output c))
        && now -. c.last_request > t.cfg.idle_timeout_s
      then close_conn t `Deadline c)
    t.conns

let next_wakeup t =
  let now = now_s () in
  List.fold_left
    (fun acc c ->
      let e =
        if c.deadline > 0. then c.deadline
        else c.last_request +. t.cfg.idle_timeout_s
      in
      Float.min acc (Float.max 0.01 (e -. now)))
    1.0 t.conns

let run t =
  let rec loop () =
    if t.stopping && t.listener_open then begin
      (* graceful drain: stop accepting and stop reading; finish what
         is already in the pipeline, flush it, then leave *)
      Unix.close t.listener;
      t.listener_open <- false
    end;
    (* published every turn, including the one that completes the
       drain, so the final metrics snapshot reads 0 *)
    Dp_obs.Metrics.set_gauge t.scope Dp_obs.Name.Net_conns_open
      (float_of_int (List.length t.conns));
    Dp_obs.Metrics.set_gauge t.scope Dp_obs.Name.Net_inflight
      (float_of_int (depth t));
    if t.stopping && t.conns = [] then t.drained <- true
    else begin
      timeout_phase t;
      if t.stopping then
        List.iter
          (fun c ->
            if
              (not c.closed)
              && Queue.is_empty c.requests
              && (not (has_output c))
              && c.req_start_ns = 0
            then close_conn t `Drain c)
          t.conns;
      if t.stopping && t.conns = [] then t.drained <- true
      else begin
        let reads =
          (if t.listener_open && not t.stopping then [ t.listener ] else [])
          @ List.filter_map
              (fun c ->
                if c.closed || c.eof || t.stopping then None else Some c.fd)
              t.conns
        in
        let writes =
          List.filter_map
            (fun c -> if (not c.closed) && has_output c then Some c.fd else None)
            t.conns
        in
        let timeout = if t.stopping then 0.02 else next_wakeup t in
        let r, _, _ =
          try Unix.select reads writes [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if t.listener_open && List.mem t.listener r then accept_phase t;
        List.iter
          (fun c -> if List.mem c.fd r then read_phase t c)
          t.conns;
        List.iter (fun c -> exec_phase t c) t.conns;
        (* opportunistic: try every pending reply, not just the fds
           select confirmed — EAGAIN is handled, and replies queued this
           turn would otherwise wait a full loop *)
        List.iter (fun c -> write_phase t c) t.conns;
        loop ()
      end
    end
  in
  loop ();
  (* the drain may have closed the last connections mid-turn, after
     this turn's gauge publication — re-publish so the final metrics
     snapshot reflects the drained state *)
  Dp_obs.Metrics.set_gauge t.scope Dp_obs.Name.Net_conns_open
    (float_of_int (List.length t.conns));
  Dp_obs.Metrics.set_gauge t.scope Dp_obs.Name.Net_inflight
    (float_of_int (depth t));
  if t.listener_open then begin
    Unix.close t.listener;
    t.listener_open <- false
  end
