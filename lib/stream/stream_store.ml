type stream = {
  handle : string;
  dataset : string;
  spec : Stream.spec;
  counter : Counter.t;
  mutable reads : int;  (* prefix + window releases served *)
}

type t = {
  tbl : (string, stream) Hashtbl.t;
  mutable order : string list;  (* newest first *)
  mutable n_appends : int;
}

let create () = { tbl = Hashtbl.create 16; order = []; n_appends = 0 }

let size t = List.length t.order

let add t s =
  if Hashtbl.mem t.tbl s.handle then
    invalid_arg
      (Printf.sprintf "Stream_store.add: duplicate handle %s" s.handle);
  Hashtbl.replace t.tbl s.handle s;
  t.order <- s.handle :: t.order

let find t handle = Hashtbl.find_opt t.tbl handle
let appends t = t.n_appends
let record_append t = t.n_appends <- t.n_appends + 1

let reads t =
  Hashtbl.fold (fun _ s acc -> acc + s.reads) t.tbl 0

let max_depth t =
  Hashtbl.fold (fun _ s acc -> max acc (Counter.depth s.counter)) t.tbl 0
