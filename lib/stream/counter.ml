(* Continual-observation counter: the tree (binary) mechanism with
   retained nodes. Binary_mechanism keeps only the O(log T) open
   frontier, which is enough for prefix counts but discards the closed
   dyadic blocks a sliding window needs. Here every closed node is
   kept, so any interval (lo, hi] inside the observed prefix decomposes
   into O(log T) already-noised blocks — prefix reads and window reads
   are both free post-processing of the same node values.

   Noise handling is split in two so the engine can journal it: a
   durable append is [prepare] (compute the noisy values the closing
   nodes would take, drawing fresh noise) followed by [commit] (apply
   given values). Crash recovery replays journaled appends through
   [commit] alone — the recovered tree holds bit-identical node values
   and consumes no PRNG draws, so released counts survive kill -9
   exactly and fresh post-recovery noise can never repeat a pre-crash
   position. *)

type t = {
  epsilon : float;  (* per-level budget: each record meets one node per level *)
  horizon : int;
  levels : int;  (* L: node sizes 2^0 .. 2^(L-1) *)
  nodes : float array array;  (* nodes.(l).(k): noisy sum of block k at level l *)
  acc : int array;  (* true sum of the open block per level *)
  mutable t_now : int;
  mutable true_total : int;
}

(* L = ceil(log2 horizon), min 1: the coarsest retained block is
   2^(L-1) <= horizon, and any sub-interval of [1, horizon] is covered
   by at most two blocks per level. The stream's whole-lifetime face
   charge is epsilon * L — logarithmic in the stream length. *)
let levels ~horizon =
  if horizon < 2 then invalid_arg "Counter.levels: horizon must be >= 2";
  let rec go l = if 1 lsl l >= horizon then l else go (l + 1) in
  go 1

let max_horizon = 1 lsl 20

let create ~epsilon ~horizon =
  if epsilon <= 0. || not (Float.is_finite epsilon) then
    invalid_arg "Counter.create: epsilon must be positive";
  if horizon < 2 || horizon > max_horizon then
    invalid_arg
      (Printf.sprintf "Counter.create: horizon must be in [2, %d]" max_horizon);
  let l = levels ~horizon in
  {
    epsilon;
    horizon;
    levels = l;
    (* sized for the padded horizon 2^L so every block index is valid *)
    nodes = Array.init l (fun lvl -> Array.make (1 lsl (l - lvl)) 0.);
    acc = Array.make l 0;
    t_now = 0;
    true_total = 0;
  }

let t_now t = t.t_now
let true_count t = t.true_total
let depth t = t.levels

(* Per-node sensitivity is 1 and each level is a disjoint partition of
   time, so Laplace(1/epsilon) per node gives epsilon-DP per level and
   epsilon * L for the stream. *)
let noise_scale t = 1. /. t.epsilon

let closing_levels t step =
  let rec go l acc =
    if l < 0 then acc
    else if step land ((1 lsl l) - 1) = 0 then go (l - 1) (l :: acc)
    else go (l - 1) acc
  in
  go (t.levels - 1) []

let prepare t ~bit ~noise =
  if bit <> 0 && bit <> 1 then
    invalid_arg "Counter.prepare: stream items must be 0 or 1";
  if t.t_now >= t.horizon then
    invalid_arg "Counter.prepare: past the declared horizon";
  let step = t.t_now + 1 in
  Array.of_list
    (List.map
       (fun lvl -> float_of_int (t.acc.(lvl) + bit) +. noise ())
       (closing_levels t step))

let commit t ~bit values =
  if bit <> 0 && bit <> 1 then
    invalid_arg "Counter.commit: stream items must be 0 or 1";
  if t.t_now >= t.horizon then
    invalid_arg "Counter.commit: past the declared horizon";
  let step = t.t_now + 1 in
  let closing = closing_levels t step in
  if Array.length values <> List.length closing then
    invalid_arg "Counter.commit: node value count does not match closing levels";
  t.t_now <- step;
  t.true_total <- t.true_total + bit;
  List.iteri
    (fun i lvl ->
      t.nodes.(lvl).((step lsr lvl) - 1) <- values.(i);
      t.acc.(lvl) <- 0)
    closing;
  let rec open_levels l =
    if l < t.levels then begin
      if step land ((1 lsl l) - 1) <> 0 then t.acc.(l) <- t.acc.(l) + bit;
      open_levels (l + 1)
    end
  in
  open_levels 0

(* Canonical decomposition of (lo, hi] into maximal aligned dyadic
   blocks: every chosen block ends at or before hi, so by now it has
   closed and holds a noisy value. At most two blocks per level. *)
let blocks t ~lo ~hi =
  let rec go pos acc =
    if pos >= hi then List.rev acc
    else
      let align =
        if pos = 0 then t.levels - 1
        else
          let rec tz i =
            if i >= t.levels - 1 || pos land ((1 lsl (i + 1)) - 1) <> 0 then i
            else tz (i + 1)
          in
          tz 0
      in
      let rec fit l = if 1 lsl l <= hi - pos then l else fit (l - 1) in
      let l = fit align in
      go (pos + (1 lsl l)) ((l, pos lsr l) :: acc)
  in
  go lo []

let sum_blocks t bs =
  List.fold_left (fun s (l, k) -> s +. t.nodes.(l).(k)) 0. bs

let read t = if t.t_now = 0 then 0. else sum_blocks t (blocks t ~lo:0 ~hi:t.t_now)

let window t ~w =
  if w <= 0 then Error "window must be positive"
  else
    let w = min w t.t_now in
    if w = 0 then Ok 0.
    else Ok (sum_blocks t (blocks t ~lo:(t.t_now - w) ~hi:t.t_now))

(* Exact noise variance of the count released at [t_now]: the number of
   noised blocks in the prefix decomposition times Var(Laplace(1/eps)).
   Tests pin the empirical error against this, and it is O(log^2 t /
   eps_total^2) in terms of the whole-stream budget eps_total = eps*L. *)
let read_variance t =
  if t.t_now = 0 then 0.
  else
    let b = List.length (blocks t ~lo:0 ~hi:t.t_now) in
    float_of_int b *. 2. /. (t.epsilon *. t.epsilon)
