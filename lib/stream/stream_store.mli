(** Per-dataset store of open streams, addressed by durable handles
    ([dataset/sN]). A handle exists iff its open frame is journaled,
    exactly like model handles. *)

type stream = {
  handle : string;
  dataset : string;
  spec : Stream.spec;
  counter : Counter.t;
  mutable reads : int;
}

type t

val create : unit -> t
val size : t -> int

val add : t -> stream -> unit
(** Raises [Invalid_argument] on a duplicate handle — recovery treats
    that as journal corruption, exactly like model handles. *)

val find : t -> string -> stream option
val appends : t -> int
val record_append : t -> unit
val reads : t -> int
val max_depth : t -> int
