(** Tree-mechanism continual counter with retained dyadic nodes.

    The classic binary mechanism keeps only its open frontier; this
    counter keeps every closed node, so the private prefix count {e
    and} any sliding-window count decompose into O(log T) noisy blocks
    over the same tree — windows are free post-processing, priced by
    the one whole-stream face charge of [epsilon * levels].

    Appends are split into {!prepare} (draw the noise the closing
    nodes take) and {!commit} (apply given node values), so a caller
    can make the noisy values durable between the two. Crash recovery
    replays journaled values through {!commit} alone: bit-identical
    node state, zero PRNG draws consumed. *)

type t

val levels : horizon:int -> int
(** [ceil (log2 horizon)], min 1 — the number of retained node levels
    and the log factor in the stream's face charge. *)

val max_horizon : int

val create : epsilon:float -> horizon:int -> t
(** [epsilon] is the per-level budget (each record meets exactly one
    node per level, so the stream costs [epsilon * levels ~horizon]
    in total). Raises [Invalid_argument] on a non-positive epsilon or
    a horizon outside [2, max_horizon]. *)

val t_now : t -> int
val true_count : t -> int
val depth : t -> int
(** Number of node levels (the journal-safe tree-depth gauge). *)

val noise_scale : t -> float
(** Laplace scale for one node: [1 / epsilon]. *)

val prepare : t -> bit:int -> noise:(unit -> float) -> float array
(** Noisy values the nodes closing at the next step would take, one
    [noise ()] draw per closing node, lowest level first. Does not
    mutate the counter. *)

val commit : t -> bit:int -> float array -> unit
(** Apply one append with the given closing-node values — the second
    half of a live append, and the whole of a journal replay. Raises
    [Invalid_argument] when the value count does not match the levels
    closing at this step. *)

val read : t -> float
(** Private count of the whole observed prefix. Deterministic given
    the committed node values. *)

val window : t -> w:int -> (float, string) result
(** Private count of the last [w] observed steps ([w] is clamped to
    the observed prefix). Deterministic given the committed nodes. *)

val read_variance : t -> float
(** Exact noise variance of {!read} at the current step: blocks in the
    prefix decomposition times [2/epsilon^2]. *)
