(* The static half of the streaming subsystem: parameter parsing and
   pricing. [spec] is a pure function of the declared parameters — no
   data access, no sampling — and it is the ONE place the face charge
   of a stream is computed. The live engine spends exactly [spec.face]
   when a stream opens and `dpkit analyze` pushes exactly [spec.face]
   through its simulated ledger, so the two agree float-bit-for-bit by
   construction (the Train.spec pattern). *)

open Dp_mechanism

type params = {
  epsilon : float;  (* per-level budget *)
  horizon : int;  (* N: declared maximum stream length *)
  window : int;  (* default sliding window; 0 = none declared *)
}

let keys = [ "eps"; "N"; "window" ]

let ( let* ) = Result.bind

let find_opt key opts =
  List.find_map (fun (k, v) -> if k = key then v else None) opts

let float_opt key ~default opts =
  match find_opt key opts with
  | None -> Ok default
  | Some s -> (
      match float_of_string_opt s with
      | Some x when Float.is_finite x -> Ok x
      | _ -> Error (Printf.sprintf "bad number %s=%s" key s))

let int_opt key ~default opts =
  match find_opt key opts with
  | None -> Ok default
  | Some s -> (
      match int_of_string_opt s with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad integer %s=%s" key s))

let params_of_opts ~default_epsilon opts =
  let* epsilon = float_opt "eps" ~default:default_epsilon opts in
  let* horizon = int_opt "N" ~default:1024 opts in
  let* window = int_opt "window" ~default:0 opts in
  if epsilon <= 0. then Error "eps must be positive"
  else if horizon < 2 || horizon > Counter.max_horizon then
    Error (Printf.sprintf "N must be in [2, %d]" Counter.max_horizon)
  else if window < 0 || window > horizon then
    Error "window must be in [0, N]"
  else Ok { epsilon; horizon; window }

let normalize p =
  Printf.sprintf "stream(N=%d,window=%d,eps=%.12g)" p.horizon p.window p.epsilon

let mechanism_name = "tree"

type spec = {
  params : params;
  levels : int;
  sensitivity : float;  (* one node per level per record *)
  face : Privacy.budget;  (* epsilon * levels, for the whole stream *)
}

let spec p =
  let levels = Counter.levels ~horizon:p.horizon in
  Ok
    {
      params = p;
      levels;
      sensitivity = float_of_int levels;
      face = Privacy.pure (p.epsilon *. float_of_int levels);
    }
