(** Streaming parameters and the shared static pricing spec.

    {!spec} prices a stream from its declared parameters alone — the
    live engine charges [spec.face] once when the stream opens, and
    [dpkit analyze] prices a [stream N=.. window=..] workload line
    through the same function, so static and live totals agree to the
    float bit. *)

open Dp_mechanism

type params = {
  epsilon : float;  (** per-level budget *)
  horizon : int;  (** N: declared maximum stream length *)
  window : int;  (** default sliding window; 0 = none declared *)
}

val keys : string list
(** Accepted option keys: [eps], [N], [window]. *)

val params_of_opts :
  default_epsilon:float ->
  (string * string option) list ->
  (params, string) result

val normalize : params -> string
(** Canonical query string, used as the journal/audit label. *)

val mechanism_name : string

type spec = {
  params : params;
  levels : int;  (** [Counter.levels ~horizon] *)
  sensitivity : float;  (** one node per level per record *)
  face : Privacy.budget;
      (** [epsilon * levels]: the whole-lifetime charge — appends and
          reads are then free *)
}

val spec : params -> (spec, string) result
