(** The privacy-dataflow catalogue.

    One module names everything the three flow analyses treat
    specially: which calls create protected values (row data, PRNG
    streams), which consume or launder them, which calls charge the
    ledger, which sites release an answer, and which path segments
    delimit each subsystem. When the codebase grows a new mechanism,
    sink, or subsystem, this is the one file to touch. *)

val checks : (string * string) list
(** [(id, one-line description)] for F1, F2 and F3 — the flow twin of
    {!Dp_lint.Rules.all}. *)

(** {1 F1: row taint} *)

val row_sources : (string * string) list
(** Calls whose result is raw protected data, as [(module, ident)]. *)

val row_fields : string list
(** Record fields holding raw per-individual values; reading one
    taints the result. *)

val public_fields : string list
(** Fields that are public metadata by design (row counts, charged
    epsilons); projecting one out of a tainted record declassifies. *)

val sanitizer_modules : string list
(** Mechanism modules: a call into one consumes its tainted inputs and
    returns a private answer. *)

val sanitizer_allowlist : (string * string) list
(** Functions allowed to carry a [[@dp.sanitizer]] attribute. The
    attribute alone is not enough — an annotation outside this list is
    itself an F1 finding, so laundering cannot be introduced by a
    stray attribute. *)

type sink_kind = Reply | Journal | Log | Metrics

val sink_kind_name : sink_kind -> string

val sinks : ((string * string) * sink_kind) list
(** Observable outputs, as [((module, ident), kind)]; module [""]
    matches unqualified stdlib printers. *)

val declassifiers : (string * string) list
(** Calls whose result is public even on protected input (lengths,
    schema facts). *)

val f1_scope_segs : string list
(** Path segments where F1 findings are reported; mechanism internals
    and pure math are out of scope. *)

(** {1 F2: charge-before-release} *)

val chargers : (string * string) list
(** Calls that put the current path in the Charged state. *)

val release_field : string
(** Applying a closure read from this field releases an answer. *)

val release_construct : string
(** Constructing this variant releases an answer. *)

val f2_scope_segs : string list

val diverging : (string * string) list
(** Tail calls that terminate a path without releasing. *)

(** {1 F3: RNG provenance} *)

val stream_creators : (string * string) list
val stream_fields : string list

val stream_consumers : (string * string) list
(** Calls that consume a stream and return plain data. *)

val domain_of_segs : string list -> string option
(** Owning subsystem of a file, from its path segments. *)

val domain_of_module : string -> string option
(** Owning subsystem of a call target whose source is outside the
    analyzed set, from its module prefix. *)

val neutral_modules : string list
(** Modules inside a domain's directory that are shared
    infrastructure: passing a stream to them is not a crossing. *)
