(* The privacy-dataflow catalogue: which calls create protected
   values, which launder them, which release them, and which
   subsystems own which PRNG streams. This is the one file to touch
   when the codebase grows a new mechanism, sink, or subsystem. *)

let checks =
  [
    ( "F1",
      "row taint: raw dataset values may only reach replies, journal \
       frames, logs, or metrics through a DP mechanism or a declared \
       [@dp.sanitizer]" );
    ( "F2",
      "charge-before-release: on every path, a ledger charge (or \
       deterministic-gate proof) dominates the release of an answer" );
    ( "F3",
      "RNG provenance: PRNG streams stay inside their owning \
       subsystem; no cross-subsystem stream reuse, raw copies, or \
       duplicate constant seeds" );
  ]

(* ---------- F1: row taint ---------- *)

(* calls whose result is raw protected data *)
let row_sources = [ ("Registry", "column"); ("Dataset", "row") ]

(* record fields holding raw per-individual values; reading one
   taints the result. [.values] is THE raw-data access path in this
   codebase (Registry columns); Model_store's [features] and train's
   [design] are metadata/derived and flow in through calls instead *)
let row_fields = [ "values" ]

(* fields that are public metadata by design (row counts, charged
   epsilons, chain counts): reading one out of a tainted record
   declassifies — the projection is exactly the kind of aggregate the
   policy publishes *)
let public_fields =
  [ "epsilon"; "rows"; "records"; "chains"; "rdp"; "cache"; "scope" ]

(* every mechanism module is a sanitizer boundary: a call into one
   consumes its (tainted) inputs and returns a private answer *)
let sanitizer_modules =
  [
    "Laplace";
    "Geometric_mech";
    "Discrete_gaussian";
    "Exponential";
    "Noisy_max";
    "Permute_and_flip";
    "Randomized_response";
    "Local_dp";
    "Sparse_vector";
    "Propose_test_release";
    "Smooth_sensitivity";
    "Binary_mechanism";
    "Counter";
    "Range_queries";
    "Subsample";
    "Mechanism";
  ]

(* named functions allowed to carry [@dp.sanitizer]; the attribute
   alone is not enough — an annotation outside this list is itself a
   finding, so laundering cannot be introduced by a stray attribute *)
let sanitizer_allowlist =
  [
    ("Quantile", "estimate");  (* exponential mechanism over ranks *)
    ("Train", "run");  (* Gibbs-posterior / objective-perturbation samplers *)
    ("Train", "public_facts");  (* design's public projection: names+bounds *)
    ("Planner", "cell_run");  (* per-cell histogram noising *)
    ("Protocol", "exec");  (* returns formed replies: the DP surface *)
    ("Engine", "open_journal");  (* replay stats / IO diagnostics only *)
  ]

type sink_kind = Reply | Journal | Log | Metrics

let sink_kind_name = function
  | Reply -> "protocol reply"
  | Journal -> "journal frame"
  | Log -> "log output"
  | Metrics -> "metrics sink"

(* (module, ident) -> sink; "" matches unqualified stdlib printers *)
let sinks =
  [
    (("", "print_string"), Log);
    (("", "print_endline"), Log);
    (("", "print_int"), Log);
    (("", "print_float"), Log);
    (("", "print_newline"), Log);
    (("", "prerr_string"), Log);
    (("", "prerr_endline"), Log);
    (("", "output_string"), Reply);
    (("", "output_char"), Reply);
    (("", "output_bytes"), Reply);
    (("Printf", "printf"), Log);
    (("Printf", "eprintf"), Log);
    (("Printf", "fprintf"), Reply);
    (("Format", "printf"), Log);
    (("Format", "eprintf"), Log);
    (("Format", "fprintf"), Reply);
    (("Unix", "write"), Reply);
    (("Unix", "write_substring"), Reply);
    (("Unix", "single_write"), Reply);
    (("Unix", "send"), Reply);
    (("Unix", "send_substring"), Reply);
    (("Buffer", "add_string"), Reply);
    (("Buffer", "add_bytes"), Reply);
    (("Buffer", "add_channel"), Reply);
    (("Journal", "append"), Journal);
    (("", "journal_append"), Journal);
    (("Metrics", "incr"), Metrics);
    (("Metrics", "add"), Metrics);
    (("Metrics", "observe"), Metrics);
    (("Metrics", "set_counter"), Metrics);
    (("Metrics", "set_gauge"), Metrics);
    (("Span", "tag"), Metrics);
    (("Obs", "log"), Log);
  ]

(* cardinalities and sizes are public metadata in this design
   (Registry exposes row counts); taking a length declassifies *)
let declassifiers =
  [
    ("Array", "length");
    ("List", "length");
    ("String", "length");
    ("Bytes", "length");
    ("Hashtbl", "length");
    ("Buffer", "length");
    ("Registry", "rows");
    ("Registry", "policy");
    ("Registry", "schema");
  ]

(* F1 reports only where leakage matters: the serving, training,
   certification, and observability layers. Mechanism internals and
   pure math are out of scope. *)
let f1_scope_segs =
  [ "engine"; "net"; "train"; "certify"; "obs"; "stream"; "pool" ]

(* ---------- F2: charge-before-release ---------- *)

(* a call to any of these puts the current path in the Charged state:
   budget actually spent, a replayed charge honored, or a
   deterministic no-privacy-cost proof established *)
let chargers =
  [
    ("Ledger", "spend");
    ("Ledger", "replay_charge");
    ("Journal", "append");
    ("", "journal_append");
    ("Gates", "check");
    ("Gates", "deterministic");
    (* the pool's charge-before-grant: a lease is journaled in the
       coordinator's grant WAL before any worker may answer under it *)
    ("Grant_wal", "append");
  ]

(* release sites: applying a planner's [.run] closure, or
   constructing a [Released] outcome *)
let release_field = "run"
let release_construct = "Released"
let f2_scope_segs = [ "engine"; "train"; "stream"; "pool" ]

(* tail calls that terminate a path without releasing *)
let diverging =
  [ ("", "failwith"); ("", "invalid_arg"); ("", "raise"); ("", "exit") ]

(* ---------- F3: RNG provenance ---------- *)

let stream_creators = [ ("Prng", "create"); ("Prng", "split") ]
let stream_fields = [ "rng"; "jitter" ]

(* calls that consume a stream and return plain data — the stream does
   not survive into the result (draws are handled generically; these
   are the named exceptions) *)
let stream_consumers =
  [
    ("Registry", "synthetic");
    ("Faults", "backoff_delay");
    ("Faults", "with_retries");
  ]

(* subsystem domains: engine, train and stream share one domain (the
   engine hands its streams to training and to tree-counter noise
   deliberately — engine.ml threads t.rng into Train.run and
   t.stream_rng into Counter.prepare closures); net and certify own
   theirs *)
let domain_of_segs segs =
  if List.mem "engine" segs || List.mem "train" segs
     || List.mem "stream" segs || List.mem "pool" segs
  then Some "engine"
  else if List.mem "net" segs then Some "net"
  else if List.mem "certify" segs then Some "certify"
  else None

(* module prefix -> owning domain, for calls into wrapped libraries
   whose source is outside the analyzed set *)
let domain_of_module m =
  match m with
  | "Engine" | "Protocol" | "Planner" | "Ledger" | "Train" | "Stream"
  | "Counter" | "Stream_store" | "Pool" | "Lease" | "Grant_wal" ->
      Some "engine"
  | "Client" | "Server" | "Wire" -> Some "net"
  | "Certify" | "Stat" -> Some "certify"
  | _ -> None

(* modules that live inside a domain's directory but are shared
   infrastructure: passing a stream to them is not a crossing *)
let neutral_modules = [ "Faults" ]

(* Prng.copy is the raw-state escape hatch: flagged in any
   domain-owning subsystem (engine/train, net, certify); the rng
   library itself and neutral code may use it *)
