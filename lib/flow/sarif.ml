(* SARIF 2.1.0 output for [dpkit flow --format sarif].

   Minimal but schema-valid: one run, the F1..F3 rule catalogue, one
   result per finding with a physical location, a stable
   partialFingerprint (the baseline fingerprint, so CI dedup and the
   local baseline agree), and the witness path as a code flow. *)

let esc = Dp_lint.Report.json_escape

let location ~file ~line ~col ~message =
  Printf.sprintf
    {|{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}%s}|}
    (esc file) (max 1 line) (col + 1)
    (match message with
    | None -> ""
    | Some m -> Printf.sprintf {|,"message":{"text":"%s"}|} (esc m))

let thread_flow_location (s : Dp_lint.Report.step) =
  Printf.sprintf {|{"location":%s}|}
    (location ~file:s.s_file ~line:s.s_line ~col:s.s_col
       ~message:(Some s.s_what))

let result (f : Dp_lint.Report.finding) =
  let code_flows =
    match f.witness with
    | [] -> ""
    | steps ->
        Printf.sprintf
          {|,"codeFlows":[{"threadFlows":[{"locations":[%s]}]}]|}
          (String.concat "," (List.map thread_flow_location steps))
  in
  Printf.sprintf
    {|{"ruleId":"%s","level":"error","message":{"text":"%s"},"locations":[%s],"partialFingerprints":{"dpkitFlow/v1":"%s"}%s}|}
    (esc f.rule) (esc f.message)
    (location ~file:f.file ~line:f.line ~col:f.col ~message:None)
    (Baseline.fingerprint f) code_flows

let rule_descriptor (id, description) =
  Printf.sprintf
    {|{"id":"%s","shortDescription":{"text":"%s"}}|}
    (esc id) (esc description)

let render findings =
  let rules = String.concat "," (List.map rule_descriptor Spec.checks) in
  let results = String.concat ",\n      " (List.map result findings) in
  Printf.sprintf
    {|{
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "dpkit-flow",
          "informationUri": "https://example.invalid/dpkit",
          "rules": [%s]
        }
      },
      "results": [%s]
    }
  ]
}
|}
    rules results
