(* File discovery and parsing for the flow analyzer.

   Every .ml under the requested paths is parsed with the compiler's
   own frontend (compiler-libs), so the analyses downstream see the
   real AST — a helper function, a record field, or a rename that
   defeats the token linter's window heuristics is just another node
   here. .mli files are skipped: flow analyzes implementations. *)

type file = {
  path : string;  (** as reported in findings ('/'-separated) *)
  modname : string;  (** capitalized basename: foo_bar.ml -> Foo_bar *)
  segs : string list;  (** path segments, for subsystem scoping *)
  structure : Parsetree.structure;
  allows : (int * string) list;
      (** [flow:allow RULE] comment directives harvested by the lint
          lexer: (line, rule) suppressions *)
}

type t = {
  files : file list;
  errors : string list;  (** unparseable files, reported not analyzed *)
}

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let modname_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Enumerate .ml files under a root (or accept a single .ml file),
   sorted for deterministic analysis and report order. *)
let scan_path root =
  let rec walk abs acc =
    match Sys.is_directory abs with
    | exception Sys_error _ -> acc
    | false -> if Filename.check_suffix abs ".ml" then abs :: acc else acc
    | true ->
        if List.mem (Filename.basename abs) skip_dirs then acc
        else
          Array.fold_left
            (fun acc entry -> walk (Filename.concat abs entry) acc)
            acc (Sys.readdir abs)
  in
  List.sort compare (walk root [])

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_file path =
  match Pparse.parse_implementation ~tool_name:"dpkit-flow" path with
  | structure ->
      let src = try read_file path with Sys_error _ -> "" in
      let allows = (Dp_lint.Lexer.scan src).Dp_lint.Lexer.allows in
      Ok
        {
          path;
          modname = modname_of_path path;
          segs = String.split_on_char '/' path;
          structure;
          allows;
        }
  | exception e ->
      let msg =
        match Location.error_of_exn e with
        | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
        | _ -> Printexc.to_string e
      in
      Error (Printf.sprintf "%s: parse error: %s" path (String.trim msg))

(* "./lib/x.ml" and "lib/x.ml" are the same finding site; keep
   reported paths in the latter, exemption-fragment-friendly form *)
let normalize path =
  let rec strip p =
    if String.length p > 2 && String.sub p 0 2 = "./" then
      strip (String.sub p 2 (String.length p - 2))
    else p
  in
  strip path

let load paths =
  let mls = List.map normalize (List.concat_map scan_path paths) in
  let files, errors =
    List.fold_left
      (fun (fs, es) path ->
        match parse_file path with
        | Ok f -> (f :: fs, es)
        | Error msg -> (fs, msg :: es))
      ([], []) mls
  in
  { files = List.rev files; errors = List.rev errors }

let has_seg file s = List.mem s file.segs
