(** Accepted-findings baselines for [dpkit flow].

    A baseline file holds one line per accepted finding —
    [RULE DIGEST FILE  # message-prefix] — where [DIGEST] fingerprints
    the finding's rule, file, message and witness steps but {e not}
    its line numbers, so ordinary drift (code moving within a file)
    does not resurrect accepted findings. Two findings differing only
    by position therefore share a fingerprint and are accepted
    together — a baseline pins defects, not coordinates. *)

type entry = { rule : string; digest : string; file : string }

val fingerprint : Dp_lint.Report.finding -> string
(** Hex digest of [rule|file|message|witness whats]; also exported as
    the SARIF [partialFingerprints] value. *)

val to_string : Dp_lint.Report.finding list -> string
(** Render findings as baseline lines ([--write-baseline]). *)

val parse : string -> entry list
(** Malformed lines are skipped, not errors: a corrupted entry simply
    stops suppressing, and the finding resurfaces. *)

val load : string -> entry list
(** [[]] when the file does not exist — same fail-open-toward-reporting
    direction as {!parse}. *)

val mem : entry list -> Dp_lint.Report.finding -> bool
val filter : entry list -> Dp_lint.Report.finding list -> Dp_lint.Report.finding list
(** [filter b fs] keeps the findings {e not} in the baseline. *)
