(** Interprocedural value-flow (taint) engine shared by F1 and F3. *)

type label =
  | Row  (** derived from raw dataset rows *)
  | Stream of string  (** a PRNG stream owned by the named subsystem *)
  | Param  (** placeholder for "a tainted argument", used in summaries *)

type taint = { label : label; origin : Dp_lint.Report.step list }

type value = taint list

type summary = {
  ret : taint list;
  prop : bool;  (** a tainted argument may flow to the return value *)
  arg_sinks : (string * Location.t * Dp_lint.Report.step list) list;
}

type config = {
  source_of_call :
    caller:Graph.def -> string * string -> Location.t -> label option;
  source_of_field : caller:Graph.def -> string -> label option;
  public_field : string -> bool;
  sanitizes : caller:Graph.def -> Graph.resolved -> bool;
  sink_of_call : caller:Graph.def -> Graph.resolved -> string option;
  declassifies : string * string -> bool;
  on_call :
    caller:Graph.def -> Graph.resolved -> Location.t -> value list -> unit;
  emit : Dp_lint.Report.finding -> unit;
  rule : string;
}

val label_name : label -> string

val run : config -> Graph.t -> (string, summary) Hashtbl.t
(** Fixpoint the summaries over all defs, then replay a reporting pass
    that emits findings through [config.emit] and invokes [on_call]. *)
