(** F2: charge-before-release, path-sensitively.

    A two-point lattice (Charged / Uncharged) is pushed through every
    entry point's body: a {!Spec.chargers} call moves the path to
    Charged, branches join by agreement (a release is only safe if
    {e every} non-diverging arm charged), and calls surface the callee
    summary's release obligations at the caller's state. A release —
    applying a [.run] closure or constructing [Released] — reached on
    an Uncharged path is a finding, with the call chain from the entry
    point as its witness. Supersedes the lexical R2 and R8, which can
    only see a charge token earlier in the same chunk. *)

val findings : Graph.t -> Dp_lint.Report.finding list
