(** Module-qualified symbol table and call graph over parsed files. *)

type def = {
  id : string;  (** "Module.name", nested as "Outer.Inner.name" *)
  modname : string;  (** innermost enclosing module name *)
  name : string;
  file : Loader.file;
  loc : Location.t;
  body : Parsetree.expression;
  sanitizer_attr : bool;  (** carries a [@dp.sanitizer] attribute *)
}

type target = { path : string list; ident : string }

type resolved = Def of def | Ext of target

type t

val build : Loader.file list -> t

val resolve : t -> current:Loader.file -> Longident.t -> resolved
(** Resolve a reference by its last module component ([A.B.f] looks up
    module [B]); unqualified names resolve within the referencing file
    first. Modname collisions prefer same-directory, then
    same-subsystem candidates. *)

val key : resolved -> string * string
(** The (module, ident) of a reference — [("", x)] when unqualified
    and unresolved — independent of whether the target is in-repo. *)

val defs : t -> def list
val callers : t -> def -> (def * Location.t) list
val file_defs : t -> Loader.file -> def list

val line_col : Location.t -> int * int
(** 1-based line, 0-based column of the location's start. *)

val step : ?what:string -> def -> Location.t -> Dp_lint.Report.step
(** A witness step at [loc], attributed to [d]'s file. *)
