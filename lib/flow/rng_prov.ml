(* F3: RNG stream provenance.

   Three checks, generalizing the lexical R9:

   - crossing: a PRNG stream owned by one subsystem (created there, or
     read from a [.rng]/[.jitter] field there) must not be passed into
     another subsystem's functions. Draws (Prng.float & co) and
     mechanism calls consume streams and return data, so they launder.
   - raw copies: [Prng.copy] duplicates generator state; any use
     inside a domain-owning subsystem is a finding (replay of a
     stream's future breaks the mechanisms' independence assumptions).
   - duplicate constant seeds: the same literal seed appearing in
     [Prng.create] calls of two different subsystems couples streams
     that the privacy analysis treats as independent. *)

let domain_of_def (d : Graph.def) = Spec.domain_of_segs d.Graph.file.segs

let target_domain (r : Graph.resolved) =
  if List.mem (fst (Graph.key r)) Spec.neutral_modules then None
  else
    match r with
    | Graph.Def d -> domain_of_def d
    | Graph.Ext _ -> Spec.domain_of_module (fst (Graph.key r))

let sanitizes ~caller:_ (r : Graph.resolved) =
  let m, i = Graph.key r in
  (m = "Prng" && not (List.mem i [ "create"; "split"; "copy" ]))
  || List.mem m Spec.sanitizer_modules
  || List.mem (m, i) Spec.stream_consumers
  ||
  (* declared sanitizers consume their stream argument too: the draw
     happens inside, the stream does not survive into the result *)
  match r with
  | Graph.Def d ->
      d.sanitizer_attr && List.mem (m, i) Spec.sanitizer_allowlist
  | Graph.Ext _ -> false

let crossing_findings graph out =
  let cfg =
    {
      Taint.source_of_call =
        (fun ~caller key _loc ->
          if List.mem key Spec.stream_creators then
            Option.map (fun d -> Taint.Stream d) (domain_of_def caller)
          else None);
      source_of_field =
        (fun ~caller field ->
          if List.mem field Spec.stream_fields then
            Option.map (fun d -> Taint.Stream d) (domain_of_def caller)
          else None);
      public_field = (fun f -> List.mem f Spec.public_fields);
      sanitizes;
      sink_of_call = (fun ~caller:_ _ -> None);
      declassifies = (fun key -> List.mem key Spec.declassifiers);
      on_call =
        (fun ~caller r loc args ->
          match (domain_of_def caller, target_domain r) with
          | None, _ | _, None ->
              (* a caller outside every domain is a composition root —
                 bin/, bench/, tests — and stitching subsystems
                 together is exactly its job *)
              ()
          | Some _, Some tdom ->
              List.iter
                (fun v ->
                  List.iter
                    (fun (t : Taint.taint) ->
                      match t.label with
                      | Taint.Stream sdom when sdom <> tdom ->
                          let line, col = Graph.line_col loc in
                          let tm, ti = Graph.key r in
                          out :=
                            {
                              Dp_lint.Report.rule = "F3";
                              file = caller.Graph.file.path;
                              line;
                              col;
                              message =
                                Printf.sprintf
                                  "%s-owned PRNG stream passed into %s \
                                   subsystem (%s.%s)"
                                  sdom tdom tm ti;
                              witness =
                                t.origin
                                @ [
                                    Graph.step caller loc
                                      ~what:
                                        (Printf.sprintf
                                           "crosses into %s at %s.%s" tdom tm
                                           ti);
                                  ];
                            }
                            :: !out
                      | _ -> ())
                    v)
                args);
      emit = (fun _ -> ());
      rule = "F3";
    }
  in
  ignore (Taint.run cfg graph)

(* syntactic sweeps over every def body *)

let rec is_const (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident op; _ }; _ }, args)
    when List.mem op [ "+"; "-"; "*"; "land"; "lor"; "lxor"; "lsl"; "lsr" ] ->
      List.for_all (fun (_, a) -> is_const a) args
  | _ -> false

let sweep graph out =
  let seeds : (string, (string * Graph.def * Location.t) list) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (d : Graph.def) ->
      let dom = domain_of_def d in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
                -> (
                  let key =
                    Graph.key (Graph.resolve graph ~current:d.file txt)
                  in
                  match key with
                  | "Prng", "copy" when dom <> None ->
                      let line, col = Graph.line_col e.pexp_loc in
                      out :=
                        {
                          Dp_lint.Report.rule = "F3";
                          file = d.file.path;
                          line;
                          col;
                          message =
                            Printf.sprintf
                              "Prng.copy duplicates raw generator state in \
                               %s code — derive an independent stream with \
                               Prng.split instead"
                              (Option.value ~default:"" dom);
                          witness =
                            [
                              Graph.step d e.pexp_loc
                                ~what:
                                  (Printf.sprintf "raw state copy in %s" d.id);
                            ];
                        }
                        :: !out
                  | "Prng", "create" -> (
                      match (args, dom) with
                      | (_, seed) :: _, Some dom when is_const seed ->
                          let c = Pprintast.string_of_expression seed in
                          let prev =
                            Option.value ~default:[]
                              (Hashtbl.find_opt seeds c)
                          in
                          Hashtbl.replace seeds c
                            ((dom, d, e.pexp_loc) :: prev)
                      | _ -> ())
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.expr it d.body)
    (Graph.defs graph);
  (* duplicate constant seeds across distinct domains *)
  Hashtbl.iter
    (fun const sites ->
      let doms = List.sort_uniq compare (List.map (fun (d, _, _) -> d) sites) in
      if List.length doms >= 2 then
        List.iter
          (fun (dom, (d : Graph.def), loc) ->
            let other =
              List.find_opt (fun (d', _, _) -> d' <> dom) sites
            in
            let line, col = Graph.line_col loc in
            out :=
              {
                Dp_lint.Report.rule = "F3";
                file = d.file.path;
                line;
                col;
                message =
                  Printf.sprintf
                    "constant seed %s reused across subsystems (%s%s) — \
                     streams seeded identically are not independent"
                    const dom
                    (match other with
                    | Some (od, odef, _) ->
                        Printf.sprintf " and %s in %s" od odef.Graph.file.path
                    | None -> "");
                witness =
                  List.map
                    (fun (sd, (sdef : Graph.def), sloc) ->
                      Graph.step sdef sloc
                        ~what:(Printf.sprintf "seed %s in %s domain" const sd))
                    (List.rev sites);
              }
              :: !out)
          sites)
    seeds

let findings graph =
  let out = ref [] in
  crossing_findings graph out;
  sweep graph out;
  List.rev !out
