(* F2: charge-before-release dominance.

   A release site is an application of a planner's [.run] closure or a
   construction of a [Released] outcome. On every path from an entry
   point to a release site, a charge (Ledger.spend, a replayed or
   journaled charge, or a deterministic-gate proof) must already have
   executed. The walk threads a two-point lattice (Uncharged/Charged)
   left-to-right through each definition; branches join with AND over
   the arms that can fall through (a diverging arm — failwith, raise —
   does not weaken the join). Function summaries record whether a
   callee establishes a charge and which release sites it can reach
   while still uncharged, so the check is interprocedural: a helper
   that fires [plan.run] is flagged from whichever entry reaches it
   without paying first. *)

type state = Charged | Uncharged

type summary = {
  charges : bool;  (** every fall-through path establishes a charge *)
  releases : (Location.t * Dp_lint.Report.step list) list;
      (** release sites reachable while uncharged, with the step
          chain from this definition's entry *)
}

let empty_summary = { charges = false; releases = [] }

let shape s =
  (s.charges, List.sort compare (List.map fst s.releases))

let add_release rs (loc, steps) =
  if List.mem_assoc loc rs then rs else (loc, steps) :: rs

let is_release_apply (f : Parsetree.expression) =
  match f.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (Longident.flatten txt) with
      | x :: _ -> x = Spec.release_field
      | [] -> false)
  | _ -> false

let last_of_lid lid =
  match List.rev (Longident.flatten lid) with x :: _ -> x | [] -> ""

type ctx = {
  graph : Graph.t;
  summaries : (string, summary) Hashtbl.t;
  mutable acc : (Location.t * Dp_lint.Report.step list) list;
      (** releases of the def being walked *)
}

let summary ctx (d : Graph.def) =
  Option.value ~default:empty_summary (Hashtbl.find_opt ctx.summaries d.id)

(* walk returns (state-after, diverges) *)
let rec walk ctx (d : Graph.def) st (e : Parsetree.expression) : state * bool =
  let loc = e.pexp_loc in
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ },
        [ (_, arg); (_, f) ] ) ->
      let st, div = walk ctx d st arg in
      if div then (st, true) else apply ctx d st ~loc f [ arg ] ~walk_args:false
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "@@"; _ }; _ },
        [ (_, f); (_, arg) ] ) ->
      apply ctx d st ~loc f [ arg ] ~walk_args:true
  | Pexp_apply (f, args) ->
      apply ctx d st ~loc f (List.map snd args) ~walk_args:true
  | Pexp_construct ({ txt; _ }, arg)
    when last_of_lid txt = Spec.release_construct ->
      let st, div =
        match arg with Some a -> walk ctx d st a | None -> (st, false)
      in
      if st = Uncharged then
        ctx.acc <-
          add_release ctx.acc
            ( loc,
              [
                Graph.step d loc
                  ~what:
                    (Printf.sprintf "%s constructed in %s"
                       Spec.release_construct d.id);
              ] );
      (st, div)
  | Pexp_let (_, vbs, body) ->
      let st, div =
        List.fold_left
          (fun (st, div) (vb : Parsetree.value_binding) ->
            if div then (st, div)
            else
              let st, d' = walk ctx d st vb.pvb_expr in
              (st, d'))
          (st, false) vbs
      in
      if div then (st, true) else walk ctx d st body
  | Pexp_sequence (a, b) ->
      let st, div = walk ctx d st a in
      if div then (st, true) else walk ctx d st b
  | Pexp_ifthenelse (c, a, b) -> (
      let st, div = walk ctx d st c in
      if div then (st, true)
      else
        let ra = walk ctx d st a in
        match b with
        | None ->
            (* no else branch falls through uncharged *)
            (st, false)
        | Some b ->
            let rb = walk ctx d st b in
            join st [ ra; rb ])
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let st, div = walk ctx d st scrut in
      if div then (st, true)
      else
        join st
          (List.map
             (fun (c : Parsetree.case) ->
               (match c.pc_guard with
               | Some g -> ignore (walk ctx d st g)
               | None -> ());
               walk ctx d st c.pc_rhs)
             cases)
  | Pexp_letop { let_; ands; body } ->
      let st, div =
        List.fold_left
          (fun (st, div) (b : Parsetree.binding_op) ->
            if div then (st, div) else walk ctx d st b.pbop_exp)
          (st, false) (let_ :: ands)
      in
      if div then (st, true) else walk ctx d st body
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
      (* the closure's body executes when called; analyze it in the
         same charge context (planner closures are built and run
         within one request) *)
      walk ctx d st body
  | Pexp_function cases ->
      join st
        (List.map (fun (c : Parsetree.case) -> walk ctx d st c.pc_rhs) cases)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_lazy e ->
      walk ctx d st e
  | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) ->
      walk ctx d st body
  | Pexp_record (fields, base) ->
      let exprs =
        Option.to_list base @ List.map snd fields
      in
      seq ctx d st exprs
  | Pexp_tuple es | Pexp_array es -> seq ctx d st es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      seq ctx d st (Option.to_list arg)
  | Pexp_field (e, _) -> walk ctx d st e
  | Pexp_setfield (a, _, b) -> seq ctx d st [ a; b ]
  | Pexp_while (c, body) ->
      ignore (walk ctx d st c);
      ignore (walk ctx d st body);
      (st, false)
  | Pexp_for (_, lo, hi, _, body) ->
      ignore (seq ctx d st [ lo; hi ]);
      ignore (walk ctx d st body);
      (st, false)
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
      (st, true)
  | Pexp_assert e ->
      ignore (walk ctx d st e);
      (st, false)
  | _ -> (st, false)

and seq ctx d st exprs =
  List.fold_left
    (fun (st, div) e ->
      if div then (st, div) else walk ctx d st e)
    (st, false) exprs

(* AND-join over fall-through arms: Charged only if every arm that
   can fall through is Charged; all-diverging means we diverge too *)
and join _incoming results =
  let falling = List.filter (fun (_, div) -> not div) results in
  if falling = [] then
    (Uncharged, true)
  else
    ( (if List.for_all (fun (st, _) -> st = Charged) falling then Charged
       else Uncharged),
      false )

and apply ctx d st ~loc f args ~walk_args =
  let st, div =
    if walk_args then
      let fst_st, fdiv =
        match f.pexp_desc with
        | Pexp_ident _ -> (st, false)
        | _ -> walk ctx d st f
      in
      if fdiv then (fst_st, true) else seq ctx d fst_st args
    else (st, false)
  in
  if div then (st, true)
  else if is_release_apply f then begin
    (if st = Uncharged then
       ctx.acc <-
         add_release ctx.acc
           ( loc,
             [
               Graph.step d loc
                 ~what:
                   (Printf.sprintf "planner .%s fired in %s"
                      Spec.release_field d.id);
             ] ));
    (st, false)
  end
  else
    match f.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        let resolved = Graph.resolve ctx.graph ~current:d.file txt in
        let key = Graph.key resolved in
        if List.mem key Spec.chargers then (Charged, false)
        else if List.mem key Spec.diverging then (st, true)
        else
          match resolved with
          | Graph.Def callee when callee.id <> d.id ->
              let s = summary ctx callee in
              (if st = Uncharged then
                 let call_step =
                   Graph.step d loc
                     ~what:
                       (Printf.sprintf "call to %s in %s" callee.id d.id)
                 in
                 List.iter
                   (fun (site, steps) ->
                     ctx.acc <-
                       add_release ctx.acc (site, call_step :: steps))
                   s.releases);
              ((if s.charges then Charged else st), false)
          | _ -> (st, false))
    | _ -> (st, false)

let analyze_def ctx (d : Graph.def) =
  ctx.acc <- [];
  let st, _div = walk ctx d Uncharged d.body in
  { charges = st = Charged; releases = ctx.acc }

let in_scope (f : Dp_lint.Report.finding) =
  let touches path =
    let segs = String.split_on_char '/' path in
    List.exists (fun s -> List.mem s segs) Spec.f2_scope_segs
  in
  touches f.file
  || List.exists (fun (s : Dp_lint.Report.step) -> touches s.s_file) f.witness

let findings graph =
  let ctx = { graph; summaries = Hashtbl.create 256; acc = [] } in
  let defs = Graph.defs graph in
  let changed = ref true and iters = ref 0 in
  while !changed && !iters < 30 do
    changed := false;
    incr iters;
    List.iter
      (fun d ->
        let s' = analyze_def ctx d in
        let s = summary ctx d in
        if shape s <> shape s' then changed := true;
        Hashtbl.replace ctx.summaries d.Graph.id s')
      defs
  done;
  (* findings: release sites reachable uncharged from an entry — a
     def nothing in the analyzed set calls *)
  let entries =
    List.filter (fun d -> Graph.callers graph d = []) defs
  in
  List.concat_map
    (fun (d : Graph.def) ->
      List.filter_map
        (fun ((site : Location.t), steps) ->
          let line, col = Graph.line_col site in
          let file =
            if site.loc_start.pos_fname <> "" then site.loc_start.pos_fname
            else d.file.path
          in
          let f =
            {
              Dp_lint.Report.rule = "F2";
              file;
              line;
              col;
              message =
                Printf.sprintf
                  "answer released without a dominating ledger charge \
                   (uncharged path from %s)"
                  d.id;
              witness = steps;
            }
          in
          if in_scope f then Some f else None)
        (summary ctx d).releases)
    entries
