(** File discovery and compiler-libs parsing for [dpkit flow]. *)

type file = {
  path : string;  (** as reported in findings ('/'-separated) *)
  modname : string;  (** capitalized basename: foo_bar.ml -> Foo_bar *)
  segs : string list;  (** path segments, for subsystem scoping *)
  structure : Parsetree.structure;
  allows : (int * string) list;
      (** [flow:allow RULE] comment suppressions: (line, rule) *)
}

type t = {
  files : file list;
  errors : string list;  (** unparseable files, reported not analyzed *)
}

val load : string list -> t
(** Parse every .ml file under the given paths (directories or single
    files; [_build], [.git], … skipped), in sorted path order. *)

val modname_of_path : string -> string
val has_seg : file -> string -> bool
