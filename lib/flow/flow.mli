(** Interprocedural privacy-dataflow analysis over the repo's OCaml
    sources: F1 row taint, F2 charge-before-release, F3 RNG
    provenance. See docs/ENGINE.md, "Flow analysis". *)

type result = {
  findings : Dp_lint.Report.finding list;
  suppressed : int;  (** dropped by flow:allow comments or exemptions *)
  errors : string list;  (** unparseable files *)
  files : int;
}

val checks : (string * string) list
(** The check catalogue: (id, description) for F1..F3. *)

val analyze : ?exempt:Dp_lint.Config.t -> string list -> result
(** Analyze every .ml under the given paths. Findings are sorted,
    deduped, and already filtered through inline [flow:allow RULE]
    comments and the checked-in exemption file. *)
