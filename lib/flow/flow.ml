(* Top-level driver for [dpkit flow]: load, build the graph, run
   F1/F2/F3, apply inline [flow:allow] suppressions and checked-in
   exemptions, sort and dedup. *)

type result = {
  findings : Dp_lint.Report.finding list;
  suppressed : int;  (** dropped by flow:allow comments or exemptions *)
  errors : string list;  (** unparseable files *)
  files : int;
}

let checks = Spec.checks

let analyze ?(exempt = []) paths =
  let loaded = Loader.load paths in
  let graph = Graph.build loaded.files in
  let allows =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (f : Loader.file) -> Hashtbl.replace tbl f.path f.allows)
      loaded.files;
    fun path -> Option.value ~default:[] (Hashtbl.find_opt tbl path)
  in
  let raw =
    Row_taint.findings graph
    @ Charge.findings graph
    @ Rng_prov.findings graph
  in
  let kept, dropped =
    List.partition
      (fun (f : Dp_lint.Report.finding) ->
        (not (List.mem (f.line, f.rule) (allows f.file)))
        && not (Dp_lint.Config.exempt exempt ~rule:f.rule ~file:f.file))
      raw
  in
  {
    findings =
      Dp_lint.Report.dedup
        (List.sort Dp_lint.Report.compare_findings kept);
    suppressed = List.length dropped;
    errors = loaded.errors;
    files = List.length loaded.files;
  }
