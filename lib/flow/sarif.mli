(** SARIF 2.1.0 rendering of flow findings.

    One run with the F1–F3 rule catalogue; each result carries its
    primary location, a [partialFingerprints] entry
    ([dpkitFlow/v1] = {!Baseline.fingerprint}, so code-scanning
    dedup matches the baseline's notion of identity), and the witness
    path as a [codeFlows]/[threadFlows] chain. *)

val render : Dp_lint.Report.finding list -> string
