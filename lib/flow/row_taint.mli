(** F1: interprocedural row taint.

    Raw dataset values — born at a {!Spec.row_sources} call or a
    {!Spec.row_fields} read — may only reach a reply, journal frame,
    log line, or metrics sink ({!Spec.sinks}) through a DP mechanism
    module or a function on the {!Spec.sanitizer_allowlist} carrying
    the [[@dp.sanitizer]] attribute. A [[@dp.sanitizer]] attribute on
    any other function is itself a finding. *)

val findings : Graph.t -> Dp_lint.Report.finding list
(** All F1 findings over the graph, each with a witness path from the
    taint's birth to the sink. *)
