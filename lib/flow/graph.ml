(* Module-qualified symbol table and call graph.

   Defs are the top-level (and one-level-nested-module) value bindings
   of every parsed file; calls are resolved by the last module
   component of the applied path, which matches how this codebase
   addresses symbols through its wrapped libraries
   (Dp_engine.Ledger.spend resolves to lib/engine/ledger.ml's spend
   whether the caller wrote the full path or opened Dp_engine). *)

type def = {
  id : string;  (** "Module.name", nested as "Outer.Inner.name" *)
  modname : string;  (** innermost enclosing module name *)
  name : string;
  file : Loader.file;
  loc : Location.t;
  body : Parsetree.expression;
  sanitizer_attr : bool;  (** carries a [@dp.sanitizer] attribute *)
}

type target = { path : string list; ident : string }

type resolved = Def of def | Ext of target

type t = {
  defs : def list;
  table : (string * string, def list) Hashtbl.t;
      (** (modname, name) -> candidate defs *)
  by_file : (string * string, def list) Hashtbl.t;
      (** (file path, name) -> defs, for unqualified same-file calls *)
  callers : (string, (def * Location.t) list) Hashtbl.t;
      (** def.id -> in-repo reference sites *)
}

let has_sanitizer_attr attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = "dp.sanitizer")
    attrs

let pat_name (p : Parsetree.pattern) =
  let rec go (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some (txt, p.ppat_loc)
    | Ppat_constraint (p', _) -> go p'
    | _ -> None
  in
  go p

let defs_of_file (file : Loader.file) =
  let out = ref [] in
  let rec structure ~prefix ~modname (items : Parsetree.structure) =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match pat_name vb.pvb_pat with
                | None -> ()
                | Some (name, loc) ->
                    out :=
                      {
                        id = prefix ^ "." ^ name;
                        modname;
                        name;
                        file;
                        loc;
                        body = vb.pvb_expr;
                        sanitizer_attr = has_sanitizer_attr vb.pvb_attributes;
                      }
                      :: !out)
              vbs
        | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
            match pmb_expr.pmod_desc with
            | Pmod_structure items ->
                structure ~prefix:(prefix ^ "." ^ sub) ~modname:sub items
            | _ -> ())
        | _ -> ())
      items
  in
  structure ~prefix:file.modname ~modname:file.modname file.structure;
  List.rev !out

(* Disambiguate modname collisions (two files, one basename) by
   closeness to the caller: same directory, then same lib/SUBSYSTEM,
   then anything. *)
let rank ~(current : Loader.file) (d : def) =
  if Filename.dirname d.file.path = Filename.dirname current.path then 0
  else
    let top segs = match segs with a :: b :: _ -> Some (a, b) | _ -> None in
    if top d.file.segs = top current.segs then 1 else 2

let resolve t ~(current : Loader.file) (lid : Longident.t) =
  let parts = Longident.flatten lid in
  match List.rev parts with
  | [] -> Ext { path = []; ident = "" }
  | ident :: rev_mods -> (
      let mods = List.rev rev_mods in
      let pick candidates =
        match
          List.sort
            (fun a b -> compare (rank ~current a) (rank ~current b))
            candidates
        with
        | d :: _ -> Some d
        | [] -> None
      in
      let lookup key = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
      match mods with
      | [] -> (
          (* unqualified: same file first (nested modules included) *)
          match Hashtbl.find_opt t.by_file (current.path, ident) with
          | Some (d :: _) -> Def d
          | _ -> (
              match pick (lookup (current.modname, ident)) with
              | Some d -> Def d
              | None -> Ext { path = []; ident }))
      | _ -> (
          let last_mod = List.nth mods (List.length mods - 1) in
          match pick (lookup (last_mod, ident)) with
          | Some d -> Def d
          | None -> Ext { path = mods; ident }))

(* The (module, ident) key of a resolved reference — the uniform
   shape the analysis specs match on, independent of whether the
   target's source is in the analyzed set. *)
let key = function
  | Def d -> (d.modname, d.name)
  | Ext { path; ident } -> (
      match List.rev path with
      | [] -> ("", ident)
      | m :: _ -> (m, ident))

let build (files : Loader.file list) =
  let defs = List.concat_map defs_of_file files in
  let table = Hashtbl.create 512 and by_file = Hashtbl.create 512 in
  let push tbl key d =
    Hashtbl.replace tbl key (Option.value ~default:[] (Hashtbl.find_opt tbl key) @ [ d ])
  in
  List.iter
    (fun d ->
      push table (d.modname, d.name) d;
      push by_file (d.file.path, d.name) d)
    defs;
  let t = { defs; table; by_file; callers = Hashtbl.create 512 } in
  (* reference pass: every ident that resolves to a def is a call
     site (callbacks count — a referenced function can run) *)
  List.iter
    (fun (d : def) ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; _ } -> (
                  match resolve t ~current:d.file txt with
                  | Def callee when callee.id <> d.id ->
                      push t.callers callee.id (d, e.pexp_loc)
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.expr it d.body)
    defs;
  t

let defs t = t.defs

let callers t (d : def) =
  Option.value ~default:[] (Hashtbl.find_opt t.callers d.id)

let file_defs t (file : Loader.file) =
  List.filter (fun d -> d.file.path = file.path) t.defs

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let step ?(what = "") (d : def) (loc : Location.t) =
  let line, col = line_col loc in
  let file =
    let fname = loc.loc_start.pos_fname in
    if fname <> "" then fname else d.file.path
  in
  { Dp_lint.Report.s_file = file; s_line = line; s_col = col; s_what = what }
