(* Finding baselines.

   A baseline file records accepted findings by a stable fingerprint —
   rule, file, message, and the witness step descriptions, but no line
   numbers — so unrelated edits that shift code do not invalidate it,
   while any change to the actual flow (new path, new sink, new
   message) produces a fresh, non-baselined fingerprint.

   File format, one finding per line:

     RULE FINGERPRINT FILE  # first words of the message

   Everything after '#' is a comment for humans; blank lines and lines
   starting with '#' are skipped. *)

type entry = { rule : string; digest : string; file : string }

let fingerprint (f : Dp_lint.Report.finding) =
  let whats =
    String.concat "\x00"
      (List.map (fun (s : Dp_lint.Report.step) -> s.s_what) f.witness)
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x01" [ f.rule; f.file; f.message; whats ]))

let to_line (f : Dp_lint.Report.finding) =
  let prefix =
    let words = String.split_on_char ' ' f.message in
    let rec take n = function
      | x :: tl when n > 0 -> x :: take (n - 1) tl
      | _ -> []
    in
    String.concat " " (take 6 words)
  in
  Printf.sprintf "%s %s %s  # %s" f.rule (fingerprint f) f.file prefix

let to_string findings =
  String.concat ""
    (List.map (fun f -> to_line f ^ "\n") findings)

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  with
  | [ rule; digest; file ] -> Some { rule; digest; file }
  | _ -> None

let parse src =
  List.filter_map parse_line (String.split_on_char '\n' src)

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      parse s

let mem baseline (f : Dp_lint.Report.finding) =
  let d = fingerprint f in
  List.exists (fun e -> e.rule = f.rule && e.digest = d) baseline

let filter baseline findings =
  List.filter (fun f -> not (mem baseline f)) findings
