(* Interprocedural value-flow engine.

   Expression-level taint propagation inside each definition, function
   summaries across definitions, iterated to a fixpoint over the call
   graph. Both F1 (row taint) and F3 (RNG stream provenance)
   instantiate this engine with their own source/sanitizer/sink
   catalogues; the machinery — let/match/record/closure propagation,
   summaries with argument-to-sink obligations, witness paths — is
   shared.

   The abstraction is value-shaped, not heap-shaped: mutation through
   refs and mutable record fields is not tracked (a taint stored with
   [<-] or [:=] and read back elsewhere is dropped). That loses buffer
   plumbing but keeps the false-positive rate near zero on the real
   tree, and the sink catalogue compensates by treating buffer/channel
   writes themselves as sinks. *)

module Env = Map.Make (String)

type label = Row | Stream of string | Param

type taint = { label : label; origin : Dp_lint.Report.step list }

type value = taint list
(* small sets: dedup by label, first origin wins *)

let label_name = function
  | Row -> "row-tainted"
  | Stream d -> Printf.sprintf "%s-owned stream" d
  | Param -> "argument"

let add v t = if List.exists (fun x -> x.label = t.label) v then v else t :: v
let union a b = List.fold_left add a b
let unions vs = List.fold_left union [] vs
let strip_param v = List.filter (fun t -> t.label <> Param) v
let has_param v = List.exists (fun t -> t.label = Param) v

(* witness paths stay readable: cap the chain, keep both ends *)
let max_witness = 12

let extend t step =
  let origin =
    if List.length t.origin >= max_witness then t.origin
    else t.origin @ [ step ]
  in
  { t with origin }

type summary = {
  ret : taint list;  (** return-value taints independent of arguments *)
  prop : bool;  (** a tainted argument may flow to the return value *)
  arg_sinks : (string * Location.t * Dp_lint.Report.step list) list;
      (** (sink, site, steps): a tainted argument reaches [sink] *)
}

let empty_summary = { ret = []; prop = false; arg_sinks = [] }

(* Convergence is checked on the summary's shape — label sets,
   propagation bit, (sink, site) set — not on witness steps, which
   may differ between iterations without changing the verdict. *)
let shape s =
  ( List.sort compare (List.map (fun t -> t.label) s.ret),
    s.prop,
    List.sort compare (List.map (fun (k, l, _) -> (k, l)) s.arg_sinks) )

type config = {
  source_of_call :
    caller:Graph.def -> string * string -> Location.t -> label option;
      (** calls whose result is born tainted, keyed by (module, ident) *)
  source_of_field : caller:Graph.def -> string -> label option;
      (** record fields whose read is a source (e.g. [.values]) *)
  public_field : string -> bool;
      (** record fields whose projection declassifies (public
          metadata: row counts, charged epsilons) *)
  sanitizes : caller:Graph.def -> Graph.resolved -> bool;
      (** calls that consume tainted arguments and launder the result *)
  sink_of_call : caller:Graph.def -> Graph.resolved -> string option;
      (** calls whose arguments must not be tainted *)
  declassifies : string * string -> bool;
      (** calls whose result is public whatever the arguments
          (cardinalities: Array.length & co) *)
  on_call :
    caller:Graph.def -> Graph.resolved -> Location.t -> value list -> unit;
      (** per-call-site hook for instantiation-specific checks (F3's
          cross-domain ownership); only invoked in the reporting pass *)
  emit : Dp_lint.Report.finding -> unit;
      (** receives every finding; scope filtering and suppression
          live in the instantiation *)
  rule : string;
}

type state = {
  cfg : config;
  graph : Graph.t;
  summaries : (string, summary) Hashtbl.t;
  mutable reporting : bool;  (** false: summary pass; true: emit pass *)
  mutable changed : bool;
}

let summary st (d : Graph.def) =
  Option.value ~default:empty_summary (Hashtbl.find_opt st.summaries d.id)

let pat_vars (p : Parsetree.pattern) =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              out := txt :: !out
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it p;
  !out

let bind_pat env p v =
  List.fold_left (fun env x -> Env.add x v env) env (pat_vars p)

let last_of_lid lid =
  match List.rev (Longident.flatten lid) with x :: _ -> x | [] -> ""

(* Walking one definition: returns the value of the body and records
   (via [acc]) the argument-to-sink obligations discovered. *)
type walk_acc = {
  mutable sinks : (string * Location.t * Dp_lint.Report.step list) list;
}

let rec walk st (d : Graph.def) acc env (e : Parsetree.expression) : value =
  let loc = e.pexp_loc in
  let recur = walk st d acc in
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } when Env.mem x env -> Env.find x env
  | Pexp_ident { txt; _ } -> (
      match Graph.resolve st.graph ~current:d.file txt with
      | Graph.Def callee when callee.id <> d.id ->
          (* bare reference (callback): carries the callee's return
             taints — a tainted thunk is a tainted value *)
          List.map
            (fun t ->
              extend t
                (Graph.step d loc
                   ~what:(Printf.sprintf "via %s" callee.id)))
            (summary st callee).ret
      | _ -> [])
  | Pexp_constant _ -> []
  | Pexp_let (_, vbs, body) ->
      let env =
        List.fold_left
          (fun env' (vb : Parsetree.value_binding) ->
            bind_pat env' vb.pvb_pat (recur env vb.pvb_expr))
          env vbs
      in
      walk st d acc env body
  | Pexp_fun (_, default, pat, body) ->
      Option.iter (fun e -> ignore (recur env e)) default;
      (* parameters of an inner lambda are untracked (the engine's
         argument tracking is per-definition); the closure's value is
         its body's value — a closure over a tainted capture is
         tainted *)
      walk st d acc (bind_pat env pat []) body
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ },
        [ (_, arg); (_, f) ] ) ->
      apply st d acc env ~loc f [ arg ]
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "@@"; _ }; _ },
        [ (_, f); (_, arg) ] ) ->
      apply st d acc env ~loc f [ arg ]
  | Pexp_apply (f, args) -> apply st d acc env ~loc f (List.map snd args)
  | Pexp_field (r, { txt; _ }) when st.cfg.public_field (last_of_lid txt) ->
      ignore (recur env r);
      []
  | Pexp_field (r, { txt; _ }) -> (
      let base = recur env r in
      let field = last_of_lid txt in
      match st.cfg.source_of_field ~caller:d field with
      | Some label ->
          add base
            {
              label;
              origin =
                [
                  Graph.step d loc
                    ~what:
                      (Printf.sprintf "%s: .%s read in %s" (label_name label)
                         field d.id);
                ];
            }
      | None -> base)
  | Pexp_record (fields, base) ->
      unions
        (Option.to_list (Option.map (recur env) base)
        @ List.map (fun (_, e) -> recur env e) fields)
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      unions (List.map (recur env) (Option.to_list arg))
  | Pexp_tuple es | Pexp_array es -> unions (List.map (recur env) es)
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let sv = recur env scrut in
      unions
        (List.map
           (fun (c : Parsetree.case) ->
             let env = bind_pat env c.pc_lhs sv in
             Option.iter (fun g -> ignore (walk st d acc env g)) c.pc_guard;
             walk st d acc env c.pc_rhs)
           cases)
  | Pexp_ifthenelse (c, a, b) ->
      ignore (recur env c);
      unions (recur env a :: List.map (recur env) (Option.to_list b))
  | Pexp_sequence (a, b) ->
      ignore (recur env a);
      recur env b
  | Pexp_while (c, body) ->
      ignore (recur env c);
      ignore (recur env body);
      []
  | Pexp_for (pat, lo, hi, _, body) ->
      ignore (recur env lo);
      ignore (recur env hi);
      ignore (walk st d acc (bind_pat env pat []) body);
      []
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_lazy e
  | Pexp_newtype (_, e) | Pexp_open (_, e) ->
      recur env e
  | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) ->
      recur env body
  | Pexp_setfield (r, _, v) ->
      ignore (recur env r);
      ignore (recur env v);
      []
  | Pexp_assert e ->
      ignore (recur env e);
      []
  | Pexp_letop { let_; ands; body } ->
      (* monadic binds (protocol's let-star): bind the pattern to the
         bound expression's value; the operator itself is opaque *)
      let env =
        List.fold_left
          (fun env' (b : Parsetree.binding_op) ->
            bind_pat env' b.pbop_pat (recur env b.pbop_exp))
          env (let_ :: ands)
      in
      walk st d acc env body
  | Pexp_function cases ->
      unions
        (List.map
           (fun (c : Parsetree.case) ->
             let env = bind_pat env c.pc_lhs [] in
             walk st d acc env c.pc_rhs)
           cases)
  | _ -> []

and apply st (d : Graph.def) acc env ~loc f args =
  let arg_vals = List.map (walk st d acc env) args in
  match f.pexp_desc with
  | Pexp_ident { txt; _ } when not (Env.mem (last_of_lid txt) env && Longident.flatten txt |> List.length = 1) -> (
      let resolved = Graph.resolve st.graph ~current:d.file txt in
      let key = Graph.key resolved in
      if st.reporting then st.cfg.on_call ~caller:d resolved loc arg_vals;
      if st.cfg.declassifies key then []
      else
        match st.cfg.source_of_call ~caller:d key loc with
        | Some label ->
            [
              {
                label;
                origin =
                  [
                    Graph.step d loc
                      ~what:
                        (Printf.sprintf "%s born at %s.%s in %s"
                           (label_name label) (fst key) (snd key) d.id);
                  ];
              };
            ]
        | None ->
            if st.cfg.sanitizes ~caller:d resolved then []
            else (
              (match st.cfg.sink_of_call ~caller:d resolved with
              | Some sink ->
                  List.iteri
                    (fun i v ->
                      List.iter (fun t -> sink_hit st d acc ~sink ~loc ~arg:i t) v)
                    arg_vals
              | None -> ());
              match resolved with
              | Graph.Def callee when callee.id <> d.id ->
                  let s = summary st callee in
                  let call_step =
                    Graph.step d loc
                      ~what:(Printf.sprintf "call to %s in %s" callee.id d.id)
                  in
                  (* a tainted argument meeting the callee's recorded
                     argument-to-sink obligation is a finding (or a new
                     obligation, when the argument is our own) *)
                  if s.arg_sinks <> [] then
                    List.iter
                      (fun v ->
                        List.iter
                          (fun t ->
                            List.iter
                              (fun (sink, site, steps) ->
                                let chained =
                                  { t with origin = t.origin @ (call_step :: steps) }
                                in
                                sink_hit st d acc ~sink ~loc:site ~arg:0 chained)
                              s.arg_sinks)
                          v)
                      arg_vals;
                  let ret = List.map (fun t -> extend t call_step) s.ret in
                  if s.prop then
                    union ret
                      (List.map (fun t -> extend t call_step) (unions arg_vals))
                  else ret
              | _ ->
                  (* unknown external: conservative propagation *)
                  unions arg_vals))
  | _ ->
      (* computed callee (closure from the environment, field
         application): result carries the callee's and arguments'
         taints *)
      let fv = walk st d acc env f in
      unions (fv :: arg_vals)

and sink_hit st (d : Graph.def) acc ~sink ~loc ~arg:_ (t : taint) =
  match t.label with
  | Param ->
      (* obligation, discharged at call sites with tainted arguments *)
      if
        not
          (List.exists (fun (s, l, _) -> s = sink && l = loc) acc.sinks)
      then acc.sinks <- (sink, loc, t.origin) :: acc.sinks
  | Row | Stream _ ->
      if st.reporting then (
        let line, col = Graph.line_col loc in
        (* chained obligations carry the callee's sink location: trust
           the location's own filename when it has one *)
        let file =
          let fname = loc.Location.loc_start.pos_fname in
          if fname <> "" then fname else d.file.path
        in
        let witness =
          t.origin
          @ [ Graph.step d loc ~what:(Printf.sprintf "reaches %s" sink) ]
        in
        st.cfg.emit
          {
            Dp_lint.Report.rule = st.cfg.rule;
            file;
            line;
            col;
            message =
              Printf.sprintf "%s value reaches %s in %s" (label_name t.label)
                sink d.id;
            witness;
          })

(* One definition's summary from one walk. *)
let analyze_def st (d : Graph.def) =
  let acc = { sinks = [] } in
  (* unwrap the leading fun chain: those are the definition's tracked
     parameters *)
  let rec unwrap env (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, pat, body) ->
        unwrap
          (bind_pat env pat
             [ { label = Param; origin = [ Graph.step d pat.ppat_loc ~what:(Printf.sprintf "argument of %s" d.id) ] } ])
          body
    | _ -> (env, e)
  in
  let env, core = unwrap Env.empty d.body in
  let v = walk st d acc env core in
  { ret = strip_param v; prop = has_param v; arg_sinks = acc.sinks }

let run cfg graph =
  let st =
    { cfg; graph; summaries = Hashtbl.create 512; reporting = false; changed = true }
  in
  let defs = Graph.defs graph in
  let iterations = ref 0 in
  while st.changed && !iterations < 30 do
    st.changed <- false;
    incr iterations;
    List.iter
      (fun d ->
        let s' = analyze_def st d in
        let s = summary st d in
        if shape s <> shape s' then begin
          Hashtbl.replace st.summaries d.Graph.id s';
          st.changed <- true
        end
        else Hashtbl.replace st.summaries d.Graph.id s')
      defs
  done;
  (* reporting pass: same walk, sinks now emit *)
  st.reporting <- true;
  List.iter (fun d -> ignore (analyze_def st d)) defs;
  st.summaries
