(** F3: PRNG stream provenance.

    Three checks generalizing the lexical R9:
    - {b crossing}: a stream owned by one subsystem (created there, or
      read from a [.rng]/[.jitter] field there) must not be passed into
      another subsystem's functions by domain code — composition roots
      outside every domain (bin/, bench/, tests) may stitch subsystems
      together, that being their job;
    - {b raw copies}: [Prng.copy] duplicates generator state, so any
      use inside a domain-owning subsystem replays a stream's future
      and breaks the mechanisms' independence assumptions;
    - {b duplicate constant seeds}: the same literal seed in
      [Prng.create] calls of two subsystems couples streams the
      privacy analysis treats as independent. *)

val findings : Graph.t -> Dp_lint.Report.finding list
