(* F1: row taint.

   Values born from raw dataset rows (Registry.column payloads,
   Dataset rows, feature/label arrays) may only reach an output —
   protocol reply, journal frame, log line, metrics sink — through a
   DP mechanism call or a function explicitly declared (and
   allowlisted) as a sanitizer. Cardinalities are public metadata in
   this design, so lengths declassify. *)

let scope_ok (f : Dp_lint.Report.finding) =
  let touches path =
    let segs = String.split_on_char '/' path in
    List.exists (fun s -> List.mem s segs) Spec.f1_scope_segs
  in
  touches f.file
  || List.exists (fun (s : Dp_lint.Report.step) -> touches s.s_file) f.witness

let allowlisted (d : Graph.def) =
  List.mem (d.Graph.modname, d.Graph.name) Spec.sanitizer_allowlist

let sanitizes ~caller:_ (r : Graph.resolved) =
  let m, i = Graph.key r in
  List.mem m Spec.sanitizer_modules
  ||
  match r with
  | Graph.Def d -> d.sanitizer_attr && allowlisted d
  | Graph.Ext _ -> List.mem (m, i) Spec.sanitizer_allowlist

let findings graph =
  let out = ref [] in
  let cfg =
    {
      Taint.source_of_call =
        (fun ~caller:_ key _loc ->
          if List.mem key Spec.row_sources then Some Taint.Row else None);
      source_of_field =
        (fun ~caller:_ field ->
          if List.mem field Spec.row_fields then Some Taint.Row else None);
      public_field = (fun f -> List.mem f Spec.public_fields);
      sanitizes;
      sink_of_call =
        (fun ~caller:_ r ->
          Option.map Spec.sink_kind_name
            (List.assoc_opt (Graph.key r) Spec.sinks));
      declassifies = (fun key -> List.mem key Spec.declassifiers);
      on_call = (fun ~caller:_ _ _ _ -> ());
      emit =
        (fun f -> if scope_ok f then out := f :: !out);
      rule = "F1";
    }
  in
  ignore (Taint.run cfg graph);
  (* a [@dp.sanitizer] annotation outside the allowlist is itself a
     finding: laundering must not be introducible by a stray
     attribute *)
  let stray =
    List.filter_map
      (fun (d : Graph.def) ->
        if d.sanitizer_attr && not (allowlisted d) then (
          let line, col = Graph.line_col d.loc in
          Some
            {
              Dp_lint.Report.rule = "F1";
              file = d.file.path;
              line;
              col;
              message =
                Printf.sprintf
                  "[@dp.sanitizer] on %s is not in the sanitizer allowlist \
                   (lib/flow/spec.ml)"
                  d.id;
              witness = [];
            })
        else None)
      (Graph.defs graph)
  in
  List.rev !out @ stray
