open Dp_dataset

let fit ~lambda d =
  let lambda = Dp_math.Numeric.check_pos "Ridge.fit lambda" lambda in
  let n = Dataset.size d in
  let x = Dp_linalg.Mat.of_arrays d.Dataset.features in
  let gram = Dp_linalg.Mat.gram x in
  let a = Dp_linalg.Mat.add_diagonal (float_of_int n *. lambda) gram in
  let b = Dp_linalg.Mat.tmul_vec x d.Dataset.labels in
  Dp_linalg.Decomp.solve_spd a b

let fit_output_perturbed ~epsilon ~lambda d g =
  let epsilon = Dp_math.Numeric.check_pos "Ridge.fit_output_perturbed epsilon" epsilon in
  let theta = fit ~lambda d in
  let n = float_of_int (Dataset.size d) in
  (* Lipschitz constant 2 for the squared loss on clipped data over the
     solution ball (see mli); sensitivity 2*2/(n lambda). *)
  let scale = 4. /. (n *. lambda *. epsilon) in
  let noise = Dp_rng.Sampler.laplace_vector_l2 ~dim:(Dataset.dim d) ~scale g in
  Dp_linalg.Vec.add theta noise

let fit_gibbs ?mcmc_config ~epsilon ~radius d g =
  (Private_erm.gibbs ?mcmc_config ~epsilon ~radius ~loss:Loss_fn.squared d g)
    .Private_erm.theta
