open Dp_math

let exact ~q xs = Dp_stats.Describe.quantile xs q

let rank_error ~q ~estimate xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.rank_error: empty data";
  let rank = Array.fold_left (fun acc x -> if x <= estimate then acc + 1 else acc) 0 xs in
  abs (rank - int_of_float (Float.round (q *. float_of_int n)))

(* exponential mechanism over rank utility, implemented inline: a
   declared dataflow sanitizer (see lib/flow/spec.ml allowlist) *)
let[@dp.sanitizer] estimate ~epsilon ~q ~lo ~hi xs g =
  let epsilon = Numeric.check_pos "Quantile.estimate epsilon" epsilon in
  let q = Numeric.check_prob "Quantile.estimate q" q in
  if lo >= hi then invalid_arg "Quantile.estimate: lo >= hi";
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.estimate: empty data";
  (* clamp and sort; the quality is constant on each gap between
     consecutive order statistics (including the [lo, x_(1)] and
     [x_(n), hi] end gaps). *)
  let sorted = Array.map (Numeric.clamp ~lo ~hi) xs in
  Array.sort compare sorted;
  let target = q *. float_of_int n in
  (* paper normalization: weight exp(exponent * quality), privacy
     2*exponent*dq with dq = 1 -> exponent = eps/2. *)
  let exponent = epsilon /. 2. in
  (* gap k in [0, n]: outputs x with exactly k data points <= x;
     quality -(|k - target|); measure = gap length. *)
  let boundaries =
    Array.init (n + 2) (fun i ->
        if i = 0 then lo else if i = n + 1 then hi else sorted.(i - 1))
  in
  let log_weights =
    Array.init (n + 1) (fun k ->
        let len = boundaries.(k + 1) -. boundaries.(k) in
        if len <= 0. then neg_infinity
        else
          (-.exponent *. Float.abs (float_of_int k -. target)) +. log len)
  in
  let k = Dp_rng.Sampler.categorical_log ~log_weights g in
  Dp_rng.Sampler.uniform ~lo:boundaries.(k) ~hi:boundaries.(k + 1) g
