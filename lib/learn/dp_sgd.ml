open Dp_dataset
open Dp_math

type result = {
  theta : float array;
  budget : Dp_mechanism.Privacy.budget;
  steps : int;
}

let epsilon_for ~noise_multiplier ~epochs ~delta =
  Dp_mechanism.Rdp.gaussian_sgm_epsilon ~noise_multiplier ~steps:epochs ~delta

let train ?(epochs = 10) ?(batch_size = 50) ?(learning_rate = 0.5)
    ?(clip_norm = 1.) ~noise_multiplier ~delta ~loss d g =
  if epochs <= 0 then invalid_arg "Dp_sgd.train: epochs must be positive";
  if batch_size <= 0 then invalid_arg "Dp_sgd.train: batch_size must be positive";
  let learning_rate = Numeric.check_pos "Dp_sgd.train learning_rate" learning_rate in
  let clip_norm = Numeric.check_pos "Dp_sgd.train clip_norm" clip_norm in
  let noise_multiplier =
    Numeric.check_pos "Dp_sgd.train noise_multiplier" noise_multiplier
  in
  if delta <= 0. || delta >= 1. then
    invalid_arg "Dp_sgd.train: delta must be in (0, 1)";
  let n = Dataset.size d in
  let batch_size = Stdlib.min batch_size n in
  let dim = Dataset.dim d in
  let theta = ref (Array.make dim 0.) in
  let order = Array.init n Fun.id in
  let steps = ref 0 in
  (* per-step noise on the SUM of clipped gradients: sensitivity 2C *)
  let noise_std = noise_multiplier *. 2. *. clip_norm in
  for epoch = 1 to epochs do
    Dp_rng.Sampler.shuffle order g;
    let pos = ref 0 in
    while !pos < n do
      let b = Stdlib.min batch_size (n - !pos) in
      let acc = Array.make dim 0. in
      for k = 0 to b - 1 do
        let x, y = Dataset.row d order.(!pos + k) in
        let gr = loss.Loss_fn.grad ~theta:!theta ~x ~y in
        let clipped = Dp_linalg.Vec.project_l2_ball ~radius:clip_norm gr in
        Dp_linalg.Vec.axpy_inplace ~alpha:1. clipped acc
      done;
      let noisy =
        Array.map
          (fun v -> v +. Dp_rng.Sampler.gaussian ~mean:0. ~std:noise_std g)
          acc
      in
      incr steps;
      let eta = learning_rate /. sqrt (float_of_int epoch) in
      theta :=
        Dp_linalg.Vec.axpy ~alpha:(-.eta /. float_of_int b) noisy !theta;
      pos := !pos + b
    done
  done;
  let epsilon = epsilon_for ~noise_multiplier ~epochs ~delta in
  {
    theta = !theta;
    budget = Dp_mechanism.Privacy.approx ~epsilon ~delta;
    steps = !steps;
  }
