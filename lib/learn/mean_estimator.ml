open Dp_math

let non_private ~lo ~hi xs =
  if Array.length xs = 0 then invalid_arg "Mean_estimator: empty data";
  if lo >= hi then invalid_arg "Mean_estimator: requires lo < hi";
  Summation.mean (Array.map (Numeric.clamp ~lo ~hi) xs)

let laplace ~epsilon ~lo ~hi xs g =
  let epsilon = Numeric.check_pos "Mean_estimator.laplace epsilon" epsilon in
  let value = non_private ~lo ~hi xs in
  let sens =
    Dp_mechanism.Sensitivity.bounded_mean ~lo ~hi ~n:(Array.length xs)
  in
  let m = Dp_mechanism.Laplace.create ~sensitivity:sens ~epsilon in
  Dp_mechanism.Laplace.release m ~value g

let expected_absolute_error ~epsilon ~lo ~hi ~n =
  let epsilon = Numeric.check_pos "Mean_estimator.expected_absolute_error" epsilon in
  if n <= 0 then invalid_arg "Mean_estimator.expected_absolute_error: n <= 0";
  if lo >= hi then invalid_arg "Mean_estimator.expected_absolute_error: lo >= hi";
  (hi -. lo) /. (float_of_int n *. epsilon)
