(** Linear support vector machine — the second concrete task the paper
    cites from Chaudhuri et al. (refs 5, 6). L2-regularized hinge-loss
    ERM by projected subgradient descent, with the same three private
    release routes as logistic regression. The hinge loss is not
    smooth, so objective perturbation does not apply (the library
    refuses it); output perturbation and the Gibbs sampler do. *)

type model = { theta : float array; margin_violations : int }

val train : ?lambda:float -> ?epochs:int -> Dp_dataset.Dataset.t -> Dp_rng.Prng.t -> model
(** Pegasos-style SGD on the regularized hinge objective. [lambda]
    defaults to 1e-3, [epochs] to 40.
    @raise Invalid_argument for non-positive lambda/epochs. *)

val train_private_output :
  epsilon:float ->
  ?lambda:float ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  float array * Dp_mechanism.Privacy.budget
(** Output perturbation on the (batch) hinge ERM solution (hinge is
    1-Lipschitz, so the Chaudhuri sensitivity [2/(nλ)] applies). *)

val train_private_gibbs :
  ?mcmc_config:Dp_pac_bayes.Mcmc.config ->
  epsilon:float ->
  radius:float ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  float array * Dp_mechanism.Privacy.budget
(** One draw from the Gibbs posterior on the clipped hinge loss. *)

val accuracy : float array -> Dp_dataset.Dataset.t -> float
