open Dp_dataset

type model = { theta : float array; margin_violations : int }

let train ?(lambda = 1e-3) ?(epochs = 40) d g =
  let lambda = Dp_math.Numeric.check_pos "Svm.train lambda" lambda in
  if epochs <= 0 then invalid_arg "Svm.train: epochs must be positive";
  let n = Dataset.size d in
  let grad_at i theta =
    let x, y = Dataset.row d i in
    let hinge_grad = Loss_fn.hinge.Loss_fn.grad ~theta ~x ~y in
    Dp_linalg.Vec.axpy ~alpha:lambda theta hinge_grad
  in
  (* Pegasos ball: the optimum satisfies ||theta|| <= 1/sqrt(lambda). *)
  let project = Dp_linalg.Vec.project_l2_ball ~radius:(1. /. sqrt lambda) in
  let theta =
    Dp_optim.Sgd.minimize ~epochs
      ~schedule:(Dp_optim.Sgd.Inv_t (1. /. lambda))
      ~project ~n ~grad_at
      (Array.make (Dataset.dim d) 0.)
      g
  in
  let violations = ref 0 in
  for i = 0 to n - 1 do
    let x, y = Dataset.row d i in
    if y *. Dp_linalg.Vec.dot theta x < 1. then incr violations
  done;
  { theta; margin_violations = !violations }

let train_private_output ~epsilon ?(lambda = 1e-3) d g =
  let m =
    Private_erm.output_perturbation ~epsilon ~lambda ~loss:Loss_fn.hinge d g
  in
  (m.Private_erm.theta, m.Private_erm.budget)

let train_private_gibbs ?mcmc_config ~epsilon ~radius d g =
  let m = Private_erm.gibbs ?mcmc_config ~epsilon ~radius ~loss:Loss_fn.hinge d g in
  (m.Private_erm.theta, m.Private_erm.budget)

let accuracy = Erm.accuracy
