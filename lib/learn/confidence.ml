open Dp_math

type interval = { estimate : float; lo : float; hi : float }

let laplace_noise_quantile ~scale ~p =
  let scale = Numeric.check_nonneg "Confidence.laplace_noise_quantile scale" scale in
  if p < 0. || p >= 1. then
    invalid_arg "Confidence.laplace_noise_quantile: p must be in [0,1)";
  -.scale *. Float.log1p (-.p)

let private_mean_ci ~epsilon ~confidence ~lo ~hi xs g =
  let epsilon = Numeric.check_pos "Confidence.private_mean_ci epsilon" epsilon in
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Confidence.private_mean_ci: confidence must be in (0,1)";
  if lo >= hi then invalid_arg "Confidence.private_mean_ci: lo >= hi";
  let n = Array.length xs in
  if n = 0 then invalid_arg "Confidence.private_mean_ci: empty data";
  let nf = float_of_int n in
  let clamped = Array.map (Numeric.clamp ~lo ~hi) xs in
  (* budget split: mean 0.8 eps, second moment 0.2 eps *)
  let eps_mean = 0.8 *. epsilon and eps_var = 0.2 *. epsilon in
  let mean_scale = (hi -. lo) /. (nf *. eps_mean) in
  let release =
    Summation.mean clamped +. Dp_rng.Sampler.laplace ~mean:0. ~scale:mean_scale g
  in
  (* private second moment of the standardized-range values *)
  let sq_mean = Summation.mean (Array.map (fun x -> x *. x) clamped) in
  let sq_scale = Numeric.sq (Float.max (Float.abs lo) (Float.abs hi)) /. (nf *. eps_var) in
  let noisy_sq = sq_mean +. Dp_rng.Sampler.laplace ~mean:0. ~scale:sq_scale g in
  let var_hat =
    Numeric.clamp ~lo:0.
      ~hi:(Numeric.sq (hi -. lo) /. 4.)
      (noisy_sq -. Numeric.sq release)
  in
  (* split the failure budget between the two error sources *)
  let alpha = 1. -. confidence in
  let z = Special.std_normal_quantile (1. -. (alpha /. 4.)) in
  let sampling = z *. sqrt (var_hat /. nf) in
  let noise =
    laplace_noise_quantile ~scale:mean_scale ~p:(1. -. (alpha /. 2.))
  in
  let half = sampling +. noise in
  { estimate = release; lo = release -. half; hi = release +. half }

let naive_ci ~confidence ~lo ~hi ~release ~n xs =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Confidence.naive_ci: confidence must be in (0,1)";
  if n <= 0 then invalid_arg "Confidence.naive_ci: n must be positive";
  if lo >= hi then invalid_arg "Confidence.naive_ci: lo >= hi";
  let clamped = Array.map (Numeric.clamp ~lo ~hi) xs in
  let sd = if Array.length clamped >= 2 then Dp_stats.Describe.std clamped else (hi -. lo) /. 2. in
  let z = Special.std_normal_quantile (1. -. ((1. -. confidence) /. 2.)) in
  let half = z *. sd /. sqrt (float_of_int n) in
  { estimate = release; lo = release -. half; hi = release +. half }
