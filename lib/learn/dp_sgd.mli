(** Differentially-private SGD with per-example gradient clipping and
    Gaussian noise — the modern private-ERM workhorse, included as the
    contemporary comparator to the paper-era mechanisms (E17).

    Accounting: each epoch partitions the data into disjoint batches,
    so within an epoch every record is touched by exactly one noisy
    step (parallel composition); epochs compose sequentially. With
    per-example clipping at C and batch size B, a replace-one
    neighbour changes one step's summed gradient by at most 2C, so the
    noisy mean-gradient step is a Gaussian mechanism with relative
    noise σ = noise_multiplier. Total privacy is the [epochs]-fold RDP
    composition converted to (ε, δ). *)

type result = {
  theta : float array;
  budget : Dp_mechanism.Privacy.budget;
  steps : int;
}

val train :
  ?epochs:int ->
  ?batch_size:int ->
  ?learning_rate:float ->
  ?clip_norm:float ->
  noise_multiplier:float ->
  delta:float ->
  loss:Loss_fn.t ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  result
(** Defaults: epochs 10, batch_size 50 (capped at n), learning rate
    0.5, clip_norm 1.
    @raise Invalid_argument on non-positive parameters or δ ∉ (0,1). *)

val epsilon_for :
  noise_multiplier:float -> epochs:int -> delta:float -> float
(** The ε this configuration will report, without training. *)
