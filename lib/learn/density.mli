(** Differentially-private histogram density estimation — the paper's
    §5 names private density estimation as the direction this
    framework targets; this is the concrete instance used in E9 and
    the density example. *)

type estimate = {
  histogram : Dp_stats.Histogram.t;  (** noisy, clamped, renormalizable *)
  budget : Dp_mechanism.Privacy.budget;
}

val fit_private :
  epsilon:float ->
  lo:float ->
  hi:float ->
  bins:int ->
  float array ->
  Dp_rng.Prng.t ->
  estimate
(** Histogram counts + Laplace(2/ε) noise per bin (L1 sensitivity of a
    histogram is 2 under record replacement), clamped at 0. ε-DP. *)

val fit_non_private : lo:float -> hi:float -> bins:int -> float array -> estimate
(** The non-private baseline, budget (∞ represented as ε = infinity). *)

val density_at : estimate -> float -> float

val l1_error :
  estimate -> true_density:(float -> float) -> float
(** ∫ |f̂ − f| over the histogram support, computed bin-by-bin with the
    midpoint rule on the true density. *)

val log_likelihood : estimate -> float array -> float
(** Mean held-out log density, floored at log 1e-12 per point. *)
