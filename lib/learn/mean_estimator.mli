(** Private mean estimation of bounded scalars — the simplest
    learning task (experiment E9), and the workload for the E1 privacy
    audit. *)

val non_private : lo:float -> hi:float -> float array -> float
(** Clamps each record into [\[lo, hi\]] and averages.
    @raise Invalid_argument on the empty array or [lo >= hi]. *)

val laplace :
  epsilon:float -> lo:float -> hi:float -> float array -> Dp_rng.Prng.t -> float
(** The Laplace mechanism on the clamped mean: sensitivity
    [(hi−lo)/n], hence noise [Lap((hi−lo)/(n·ε))] (paper Thm 2.2). *)

val expected_absolute_error : epsilon:float -> lo:float -> hi:float -> n:int -> float
(** The analytic mean absolute error of the noise term:
    [E|Lap(b)| = b = (hi−lo)/(n·ε)] — the 1/(εn) utility law E9
    plots. *)
