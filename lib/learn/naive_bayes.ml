open Dp_dataset
open Dp_math

type t = {
  bins : int;
  lo : float;
  hi : float;
  smoothing : float;
  (* counts.(c).(j).(b): class c (0 = -1, 1 = +1), feature j, bin b *)
  counts : float array array array;
  class_counts : float array;
}

let bin_of t x =
  let x = Numeric.clamp ~lo:t.lo ~hi:t.hi x in
  let i = int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int t.bins) in
  Stdlib.min i (t.bins - 1)

let class_index y =
  if y = 1. then 1
  else if y = -1. then 0
  else invalid_arg "Naive_bayes: labels must be +-1"

let raw_fit ~bins ~smoothing ~lo ~hi d =
  if bins <= 0 then invalid_arg "Naive_bayes.fit: bins must be positive";
  ignore (Numeric.check_nonneg "Naive_bayes.fit smoothing" smoothing);
  if lo >= hi then invalid_arg "Naive_bayes.fit: lo >= hi";
  let dim = Dataset.dim d in
  let t =
    {
      bins;
      lo;
      hi;
      smoothing;
      counts = Array.init 2 (fun _ -> Array.init dim (fun _ -> Array.make bins 0.));
      class_counts = Array.make 2 0.;
    }
  in
  for i = 0 to Dataset.size d - 1 do
    let x, y = Dataset.row d i in
    let c = class_index y in
    t.class_counts.(c) <- t.class_counts.(c) +. 1.;
    Array.iteri
      (fun j v ->
        let b = bin_of t v in
        t.counts.(c).(j).(b) <- t.counts.(c).(j).(b) +. 1.)
      x
  done;
  t

let fit ?(bins = 8) ?(smoothing = 1.) ~lo ~hi d =
  raw_fit ~bins ~smoothing ~lo ~hi d

let fit_private ~epsilon ?(bins = 8) ?(smoothing = 1.) ~lo ~hi d g =
  let epsilon = Numeric.check_pos "Naive_bayes.fit_private epsilon" epsilon in
  let t = raw_fit ~bins ~smoothing ~lo ~hi d in
  let dim = Dataset.dim d in
  (* one record contributes one unit to (d+1) histograms; replacement
     moves 2 units in each: L1 sensitivity 2(d+1) over the whole table *)
  let sensitivity = 2. *. float_of_int (dim + 1) in
  let m = Dp_mechanism.Laplace.create ~sensitivity ~epsilon in
  let noise c = Float.max 0. (Dp_mechanism.Laplace.release m ~value:c g) in
  let counts = Array.map (Array.map (Array.map noise)) t.counts in
  let class_counts = Array.map noise t.class_counts in
  ({ t with counts; class_counts }, Dp_mechanism.Privacy.pure epsilon)

let log_posterior_class t c x =
  let sm = t.smoothing in
  let total = t.class_counts.(0) +. t.class_counts.(1) +. (2. *. sm) in
  let log_prior = log ((t.class_counts.(c) +. sm) /. total) in
  let class_total = t.class_counts.(c) +. (sm *. float_of_int t.bins) in
  log_prior
  +. Numeric.float_sum_range (Array.length x) (fun j ->
         let b = bin_of t x.(j) in
         log ((t.counts.(c).(j).(b) +. sm) /. class_total))

let predict_log_odds t x = log_posterior_class t 1 x -. log_posterior_class t 0 x

let predict t x = if predict_log_odds t x >= 0. then 1. else -1.

let accuracy t d =
  let n = Dataset.size d in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let x, y = Dataset.row d i in
    if predict t x = y then incr correct
  done;
  float_of_int !correct /. float_of_int n
