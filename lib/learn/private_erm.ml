open Dp_dataset
open Dp_math

type private_model = {
  theta : float array;
  budget : Dp_mechanism.Privacy.budget;
  mechanism : string;
}

let output_perturbation ~epsilon ~lambda ~loss d g =
  let epsilon = Numeric.check_pos "Private_erm.output_perturbation epsilon" epsilon in
  let lambda = Numeric.check_pos "Private_erm.output_perturbation lambda" lambda in
  let model = Erm.train ~lambda ~loss d in
  let n = float_of_int (Dataset.size d) in
  let scale = 2. *. loss.Loss_fn.lipschitz /. (n *. lambda *. epsilon) in
  let noise =
    Dp_rng.Sampler.laplace_vector_l2 ~dim:(Dataset.dim d) ~scale g
  in
  {
    theta = Dp_linalg.Vec.add model.Erm.theta noise;
    budget = Dp_mechanism.Privacy.pure epsilon;
    mechanism = "output-perturbation";
  }

let objective_perturbation ~epsilon ~lambda ~loss d g =
  let epsilon = Numeric.check_pos "Private_erm.objective_perturbation epsilon" epsilon in
  let lambda = Numeric.check_pos "Private_erm.objective_perturbation lambda" lambda in
  let c =
    match loss.Loss_fn.smoothness with
    | Some c -> c
    | None ->
        invalid_arg
          "Private_erm.objective_perturbation: loss has no smoothness constant"
  in
  let n = float_of_int (Dataset.size d) in
  (* Chaudhuri-Monteleoni-Sarwate Algorithm 2 calibration. *)
  let eps' = epsilon -. (2. *. Float.log1p (c /. (n *. lambda))) in
  let eps', extra_ridge =
    if eps' > 0. then (eps', 0.)
    else
      let delta = (c /. (n *. (exp (epsilon /. 4.) -. 1.))) -. lambda in
      (epsilon /. 2., Float.max 0. delta)
  in
  let b = Dp_rng.Sampler.laplace_vector_l2 ~dim:(Dataset.dim d) ~scale:(2. /. eps') g in
  let lambda_total = lambda +. extra_ridge in
  let f theta =
    Erm.objective_value ~lambda:lambda_total ~loss d theta
    +. (Dp_linalg.Vec.dot b theta /. n)
  in
  let grad theta =
    let base = Array.make (Dataset.dim d) 0. in
    for i = 0 to Dataset.size d - 1 do
      let x, y = Dataset.row d i in
      Dp_linalg.Vec.axpy_inplace ~alpha:1. (loss.Loss_fn.grad ~theta ~x ~y) base
    done;
    Array.mapi
      (fun j gj -> (gj +. b.(j)) /. n +. (lambda_total *. theta.(j)))
      base
  in
  let r = Dp_optim.Gd.minimize ~max_iter:2000 ~tol:1e-9 ~f ~grad
      (Array.make (Dataset.dim d) 0.)
  in
  {
    theta = r.Dp_optim.Gd.solution;
    budget = Dp_mechanism.Privacy.pure epsilon;
    mechanism = "objective-perturbation";
  }

let gibbs_beta ~epsilon ~n ~loss_range =
  let epsilon = Numeric.check_pos "Private_erm.gibbs_beta epsilon" epsilon in
  let loss_range = Numeric.check_pos "Private_erm.gibbs_beta loss_range" loss_range in
  if n <= 0 then invalid_arg "Private_erm.gibbs_beta: n must be positive";
  (* 2 beta ΔR̂ = eps with ΔR̂ = range/n. *)
  epsilon *. float_of_int n /. (2. *. loss_range)

let clipped_empirical_risk ~loss d theta =
  let n = Dataset.size d in
  Numeric.float_sum_range n (fun i ->
      let x, y = Dataset.row d i in
      Loss_fn.clip loss ~theta ~x ~y)
  /. float_of_int n

let gibbs_run ?mcmc_config ~epsilon ~radius ~loss ~n_samples d g =
  let epsilon = Numeric.check_pos "Private_erm.gibbs epsilon" epsilon in
  let radius = Numeric.check_pos "Private_erm.gibbs radius" radius in
  let n = Dataset.size d in
  let beta = gibbs_beta ~epsilon ~n ~loss_range:(Loss_fn.range_width loss) in
  let log_density theta =
    if Dp_linalg.Vec.norm2 theta > radius then neg_infinity
    else -.beta *. clipped_empirical_risk ~loss d theta
  in
  let config =
    Option.value mcmc_config
      ~default:
        {
          Dp_pac_bayes.Mcmc.step_std = Float.max 0.05 (radius /. 10.);
          burn_in = 3000;
          thin = 5;
        }
  in
  Dp_pac_bayes.Mcmc.run ~config ~log_density
    ~init:(Array.make (Dataset.dim d) 0.)
    ~n_samples g

let gibbs ?mcmc_config ~epsilon ~radius ~loss d g =
  let r = gibbs_run ?mcmc_config ~epsilon ~radius ~loss ~n_samples:1 d g in
  {
    theta = r.Dp_pac_bayes.Mcmc.samples.(0);
    budget = Dp_mechanism.Privacy.pure epsilon;
    mechanism = "gibbs-posterior";
  }

let gibbs_posterior_samples ?mcmc_config ~epsilon ~radius ~loss ~n_samples d g =
  (gibbs_run ?mcmc_config ~epsilon ~radius ~loss ~n_samples d g)
    .Dp_pac_bayes.Mcmc.samples
