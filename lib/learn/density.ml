open Dp_stats

type estimate = {
  histogram : Histogram.t;
  budget : Dp_mechanism.Privacy.budget;
}

let fit_private ~epsilon ~lo ~hi ~bins xs g =
  let epsilon = Dp_math.Numeric.check_pos "Density.fit_private epsilon" epsilon in
  let h = Histogram.of_samples ~lo ~hi ~bins xs in
  let m =
    Dp_mechanism.Laplace.create
      ~sensitivity:(Dp_mechanism.Sensitivity.histogram ())
      ~epsilon
  in
  let noisy =
    Histogram.map_counts (fun c -> Dp_mechanism.Laplace.release m ~value:c g) h
  in
  { histogram = noisy; budget = Dp_mechanism.Privacy.pure epsilon }

let fit_non_private ~lo ~hi ~bins xs =
  {
    histogram = Histogram.of_samples ~lo ~hi ~bins xs;
    budget = { Dp_mechanism.Privacy.epsilon = infinity; delta = 0. };
  }

let density_at e x = Histogram.density_at e.histogram x

let l1_error e ~true_density =
  let h = e.histogram in
  let w = Histogram.bin_width h in
  (* within-support discrepancy, sampling the true density at 16 points
     per bin *)
  let per_bin i =
    let est = Histogram.density h i in
    let x0 = Histogram.bin_center h i -. (w /. 2.) in
    Dp_math.Numeric.float_sum_range 16 (fun k ->
        let x = x0 +. ((float_of_int k +. 0.5) /. 16. *. w) in
        Float.abs (est -. true_density x) *. w /. 16.)
  in
  Dp_math.Numeric.float_sum_range h.Histogram.bins per_bin

let log_likelihood e xs =
  if Array.length xs = 0 then invalid_arg "Density.log_likelihood: empty input";
  Dp_math.Summation.sum_map
    (fun x -> log (Float.max 1e-12 (density_at e x)))
    xs
  /. float_of_int (Array.length xs)
