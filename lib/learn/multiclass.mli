(** Multiclass classification by one-vs-rest reduction over the binary
    linear learners, with private training that splits the ε budget
    across the per-class binary problems.

    Because every record appears in each binary subproblem, the
    subproblems compose SEQUENTIALLY: the per-class budget is ε/c. *)

type model = { thetas : float array array; classes : int }

val train :
  ?lambda:float ->
  classes:int ->
  loss:Loss_fn.t ->
  features:float array array ->
  labels:int array ->
  unit ->
  model
(** Labels in [\[0, classes)]; one regularized ERM per class on the
    ±1 relabelling.
    @raise Invalid_argument on bad labels or shapes. *)

val train_private_output :
  epsilon:float ->
  ?lambda:float ->
  classes:int ->
  loss:Loss_fn.t ->
  features:float array array ->
  labels:int array ->
  Dp_rng.Prng.t ->
  model * Dp_mechanism.Privacy.budget
(** Output perturbation per binary problem at ε/classes each; total
    ε-DP by sequential composition. *)

val predict : model -> float array -> int
(** Argmax of the per-class decision values. *)

val accuracy : model -> features:float array array -> labels:int array -> float
