(** Differentially-private empirical risk minimization.

    Three mechanisms, matching the paper's landscape:

    - {!output_perturbation} and {!objective_perturbation} are the
      Chaudhuri–Monteleoni–Sarwate baselines the paper cites (refs 5,
      6): perturb the deterministic ERM solution or the objective.
    - {!gibbs} is the paper's own object (Theorem 4.1): sample from the
      Gibbs posterior [∝ exp(−β·R̂(θ))] over a bounded predictor
      space, i.e. the exponential mechanism with quality −R̂, realized
      by MCMC on continuous Θ.

    All assume feature vectors clipped to the unit L2 ball
    ([Dp_dataset.Dataset.clip_rows_l2]). *)

type private_model = {
  theta : float array;
  budget : Dp_mechanism.Privacy.budget;
  mechanism : string;
}

val output_perturbation :
  epsilon:float ->
  lambda:float ->
  loss:Loss_fn.t ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  private_model
(** Chaudhuri et al. Algorithm 1: train regularized ERM, then add
    noise with density [∝ exp(−‖b‖₂ / s)], [s = 2L/(nλε)] — the L2
    sensitivity of the λ-strongly-convex minimizer is [2L/(nλ)].
    ε-DP for any L-Lipschitz convex loss.
    @raise Invalid_argument on non-positive ε or λ. *)

val objective_perturbation :
  epsilon:float ->
  lambda:float ->
  loss:Loss_fn.t ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  private_model
(** Chaudhuri et al. Algorithm 2 (requires a smooth loss): perturb the
    objective with a random linear term [bᵀθ/n] and, when needed, an
    extra ridge term. Generally strictly better utility than output
    perturbation at equal ε.
    @raise Invalid_argument when the loss declares no smoothness
    constant. *)

val gibbs :
  ?mcmc_config:Dp_pac_bayes.Mcmc.config ->
  epsilon:float ->
  radius:float ->
  loss:Loss_fn.t ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  private_model
(** The paper's mechanism: one draw from the Gibbs posterior
    [∝ exp(−β R̂_clip(θ))] on [{‖θ‖₂ ≤ radius}] with uniform base
    measure, [β = ε·n / (2·range)] so that [2βΔR̂ = ε] (Theorem 4.1).
    The clipped loss makes ΔR̂ = range/n exact. The MCMC realization is
    asymptotically exact (see ablation A3 for finite-chain error). *)

val gibbs_beta : epsilon:float -> n:int -> loss_range:float -> float
(** The inverse temperature used by {!gibbs}. *)

val gibbs_posterior_samples :
  ?mcmc_config:Dp_pac_bayes.Mcmc.config ->
  epsilon:float ->
  radius:float ->
  loss:Loss_fn.t ->
  n_samples:int ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  float array array
(** Multiple posterior draws for diagnostics (note: releasing [k]
    draws costs [k·ε] by composition — only the first draw is the
    private release). *)
