(** Ridge regression: the closed-form regression baseline plus private
    releases (experiment E10). *)

val fit : lambda:float -> Dp_dataset.Dataset.t -> float array
(** [θ = (XᵀX + nλI)⁻¹ Xᵀy] via Cholesky.
    @raise Invalid_argument for non-positive λ. *)

val fit_output_perturbed :
  epsilon:float ->
  lambda:float ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  float array
(** Output perturbation on the ridge solution. Valid for ‖x‖ ≤ 1 and
    |y| ≤ 1 (clip the data first); the squared loss restricted to the
    resulting solution ball has Lipschitz constant ≤ 2, giving
    solution sensitivity [4/(nλ)] and noise density
    [∝ exp(−ε‖b‖/(4/(nλ)))⁻¹-scaled]. *)

val fit_gibbs :
  ?mcmc_config:Dp_pac_bayes.Mcmc.config ->
  epsilon:float ->
  radius:float ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  float array
(** One draw from the Gibbs posterior on the clipped squared loss over
    the radius ball (the paper's mechanism specialized to
    regression). *)
