open Dp_math

type model = {
  components : float array array;
  eigenvalues : float array;
  explained_ratio : float;
}

let second_moment points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Pca: empty data";
  let d = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> d then invalid_arg "Pca: ragged points")
    points;
  let m = Dp_linalg.Mat.zeros d d in
  Array.iter
    (fun p ->
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          Dp_linalg.Mat.set m i j (Dp_linalg.Mat.get m i j +. (p.(i) *. p.(j)))
        done
      done)
    points;
  Dp_linalg.Mat.scale (1. /. float_of_int n) m

let model_of_matrix ~j m =
  let d, _ = Dp_linalg.Mat.dims m in
  if j < 1 || j > d then invalid_arg "Pca: j out of range";
  let values, vectors = Dp_linalg.Decomp.jacobi_eigen m in
  let components =
    Array.init j (fun c -> Dp_linalg.Mat.col vectors c)
  in
  let total = Summation.sum_map Float.abs values in
  let top = Numeric.float_sum_range j (fun i -> Float.abs values.(i)) in
  {
    components;
    eigenvalues = Array.sub values 0 j;
    explained_ratio = (if total > 0. then top /. total else 0.);
  }

let fit ~j points = model_of_matrix ~j (second_moment points)

let fit_private ~epsilon ~j points g =
  let epsilon = Numeric.check_pos "Pca.fit_private epsilon" epsilon in
  let points = Array.map (Dp_linalg.Vec.project_l2_ball ~radius:1.) points in
  let n = Array.length points in
  if n = 0 then invalid_arg "Pca.fit_private: empty data";
  let d = Array.length points.(0) in
  let m = second_moment points in
  (* L1 sensitivity of the upper triangle: each of the d(d+1)/2 entries
     moves by at most 2/n under replacement *)
  let entries = float_of_int (d * (d + 1) / 2) in
  let mech =
    Dp_mechanism.Laplace.create
      ~sensitivity:(2. *. entries /. float_of_int n)
      ~epsilon
  in
  let noisy = Dp_linalg.Mat.copy m in
  for i = 0 to d - 1 do
    for k = i to d - 1 do
      let v =
        Dp_mechanism.Laplace.release mech ~value:(Dp_linalg.Mat.get m i k) g
      in
      Dp_linalg.Mat.set noisy i k v;
      Dp_linalg.Mat.set noisy k i v
    done
  done;
  (model_of_matrix ~j noisy, Dp_mechanism.Privacy.pure epsilon)

let subspace_affinity a b =
  let j = Array.length a.components in
  if Array.length b.components <> j then
    invalid_arg "Pca.subspace_affinity: component counts differ";
  Numeric.float_sum_range j (fun i ->
      Numeric.float_sum_range j (fun k ->
          Numeric.sq (Dp_linalg.Vec.dot a.components.(i) b.components.(k))))
  /. float_of_int j
