type model = { thetas : float array array; classes : int }

let check ~classes ~features ~labels =
  if classes < 2 then invalid_arg "Multiclass: classes must be >= 2";
  let n = Array.length features in
  if n = 0 || Array.length labels <> n then
    invalid_arg "Multiclass: features/labels mismatch";
  Array.iter
    (fun l ->
      if l < 0 || l >= classes then invalid_arg "Multiclass: label out of range")
    labels

let binary_dataset ~features ~labels c =
  Dp_dataset.Dataset.create
    (Array.map Array.copy features)
    (Array.map (fun l -> if l = c then 1. else -1.) labels)

let train ?(lambda = 1e-3) ~classes ~loss ~features ~labels () =
  check ~classes ~features ~labels;
  let thetas =
    Array.init classes (fun c ->
        (Erm.train ~lambda ~loss (binary_dataset ~features ~labels c)).Erm.theta)
  in
  { thetas; classes }

let train_private_output ~epsilon ?(lambda = 1e-3) ~classes ~loss ~features
    ~labels g =
  check ~classes ~features ~labels;
  let epsilon =
    Dp_math.Numeric.check_pos "Multiclass.train_private_output epsilon" epsilon
  in
  let per_class = epsilon /. float_of_int classes in
  let thetas =
    Array.init classes (fun c ->
        (Private_erm.output_perturbation ~epsilon:per_class ~lambda ~loss
           (binary_dataset ~features ~labels c)
           g)
          .Private_erm.theta)
  in
  ({ thetas; classes }, Dp_mechanism.Privacy.pure epsilon)

let predict m x =
  Dp_linalg.Vec.argmax
    (Array.map (fun theta -> Dp_linalg.Vec.dot theta x) m.thetas)

let accuracy m ~features ~labels =
  let n = Array.length features in
  if n = 0 || Array.length labels <> n then
    invalid_arg "Multiclass.accuracy: shape mismatch";
  let correct = ref 0 in
  for i = 0 to n - 1 do
    if predict m features.(i) = labels.(i) then incr correct
  done;
  float_of_int !correct /. float_of_int n
