(** Differentially-private synthetic data release.

    A simple generative release: per-class feature histograms (noised
    once under a single ε budget, like the naive-Bayes tables) define
    a class-conditional product distribution; arbitrarily many
    synthetic records can then be sampled as post-processing. The
    standard "train on synthetic, test on real" protocol (experiment
    E29) measures how much task utility the release preserves. *)

type t

val fit :
  epsilon:float ->
  ?bins:int ->
  lo:float ->
  hi:float ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  t * Dp_mechanism.Privacy.budget
(** Labels must be ±1; features are clamped into [\[lo, hi\]] and
    binned ([bins] defaults to 10 per dimension). Laplace noise with
    the table sensitivity 2(d+1) is added to every count. ε-DP.
    @raise Invalid_argument on bad parameters. *)

val sample_record : t -> Dp_rng.Prng.t -> float array * float
(** One synthetic (features, label) draw: label from the noisy class
    distribution, each feature uniform within a bin drawn from its
    class histogram. *)

val sample_dataset : t -> n:int -> Dp_rng.Prng.t -> Dp_dataset.Dataset.t
(** [n] i.i.d. synthetic records (free: post-processing).
    @raise Invalid_argument for n <= 0. *)

val class_balance : t -> float
(** The noisy P(y = +1). *)
