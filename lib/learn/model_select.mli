(** Private model selection via the exponential mechanism.

    Choosing a hyperparameter (λ, bin count, radius, ...) by looking
    at validation scores leaks information; selecting with the
    exponential mechanism on the validation score bounds the leak.
    With validation accuracy as the quality (sensitivity 1/m for m
    validation records under replacement), the selection is
    [2·exponent·(1/m)]-DP with respect to the validation set. *)

type 'a selection = {
  chosen : 'a;
  index : int;
  scores : float array;  (** non-private scores, for diagnostics *)
  budget : Dp_mechanism.Privacy.budget;
}

val select :
  epsilon:float ->
  candidates:'a array ->
  score:('a -> float) ->
  score_sensitivity:float ->
  Dp_rng.Prng.t ->
  'a selection
(** [select ~epsilon ~candidates ~score ~score_sensitivity g]: one
    exponential-mechanism draw with exponent calibrated so the release
    is ε-DP given the score sensitivity.
    @raise Invalid_argument on empty candidates or non-positive
    parameters. *)

val select_best_lambda :
  epsilon:float ->
  lambdas:float array ->
  loss:Loss_fn.t ->
  train:Dp_dataset.Dataset.t ->
  validation:Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  float selection
(** Convenience: train a (non-private) ERM per λ and privately select
    on validation accuracy (sensitivity 1/|validation|). Note the
    budget covers the validation set only; combine with a private
    trainer for end-to-end privacy. *)
