(** Regularized empirical risk minimization (non-private baseline).

    Minimizes [J(θ) = (1/n) Σ ℓ(θ; xᵢ, yᵢ) + (λ/2)‖θ‖²] by batch
    gradient descent with line search — the deterministic predictor
    the paper's randomized (Gibbs) predictor relaxes. *)

type model = {
  theta : float array;
  objective : float;
  converged : bool;
  iterations : int;
}

val train :
  ?lambda:float ->
  ?max_iter:int ->
  ?radius:float ->
  loss:Loss_fn.t ->
  Dp_dataset.Dataset.t ->
  model
(** [train ~loss d] fits the linear model. [lambda] defaults to 1e-3;
    when [radius] is given the iterates are projected onto that L2
    ball (matching the bounded predictor space assumed by the Gibbs
    learner). @raise Invalid_argument for non-positive lambda. *)

val objective_value :
  lambda:float -> loss:Loss_fn.t -> Dp_dataset.Dataset.t -> float array -> float
(** J(θ) — exposed for the private-ERM utility analyses. *)

val decision_value : float array -> float array -> float
(** [θᵀx]. *)

val predict_label : float array -> float array -> float
(** Sign of the decision value (±1; 0 maps to +1). *)

val accuracy : float array -> Dp_dataset.Dataset.t -> float
(** Fraction of correct ±1 predictions. *)

val mean_squared_error : float array -> Dp_dataset.Dataset.t -> float
