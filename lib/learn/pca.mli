(** Principal component analysis, non-private and differentially
    private (Laplace/Gaussian perturbation of the covariance matrix —
    the "input perturbation" baseline of Dwork et al. 2014 / the
    symmetric-perturbation line). For rows clipped to the unit L2
    ball, replacing one record changes the empirical second-moment
    matrix by at most [2/n] in Frobenius (and entrywise) norm, so
    noising the (d² symmetric) entries gives DP; eigenvectors of the
    noisy matrix are post-processing. *)

type model = {
  components : float array array;  (** rows: top eigenvectors *)
  eigenvalues : float array;
  explained_ratio : float;  (** top-j eigenvalue mass / total *)
}

val fit : j:int -> float array array -> model
(** Top-[j] PCA of the (uncentred) second-moment matrix via Jacobi.
    @raise Invalid_argument for j < 1, j > d, or ragged/empty data. *)

val fit_private :
  epsilon:float ->
  j:int ->
  float array array ->
  Dp_rng.Prng.t ->
  model * Dp_mechanism.Privacy.budget
(** Laplace noise with scale [d(d+1)/2 · (2/n) / ε ÷ ...] — precisely:
    the upper-triangle entries (d(d+1)/2 of them) form one vector
    query with L1 sensitivity [2·d(d+1)/(2n)] bounded via per-entry
    change [2/n]; symmetric noise is added and the eigendecomposition
    taken. Rows are clipped to the unit ball first. *)

val subspace_affinity : model -> model -> float
(** [‖U₁ᵀU₂‖_F² / j ∈ [0, 1]]: 1 when the two j-dimensional principal
    subspaces coincide — the recovery metric of experiment E26.
    @raise Invalid_argument when component counts differ. *)
