(** Private quantile estimation through the exponential mechanism —
    the canonical continuous-range instance of the paper's Theorem 2.3
    (McSherry–Talwar 2007's own motivating example was selection; the
    quantile version is Smith 2011's).

    The quality of a candidate output x for the q-quantile of data
    [D ⊂ [lo, hi]] is [−|#{i : dᵢ ≤ x} − q·n|]; its sensitivity under
    record replacement is 1, and the quality is piecewise constant
    between sorted data points, so the output density is a mixture of
    uniforms over the gaps — exactly samplable in O(n log n). *)

val estimate :
  epsilon:float ->
  q:float ->
  lo:float ->
  hi:float ->
  float array ->
  Dp_rng.Prng.t ->
  float
(** [estimate ~epsilon ~q ~lo ~hi xs g]: one ε-DP release of the
    q-quantile. Data are clamped into [\[lo, hi\]]. The exponent is
    calibrated so that [2·exponent·Δq = ε] (paper normalization).
    @raise Invalid_argument on empty data, q outside [0,1], or
    [lo >= hi]. *)

val exact : q:float -> float array -> float
(** Non-private comparison point (type-7 quantile). *)

val rank_error : q:float -> estimate:float -> float array -> int
(** |rank(estimate) − q·n|: the natural utility measure (how many
    ranks off the release is). *)
