type 'a selection = {
  chosen : 'a;
  index : int;
  scores : float array;
  budget : Dp_mechanism.Privacy.budget;
}

let select ~epsilon ~candidates ~score ~score_sensitivity g =
  let epsilon = Dp_math.Numeric.check_pos "Model_select.select epsilon" epsilon in
  let score_sensitivity =
    Dp_math.Numeric.check_pos "Model_select.select score_sensitivity"
      score_sensitivity
  in
  let scores = Array.map score candidates in
  let exponent =
    Dp_mechanism.Exponential.calibrate_exponent ~target_epsilon:epsilon
      ~sensitivity:score_sensitivity
  in
  let idx_mech =
    Dp_mechanism.Exponential.of_qualities
      ~candidates:(Array.init (Array.length candidates) Fun.id)
      ~qualities:scores ~sensitivity:score_sensitivity ~epsilon:exponent ()
  in
  let index = Dp_mechanism.Exponential.sample idx_mech g in
  {
    chosen = candidates.(index);
    index;
    scores;
    budget = Dp_mechanism.Privacy.pure epsilon;
  }

let select_best_lambda ~epsilon ~lambdas ~loss ~train ~validation g =
  let m = Dp_dataset.Dataset.size validation in
  let score lambda =
    let model = Erm.train ~lambda ~loss train in
    Erm.accuracy model.Erm.theta validation
  in
  select ~epsilon ~candidates:lambdas ~score
    ~score_sensitivity:(1. /. float_of_int m)
    g
