(** Noise-aware confidence intervals for private releases.

    A private mean carries two error sources: sampling error and the
    mechanism's noise. A naive interval built as if the release were
    the sample mean under-covers badly at small ε·n; a noise-aware
    interval convolves in the (exactly known) Laplace noise quantiles
    and restores coverage (experiment E33 measures both). *)

type interval = { estimate : float; lo : float; hi : float }

val private_mean_ci :
  epsilon:float ->
  confidence:float ->
  lo:float ->
  hi:float ->
  float array ->
  Dp_rng.Prng.t ->
  interval
(** ε-DP release of the clamped mean together with a noise-aware
    interval: half-width = normal sampling quantile (variance
    estimated privately with a small budget split: 0.8ε for the mean,
    0.2ε for the variance proxy) plus the exact Laplace noise quantile.
    @raise Invalid_argument on bad parameters or empty data. *)

val naive_ci :
  confidence:float -> lo:float -> hi:float -> release:float -> n:int ->
  float array ->
  interval
(** What an analyst unaware of the mechanism would compute: a normal
    interval around the released value using the PUBLIC sample size
    and the clamped-range variance bound — ignores the noise
    entirely. For E33 only (it is not a valid CI). *)

val laplace_noise_quantile : scale:float -> p:float -> float
(** The two-sided quantile: smallest [t] with
    [P(|Lap(scale)| <= t) >= p], i.e. [−scale·log(1−p)].
    @raise Invalid_argument for p outside [0,1) or scale < 0. *)
