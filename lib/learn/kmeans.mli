(** k-means clustering, non-private (Lloyd) and differentially private
    (noisy sums and counts per iteration — the DPLloyd algorithm of
    Blum et al. / Su et al.). Points must lie in the unit L2 ball so
    the per-iteration sensitivity is bounded: replacing one record
    moves one cluster's sum by ≤ 2 in L1-per-coordinate terms (bounded
    by 2·√d ≥ L1) and two clusters' counts by 1 each. *)

type model = { centers : float array array; inertia : float; iterations : int }

val fit :
  ?iterations:int ->
  k:int ->
  float array array ->
  Dp_rng.Prng.t ->
  model
(** Plain Lloyd with k-means++-style seeding (default 20 iterations).
    @raise Invalid_argument on k < 1, empty data, or ragged points. *)

val fit_private :
  ?iterations:int ->
  epsilon:float ->
  k:int ->
  float array array ->
  Dp_rng.Prng.t ->
  model * Dp_mechanism.Privacy.budget
(** DPLloyd: the ε budget is split evenly across iterations; each
    iteration adds Laplace noise to every cluster's coordinate sums
    (L1 sensitivity 2·d per iteration for points clipped to
    ‖x‖∞ ≤ 1 ⊇ unit L2 ball) and counts (sensitivity 2). Data are
    clipped into the unit ball first. Default 5 iterations (noise
    grows with iterations — more is not better). *)

val inertia : centers:float array array -> float array array -> float
(** Mean squared distance of each point to its nearest center. *)

val assign : centers:float array array -> float array -> int
(** Index of the nearest center. *)
