(** Differentially-private naive Bayes over discretized features.

    Features are binned per dimension; class-conditional bin counts
    and class counts are the sufficient statistics. The private
    variant releases every count through one Laplace mechanism — the
    whole contingency table has L1 sensitivity 2·(d+1) under record
    replacement (each record touches one cell per feature histogram
    plus the class histogram, twice for replacement) — and then
    post-processes (clamping, smoothing, normalization) freely. *)

type t

val fit :
  ?bins:int ->
  ?smoothing:float ->
  lo:float ->
  hi:float ->
  Dp_dataset.Dataset.t ->
  t
(** Non-private fit. Labels must be ±1; features are clamped into
    [\[lo, hi\]] and discretized into [bins] (default 8) per
    dimension; [smoothing] (default 1) is the add-α on counts.
    @raise Invalid_argument on bad parameters or labels outside ±1. *)

val fit_private :
  epsilon:float ->
  ?bins:int ->
  ?smoothing:float ->
  lo:float ->
  hi:float ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  t * Dp_mechanism.Privacy.budget
(** ε-DP fit: Laplace(2(d+1)/ε) noise on every count. *)

val predict : t -> float array -> float
(** MAP class in {−1, +1}. *)

val predict_log_odds : t -> float array -> float
(** [log P(+1|x) − log P(−1|x)]. *)

val accuracy : t -> Dp_dataset.Dataset.t -> float
