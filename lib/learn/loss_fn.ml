open Dp_linalg

type t = {
  name : string;
  value : theta:float array -> x:float array -> y:float -> float;
  grad : theta:float array -> x:float array -> y:float -> float array;
  lipschitz : float;
  smoothness : float option;
  range : float * float;
}

let margin ~theta ~x ~y = y *. Vec.dot theta x

let logistic =
  {
    name = "logistic";
    value =
      (fun ~theta ~x ~y -> Dp_math.Logspace.log1pexp (-.margin ~theta ~x ~y));
    grad =
      (fun ~theta ~x ~y ->
        (* d/dθ log(1+e^{-m}) = -y·σ(-m)·x *)
        let m = margin ~theta ~x ~y in
        let s = 1. /. (1. +. exp m) in
        Vec.scale (-.y *. s) x);
    lipschitz = 1.;
    smoothness = Some 0.25;
    range = (0., 4.);
  }

let hinge =
  {
    name = "hinge";
    value = (fun ~theta ~x ~y -> Float.max 0. (1. -. margin ~theta ~x ~y));
    grad =
      (fun ~theta ~x ~y ->
        if margin ~theta ~x ~y < 1. then Vec.scale (-.y) x
        else Array.make (Array.length theta) 0.);
    lipschitz = 1.;
    smoothness = None;
    range = (0., 4.);
  }

let squared =
  {
    name = "squared";
    value =
      (fun ~theta ~x ~y ->
        let r = Vec.dot theta x -. y in
        0.5 *. r *. r);
    grad =
      (fun ~theta ~x ~y ->
        let r = Vec.dot theta x -. y in
        Vec.scale r x);
    lipschitz = 4.;
    smoothness = Some 1.;
    range = (0., 8.);
  }

let huber ~delta =
  let delta = Dp_math.Numeric.check_pos "Loss_fn.huber delta" delta in
  {
    name = Printf.sprintf "huber(%g)" delta;
    value =
      (fun ~theta ~x ~y ->
        let r = Vec.dot theta x -. y in
        let a = Float.abs r in
        if a <= delta then 0.5 *. r *. r else delta *. (a -. (0.5 *. delta)));
    grad =
      (fun ~theta ~x ~y ->
        let r = Vec.dot theta x -. y in
        let g = Dp_math.Numeric.clamp ~lo:(-.delta) ~hi:delta r in
        Vec.scale g x);
    lipschitz = delta;
    smoothness = Some 1.;
    range = (0., 4. *. delta);
  }

let zero_one ~theta ~x ~y =
  if margin ~theta ~x ~y > 0. then 0. else 1.

let clip t ~theta ~x ~y =
  let lo, hi = t.range in
  Dp_math.Numeric.clamp ~lo ~hi (t.value ~theta ~x ~y)

let range_width t =
  let lo, hi = t.range in
  hi -. lo
