(** Loss functions over linear predictors.

    A predictor is a weight vector θ; an example is a feature vector
    [x] with label [y] (±1 for classification). Each loss carries the
    analytic metadata private learning needs: a Lipschitz constant in θ
    (valid for ‖x‖₂ ≤ 1, the clipped-data convention) used by output /
    objective perturbation, and a range used by the Gibbs mechanism's
    sensitivity (losses are clipped into that range where needed). *)

type t = {
  name : string;
  value : theta:float array -> x:float array -> y:float -> float;
  grad : theta:float array -> x:float array -> y:float -> float array;
  lipschitz : float;
  smoothness : float option;
      (** Upper bound on the second derivative of the scalar loss
          (needed by objective perturbation); [None] for non-smooth
          losses such as hinge. *)
  range : float * float;
}

val logistic : t
(** [log (1 + e^{−y·θᵀx})]; Lipschitz 1, smoothness 1/4, clipped to
    [\[0, 4\]] for Gibbs sensitivity (the clip is immaterial for
    ‖θ‖ ≤ 3, ‖x‖ ≤ 1 since the loss is then ≤ log(1+e³) < 4). *)

val hinge : t
(** [max 0 (1 − y·θᵀx)]; subgradient, Lipschitz 1, non-smooth,
    range [\[0, 4\]] under the same clipping convention. *)

val squared : t
(** [(θᵀx − y)² / 2] clipped to [\[0, 8\]]; for regression with
    bounded labels. Lipschitz constant reported for ‖θ‖ ≤ 3,
    ‖x‖ ≤ 1, |y| ≤ 1. *)

val huber : delta:float -> t
(** Huber loss on the residual; Lipschitz [delta]. *)

val zero_one : theta:float array -> x:float array -> y:float -> float
(** 0-1 classification error (not a [t]: no useful gradient). *)

val clip : t -> theta:float array -> x:float array -> y:float -> float
(** The loss value clipped into its declared range — what the Gibbs
    learner actually averages, making the sensitivity claim exact. *)

val range_width : t -> float
