open Dp_math

type model = { centers : float array array; inertia : float; iterations : int }

let assign ~centers x =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = Dp_linalg.Vec.dist2 x c in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    centers;
  !best

let inertia ~centers points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.inertia: empty data";
  Numeric.float_sum_range n (fun i ->
      let c = centers.(assign ~centers points.(i)) in
      Numeric.sq (Dp_linalg.Vec.dist2 points.(i) c))
  /. float_of_int n

let validate_points points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans: empty data";
  let d = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> d then invalid_arg "Kmeans: ragged points")
    points;
  d

(* k-means++ seeding *)
let seed_centers ~k points g =
  let n = Array.length points in
  let centers = Array.make k points.(Dp_rng.Prng.int g n) in
  for j = 1 to k - 1 do
    let d2 =
      Array.map
        (fun p ->
          let sub = Array.sub centers 0 j in
          Numeric.sq (Dp_linalg.Vec.dist2 p sub.(assign ~centers:sub p)))
        points
    in
    let total = Summation.sum d2 in
    if total <= 0. then centers.(j) <- points.(Dp_rng.Prng.int g n)
    else begin
      let probs = Array.map (fun x -> x /. total) d2 in
      centers.(j) <- points.(Dp_rng.Sampler.categorical ~probs g)
    end
  done;
  Array.map Array.copy centers

let lloyd_step ~noise ~centers points =
  let k = Array.length centers in
  let d = Array.length points.(0) in
  let sums = Array.init k (fun _ -> Array.make d 0.) in
  let counts = Array.make k 0. in
  Array.iter
    (fun p ->
      let c = assign ~centers p in
      counts.(c) <- counts.(c) +. 1.;
      Dp_linalg.Vec.axpy_inplace ~alpha:1. p sums.(c))
    points;
  let sums, counts = noise sums counts in
  Array.init k (fun c ->
      if counts.(c) < 1. then Array.copy centers.(c)
      else
        Dp_linalg.Vec.project_l2_ball ~radius:1.
          (Array.map (fun s -> s /. counts.(c)) sums.(c)))

let fit ?(iterations = 20) ~k points g =
  if k < 1 then invalid_arg "Kmeans.fit: k must be >= 1";
  if iterations < 1 then invalid_arg "Kmeans.fit: iterations must be >= 1";
  ignore (validate_points points);
  let centers = ref (seed_centers ~k points g) in
  for _ = 1 to iterations do
    centers := lloyd_step ~noise:(fun s c -> (s, c)) ~centers:!centers points
  done;
  { centers = !centers; inertia = inertia ~centers:!centers points; iterations }

let fit_private ?(iterations = 5) ~epsilon ~k points g =
  if k < 1 then invalid_arg "Kmeans.fit_private: k must be >= 1";
  if iterations < 1 then invalid_arg "Kmeans.fit_private: iterations >= 1";
  let epsilon = Numeric.check_pos "Kmeans.fit_private epsilon" epsilon in
  let d = validate_points points in
  let points = Array.map (Dp_linalg.Vec.project_l2_ball ~radius:1.) points in
  let per_iter = epsilon /. float_of_int iterations in
  (* within an iteration, split between sums and counts; sum release
     has L1 sensitivity 2d (coordinates in [-1,1], replacement moves
     one point between clusters), counts sensitivity 2 *)
  let sum_mech =
    Dp_mechanism.Laplace.create
      ~sensitivity:(2. *. float_of_int d)
      ~epsilon:(per_iter /. 2.)
  in
  let count_mech =
    Dp_mechanism.Laplace.create ~sensitivity:2. ~epsilon:(per_iter /. 2.)
  in
  let noise sums counts =
    let sums =
      Array.map
        (Array.map (fun v -> Dp_mechanism.Laplace.release sum_mech ~value:v g))
        sums
    in
    let counts =
      Array.map
        (fun c ->
          Float.max 0. (Dp_mechanism.Laplace.release count_mech ~value:c g))
        counts
    in
    (sums, counts)
  in
  let centers = ref (seed_centers ~k points g) in
  (* seeding reads the data; in a fully rigorous pipeline the seeds
     would come from the domain — use random unit-ball seeds instead *)
  centers :=
    Array.init k (fun _ ->
        Dp_linalg.Vec.scale 0.5 (Dp_rng.Sampler.gamma_vector_direction ~dim:d g));
  for _ = 1 to iterations do
    centers := lloyd_step ~noise ~centers:!centers points
  done;
  ( { centers = !centers; inertia = inertia ~centers:!centers points; iterations },
    Dp_mechanism.Privacy.pure epsilon )
