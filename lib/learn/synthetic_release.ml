open Dp_dataset
open Dp_math

type t = {
  bins : int;
  lo : float;
  hi : float;
  class_probs : float array; (* index 0 = label -1, 1 = label +1 *)
  (* feature_tables.(c).(j) : alias table over bins *)
  feature_tables : Dp_rng.Alias.t array array;
}

let fit ~epsilon ?(bins = 10) ~lo ~hi d g =
  let epsilon = Numeric.check_pos "Synthetic_release.fit epsilon" epsilon in
  if bins <= 0 then invalid_arg "Synthetic_release.fit: bins must be positive";
  if lo >= hi then invalid_arg "Synthetic_release.fit: lo >= hi";
  let dim = Dataset.dim d in
  let n = Dataset.size d in
  let counts = Array.init 2 (fun _ -> Array.init dim (fun _ -> Array.make bins 0.)) in
  let class_counts = Array.make 2 0. in
  let bin_of x =
    let x = Numeric.clamp ~lo ~hi x in
    Stdlib.min (bins - 1)
      (int_of_float ((x -. lo) /. (hi -. lo) *. float_of_int bins))
  in
  for i = 0 to n - 1 do
    let x, y = Dataset.row d i in
    let c =
      if y = 1. then 1
      else if y = -1. then 0
      else invalid_arg "Synthetic_release.fit: labels must be +-1"
    in
    class_counts.(c) <- class_counts.(c) +. 1.;
    Array.iteri
      (fun j v ->
        let b = bin_of v in
        counts.(c).(j).(b) <- counts.(c).(j).(b) +. 1.)
      x
  done;
  let mech =
    Dp_mechanism.Laplace.create
      ~sensitivity:(2. *. float_of_int (dim + 1))
      ~epsilon
  in
  let noise c = Float.max 0. (Dp_mechanism.Laplace.release mech ~value:c g) in
  let noisy_counts = Array.map (Array.map (Array.map noise)) counts in
  let noisy_class = Array.map noise class_counts in
  (* smooth so every alias table is well defined *)
  let smooth arr = Array.map (fun c -> c +. 0.5) arr in
  let class_total = Summation.sum (smooth noisy_class) in
  let class_probs =
    Array.map (fun c -> (c +. 0.5) /. class_total) noisy_class
  in
  let feature_tables =
    Array.map (Array.map (fun hist -> Dp_rng.Alias.create (smooth hist))) noisy_counts
  in
  ( { bins; lo; hi; class_probs; feature_tables },
    Dp_mechanism.Privacy.pure epsilon )

let class_balance t = t.class_probs.(1)

let sample_record t g =
  let c = if Dp_rng.Sampler.bernoulli ~p:t.class_probs.(1) g then 1 else 0 in
  let width = (t.hi -. t.lo) /. float_of_int t.bins in
  let x =
    Array.map
      (fun table ->
        let b = Dp_rng.Alias.sample table g in
        t.lo +. (width *. (float_of_int b +. Dp_rng.Prng.float g)))
      t.feature_tables.(c)
  in
  (x, if c = 1 then 1. else -1.)

let sample_dataset t ~n g =
  if n <= 0 then invalid_arg "Synthetic_release.sample_dataset: n must be positive";
  let features = Array.make n [||] and labels = Array.make n 0. in
  for i = 0 to n - 1 do
    let x, y = sample_record t g in
    features.(i) <- x;
    labels.(i) <- y
  done;
  Dataset.create features labels
