open Dp_dataset

type model = {
  theta : float array;
  objective : float;
  converged : bool;
  iterations : int;
}

let objective_value ~lambda ~loss d theta =
  let n = Dataset.size d in
  let risk =
    Dp_math.Numeric.float_sum_range n (fun i ->
        let x, y = Dataset.row d i in
        loss.Loss_fn.value ~theta ~x ~y)
    /. float_of_int n
  in
  risk +. (0.5 *. lambda *. Dp_math.Numeric.sq (Dp_linalg.Vec.norm2 theta))

let objective_grad ~lambda ~loss d theta =
  let n = Dataset.size d in
  let dim = Dataset.dim d in
  let acc = Array.make dim 0. in
  for i = 0 to n - 1 do
    let x, y = Dataset.row d i in
    Dp_linalg.Vec.axpy_inplace ~alpha:1. (loss.Loss_fn.grad ~theta ~x ~y) acc
  done;
  Array.mapi (fun j g -> (g /. float_of_int n) +. (lambda *. theta.(j))) acc

let train ?(lambda = 1e-3) ?(max_iter = 5000) ?radius ~loss d =
  let lambda = Dp_math.Numeric.check_pos "Erm.train lambda" lambda in
  let dim = Dataset.dim d in
  let project =
    Option.map (fun r -> Dp_linalg.Vec.project_l2_ball ~radius:r) radius
  in
  let r =
    Dp_optim.Gd.minimize ~max_iter ~tol:1e-6 ?project
      ~f:(objective_value ~lambda ~loss d)
      ~grad:(objective_grad ~lambda ~loss d)
      (Array.make dim 0.)
  in
  {
    theta = r.Dp_optim.Gd.solution;
    objective = r.Dp_optim.Gd.objective;
    converged = r.Dp_optim.Gd.converged;
    iterations = r.Dp_optim.Gd.iterations;
  }

let decision_value theta x = Dp_linalg.Vec.dot theta x

let predict_label theta x = if decision_value theta x >= 0. then 1. else -1.

let accuracy theta d =
  let n = Dataset.size d in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let x, y = Dataset.row d i in
    if predict_label theta x = y then incr correct
  done;
  float_of_int !correct /. float_of_int n

let mean_squared_error theta d =
  let n = Dataset.size d in
  Dp_math.Numeric.float_sum_range n (fun i ->
      let x, y = Dataset.row d i in
      Dp_math.Numeric.sq (decision_value theta x -. y))
  /. float_of_int n
