open Dp_math

(* Classic Chan-Shi-Song binary mechanism. At time t (1-based), let i
   be the index of the lowest set bit of t: the level-i dyadic node
   ending at t closes, absorbing all lower-level open nodes plus the
   new item; it receives fresh Laplace noise. The private prefix sum
   at time t is the sum of the noisy nodes at the set bits of t. *)

type t = {
  epsilon : float;
  horizon : int;
  n_levels : int;
  g : Dp_rng.Prng.t;
  alpha : float array; (* true sum of the open/closed node per level *)
  alpha_noisy : float array; (* noisy sum of the closed node per level *)
  mutable t_now : int;
  mutable true_total : int;
}

let levels ~horizon =
  if horizon <= 0 then invalid_arg "Binary_mechanism.levels: horizon must be positive";
  (* bit-length of the horizon: the highest dyadic level any time
     t <= horizon can close *)
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 horizon

let create ~epsilon ~horizon g =
  let epsilon = Numeric.check_pos "Binary_mechanism.create epsilon" epsilon in
  if horizon <= 0 then
    invalid_arg "Binary_mechanism.create: horizon must be positive";
  let n_levels = levels ~horizon + 1 in
  {
    epsilon;
    horizon;
    n_levels;
    g;
    alpha = Array.make n_levels 0.;
    alpha_noisy = Array.make n_levels 0.;
    t_now = 0;
    true_total = 0;
  }

let noise_scale t = float_of_int t.n_levels /. t.epsilon

let lowest_set_bit v =
  let rec go i = if v land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let observe t bit =
  if bit <> 0 && bit <> 1 then
    invalid_arg "Binary_mechanism.observe: stream items must be 0 or 1";
  if t.t_now >= t.horizon then
    invalid_arg "Binary_mechanism.observe: past the declared horizon";
  t.t_now <- t.t_now + 1;
  t.true_total <- t.true_total + bit;
  let i = lowest_set_bit t.t_now in
  (* merge open lower levels and the new item into the closing node *)
  let sum = ref (float_of_int bit) in
  for j = 0 to i - 1 do
    sum := !sum +. t.alpha.(j);
    t.alpha.(j) <- 0.;
    t.alpha_noisy.(j) <- 0.
  done;
  t.alpha.(i) <- !sum;
  t.alpha_noisy.(i) <-
    !sum +. Dp_rng.Sampler.laplace ~mean:0. ~scale:(noise_scale t) t.g

let current_count t =
  if t.t_now = 0 then 0.
  else
    Numeric.float_sum_range t.n_levels (fun j ->
        if t.t_now land (1 lsl j) <> 0 then t.alpha_noisy.(j) else 0.)

let true_count t = t.true_total
let steps_observed t = t.t_now
let budget t = Privacy.pure t.epsilon

let expected_noise_std ~epsilon ~horizon =
  let l = float_of_int (levels ~horizon + 1) in
  sqrt l *. sqrt 2. *. l /. epsilon
