open Dp_math

type 'a t = {
  candidates : 'a array;
  qualities : float array;
  log_weights : float array; (* unnormalized: ε·q(u) + log π(u) *)
  log_probs : float array; (* normalized *)
  epsilon : float;
  sensitivity : float;
}

let of_qualities ~candidates ?log_prior ~qualities ~sensitivity ~epsilon () =
  let k = Array.length candidates in
  if k = 0 then invalid_arg "Exponential.create: empty candidate set";
  if Array.length qualities <> k then
    invalid_arg "Exponential.of_qualities: qualities length mismatch";
  let epsilon = Numeric.check_pos "Exponential.create epsilon" epsilon in
  let sensitivity =
    Numeric.check_nonneg "Exponential.create sensitivity" sensitivity
  in
  let log_prior =
    match log_prior with
    | None -> Array.make k 0.
    | Some lp ->
        if Array.length lp <> k then
          invalid_arg "Exponential.create: prior length mismatch";
        lp
  in
  Array.iter
    (fun q ->
      if Float.is_nan q then invalid_arg "Exponential.create: NaN quality")
    qualities;
  let log_weights =
    Array.mapi (fun i q -> (epsilon *. q) +. log_prior.(i)) qualities
  in
  let z = Logspace.log_sum_exp log_weights in
  if not (Float.is_finite z) then
    invalid_arg "Exponential.create: degenerate weights (log Z not finite)";
  let log_probs = Array.map (fun w -> w -. z) log_weights in
  { candidates; qualities = Array.copy qualities; log_weights; log_probs;
    epsilon; sensitivity }

let create ~candidates ?log_prior ~quality ~sensitivity ~epsilon () =
  let qualities = Array.map quality candidates in
  of_qualities ~candidates ?log_prior ~qualities ~sensitivity ~epsilon ()

let candidates t = t.candidates
let log_probabilities t = Array.copy t.log_probs
let probabilities t = Array.map exp t.log_probs

let sample t g =
  Draws.record Draws.Exponential;
  t.candidates.(Dp_rng.Sampler.categorical_log ~log_weights:t.log_weights g)

let sampler t g =
  let table = Dp_rng.Alias.of_log_weights t.log_weights in
  fun () ->
    Draws.record Draws.Exponential;
    t.candidates.(Dp_rng.Alias.sample table g)

let privacy_epsilon t = 2. *. t.epsilon *. t.sensitivity

let budget t = Privacy.pure (privacy_epsilon t)

let calibrate_exponent ~target_epsilon ~sensitivity =
  let target_epsilon =
    Numeric.check_pos "Exponential.calibrate_exponent target" target_epsilon
  in
  let sensitivity =
    Numeric.check_pos "Exponential.calibrate_exponent sensitivity" sensitivity
  in
  target_epsilon /. (2. *. sensitivity)

let expected_quality t =
  Numeric.float_sum_range (Array.length t.candidates) (fun i ->
      exp t.log_probs.(i) *. t.qualities.(i))

let max_quality t = Array.fold_left Float.max neg_infinity t.qualities

let utility_bound t ~failure_prob =
  let failure_prob =
    Numeric.check_prob "Exponential.utility_bound failure_prob" failure_prob
  in
  if failure_prob = 0. then neg_infinity
  else begin
    let k = float_of_int (Array.length t.candidates) in
    max_quality t -. ((log k +. log (1. /. failure_prob)) /. t.epsilon)
  end

let log_ratio_bound t1 t2 =
  let k = Array.length t1.candidates in
  if Array.length t2.candidates <> k then
    invalid_arg "Exponential.log_ratio_bound: candidate counts differ";
  let worst = ref 0. in
  for i = 0 to k - 1 do
    worst := Float.max !worst (Float.abs (t1.log_probs.(i) -. t2.log_probs.(i)))
  done;
  !worst
