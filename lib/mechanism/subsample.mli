(** Privacy amplification by subsampling.

    Running an ε-DP mechanism on a uniformly subsampled fraction
    [q = m/n] of the database is [log(1 + q(e^ε − 1))]-DP with respect
    to the full database — strictly better than ε for q < 1. The
    standard tool for making learning mechanisms cheaper, and
    experiment E13's subject. *)

val amplified_epsilon : epsilon:float -> q:float -> float
(** [log (1 + q·(e^ε − 1))].
    @raise Invalid_argument for ε < 0 or q outside [0, 1]. *)

val required_epsilon : target:float -> q:float -> float
(** Inverse: the base-mechanism ε such that subsampling at rate [q]
    achieves [target]: [log(1 + (e^target − 1)/q)].
    @raise Invalid_argument for target ≤ 0 or q outside (0, 1]. *)

val run_subsampled :
  q:float ->
  base_epsilon:float ->
  mechanism:(int array -> Dp_rng.Prng.t -> 'a) ->
  int array ->
  Dp_rng.Prng.t ->
  'a * Privacy.budget
(** [run_subsampled ~q ~base_epsilon ~mechanism db g] draws a uniform
    subsample of size [⌈q·n⌉] without replacement, applies the
    ε-DP [mechanism] to it, and returns the result with the amplified
    budget. The caller asserts [mechanism] is [base_epsilon]-DP on the
    subsample.
    @raise Invalid_argument for q outside (0, 1]. *)
