open Dp_math

let cauchy ~scale g =
  let scale = Numeric.check_pos "Smooth_sensitivity.cauchy scale" scale in
  scale *. tan (Float.pi *. (Dp_rng.Prng.float g -. 0.5))

(* For the median (lower median, index m = (n-1)/2 of the sorted array)
   of a database over [lo, hi]: changing up to k records can shift the
   median anywhere between order statistics; the local sensitivity at
   distance k is max over t in [0, k+1] of x_{m+t} - x_{m+t-k-1},
   where indices below 0 clamp to lo and above n-1 clamp to hi. *)
let median_local_sensitivity_at_distance ~lo ~hi ~sorted k =
  if k < 0 then
    invalid_arg "Smooth_sensitivity.median_local_sensitivity: negative k";
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Smooth_sensitivity.median_local_sensitivity: empty";
  let get i = if i < 0 then lo else if i >= n then hi else sorted.(i) in
  let m = (n - 1) / 2 in
  let worst = ref 0. in
  for t = 0 to k + 1 do
    worst := Float.max !worst (get (m + t) -. get (m + t - k - 1))
  done;
  !worst

let median_smooth_sensitivity ~beta ~lo ~hi xs =
  let beta = Numeric.check_pos "Smooth_sensitivity.median_smooth beta" beta in
  if lo >= hi then invalid_arg "Smooth_sensitivity.median_smooth: lo >= hi";
  let n = Array.length xs in
  if n = 0 then invalid_arg "Smooth_sensitivity.median_smooth: empty data";
  let sorted = Array.map (Numeric.clamp ~lo ~hi) xs in
  Array.sort compare sorted;
  let s = ref 0. in
  for k = 0 to n do
    let a = median_local_sensitivity_at_distance ~lo ~hi ~sorted k in
    s := Float.max !s (exp (-.beta *. float_of_int k) *. a)
  done;
  !s

let private_median ~epsilon ~lo ~hi xs g =
  let epsilon = Numeric.check_pos "Smooth_sensitivity.private_median epsilon" epsilon in
  let beta = epsilon /. 6. in
  let s = median_smooth_sensitivity ~beta ~lo ~hi xs in
  let median = Dp_stats.Describe.median (Array.map (Numeric.clamp ~lo ~hi) xs) in
  let noise = cauchy ~scale:(6. *. s /. epsilon) g in
  Numeric.clamp ~lo ~hi (median +. noise)
