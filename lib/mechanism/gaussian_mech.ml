open Dp_math

type t = { l2_sensitivity : float; epsilon : float; delta : float }

let create ~l2_sensitivity ~epsilon ~delta =
  if delta <= 0. || delta >= 1. then
    invalid_arg "Gaussian_mech.create: delta must be in (0,1)";
  {
    l2_sensitivity =
      Numeric.check_nonneg "Gaussian_mech.create sensitivity" l2_sensitivity;
    epsilon = Numeric.check_pos "Gaussian_mech.create epsilon" epsilon;
    delta;
  }

let std t =
  if t.l2_sensitivity = 0. then 0.
  else t.l2_sensitivity *. sqrt (2. *. log (1.25 /. t.delta)) /. t.epsilon

let budget t = Privacy.approx ~epsilon:t.epsilon ~delta:t.delta

let release t ~value g =
  let s = std t in
  if s = 0. then value
  else begin
    Draws.record Draws.Gaussian;
    value +. Dp_rng.Sampler.gaussian ~mean:0. ~std:s g
  end

let release_vector t ~value g = Array.map (fun v -> release t ~value:v g) value

let cdf t ~value y =
  let s = std t in
  if s = 0. then (if y >= value then 1. else 0.)
  else Special.std_normal_cdf ((y -. value) /. s)

let log_likelihood_ratio t ~value1 ~value2 y =
  let s = std t in
  if s = 0. then
    invalid_arg
      "Gaussian_mech.log_likelihood_ratio: zero-sensitivity mechanism is \
       deterministic";
  (* closed form: the sqrt(2 pi) s normalizers cancel and the squares
     are expanded before subtracting, so the ratio is exact arbitrarily
     far in the tails (where the densities themselves underflow to 0):
     log N(y; v1, s) - log N(y; v2, s)
       = ((y - v2)^2 - (y - v1)^2) / (2 s^2)
       = (v1 - v2) (2 y - v1 - v2) / (2 s^2).
     Unlike the pure-eps mechanisms this is unbounded in y — the
    (eps, delta) relaxation shows up as outcome mass beyond e^eps. *)
  (value1 -. value2) *. ((2. *. y) -. value1 -. value2) /. (2. *. s *. s)
