open Dp_math

type t = { l2_sensitivity : float; epsilon : float; delta : float }

let create ~l2_sensitivity ~epsilon ~delta =
  if delta <= 0. || delta >= 1. then
    invalid_arg "Gaussian_mech.create: delta must be in (0,1)";
  {
    l2_sensitivity =
      Numeric.check_nonneg "Gaussian_mech.create sensitivity" l2_sensitivity;
    epsilon = Numeric.check_pos "Gaussian_mech.create epsilon" epsilon;
    delta;
  }

let std t =
  if t.l2_sensitivity = 0. then 0.
  else t.l2_sensitivity *. sqrt (2. *. log (1.25 /. t.delta)) /. t.epsilon

let budget t = Privacy.approx ~epsilon:t.epsilon ~delta:t.delta

let release t ~value g =
  let s = std t in
  if s = 0. then value
  else begin
    Draws.record Draws.Gaussian;
    value +. Dp_rng.Sampler.gaussian ~mean:0. ~std:s g
  end

let release_vector t ~value g = Array.map (fun v -> release t ~value:v g) value
