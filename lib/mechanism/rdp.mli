(** Rényi differential privacy accounting.

    A mechanism is (α, ρ)-RDP when the Rényi divergence of order α
    between its output distributions on any neighbouring pair is ≤ ρ.
    RDP composes by addition at fixed α and converts to (ε, δ)-DP via
    [ε = ρ + log(1/δ)/(α−1)] (Mironov 2017) — for many-fold
    composition this is far tighter than both basic and advanced
    composition (experiment E18). The α → ∞ limit recovers pure ε-DP,
    connecting back to the max-divergence view in [Dp_info.Entropy]. *)

type curve = float -> float
(** An RDP curve: α ↦ ρ(α), defined for α > 1. *)

val gaussian : l2_sensitivity:float -> std:float -> curve
(** The Gaussian mechanism: [ρ(α) = α·Δ²/(2σ²)] — exact.
    @raise Invalid_argument for non-positive std or negative Δ. *)

val laplace : sensitivity:float -> epsilon:float -> curve
(** The Laplace mechanism with scale Δ/ε: exact closed form
    [ρ(α) = (1/(α−1))·log( (α/(2α−1))·e^{(α−1)ε} + ((α−1)/(2α−1))·e^{−αε} )].
    Tends to ε as α → ∞. *)

val pure_dp : epsilon:float -> curve
(** Any ε-DP mechanism satisfies [ρ(α) ≤ min(ε, 2αε²)]-ish; we use the
    standard safe bound ρ(α) = ε (valid for all α). *)

val compose : curve list -> curve
(** Addition at each order. *)

val scale : int -> curve -> curve
(** [scale k c] is k-fold composition of the same mechanism. *)

val to_dp : delta:float -> curve -> Privacy.budget
(** Convert to (ε, δ)-DP, optimizing the order over a log-spaced grid
    α ∈ (1, 512]: [ε = min_α ρ(α) + log(1/δ)/(α−1)].
    @raise Invalid_argument for δ outside (0, 1). *)

val gaussian_sgm_epsilon :
  noise_multiplier:float -> steps:int -> delta:float -> float
(** Convenience for DP-SGD with full-batch-sensitivity-1 steps: the ε
    of [steps] compositions of a Gaussian mechanism with σ =
    noise_multiplier·Δ, via {!to_dp}. *)
