(** The sparse vector technique (AboveThreshold): answer a stream of
    sensitivity-1 queries, reporting only whether each noisy answer
    exceeds a noisy threshold, halting after [max_positives] positive
    reports. The privacy cost is paid only for positives — the
    canonical example of a mechanism whose budget does not grow with
    the number of queries asked. *)

type t

type answer = Above | Below

val create :
  epsilon:float ->
  threshold:float ->
  ?max_positives:int ->
  Dp_rng.Prng.t ->
  t
(** [create ~epsilon ~threshold g] initializes AboveThreshold with
    total budget ε (split ε/2 on the threshold, ε/2 across positive
    answers; [max_positives] defaults to 1).
    @raise Invalid_argument for non-positive ε or max_positives. *)

val query : t -> float -> answer option
(** [query t v] processes the (exact) query answer [v]; returns [None]
    once the mechanism has exhausted its positive reports (the caller
    must stop asking). Queries must have sensitivity ≤ 1. *)

val positives_used : t -> int
val is_exhausted : t -> bool
val budget : t -> Privacy.budget
(** The total ε paid regardless of how many queries were asked. *)
