(** Warner's randomized response — the oldest ε-DP mechanism and the
    simplest channel for the information-flow experiments (E7): each
    respondent reports their true bit with probability
    [e^ε / (1 + e^ε)] and lies otherwise. *)

type t

val create : epsilon:float -> t
(** @raise Invalid_argument for non-positive ε. *)

val truth_probability : t -> float
val budget : t -> Privacy.budget

val respond : t -> bool -> Dp_rng.Prng.t -> bool

val respond_database : t -> int array -> Dp_rng.Prng.t -> int array
(** Per-record response over a 0/1 database. *)

val estimate_mean : t -> int array -> float
(** Debiased estimate of the true proportion of 1s from the noisy
    responses: [(p̂ − (1−p)) / (2p − 1)] with [p] the truth
    probability.
    @raise Invalid_argument on the empty database. *)

val channel_matrix : t -> float array array
(** The 2×2 transition matrix [P(response | truth)] — the explicit
    information channel used by [Dp_info.Leakage]. *)
