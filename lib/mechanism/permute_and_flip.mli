(** Permute-and-flip (McKenna–Sheldon 2020): a drop-in replacement for
    the exponential mechanism in private selection whose expected
    quality is NEVER worse at the same ε.

    Walk the candidates in uniformly random order; at candidate u flip
    a coin with bias [exp(ε·(q(u) − qmax)/(2Δq))] where qmax is the
    best quality; release the first head. The walk always terminates (the
    argmax flips a fair coin with bias 1). ε-DP; equals the
    exponential mechanism conditioned on never revisiting candidates,
    which is where the utility gain comes from (experiment E34). *)

type 'a t

val create :
  candidates:'a array ->
  quality:('a -> float) ->
  sensitivity:float ->
  epsilon:float ->
  unit ->
  'a t
(** [epsilon] is the TARGET privacy level (unlike
    [Exponential.create], no 2-factor bookkeeping: the 2Δ is inside
    the flip bias).
    @raise Invalid_argument on empty candidates, non-positive ε or
    sensitivity, or NaN qualities. *)

val sample : 'a t -> Dp_rng.Prng.t -> 'a
(** One draw by direct simulation. *)

val probabilities : 'a t -> float array
(** The exact output distribution by dynamic programming over subsets
    — O(2^k·k), intended for analysis on small candidate sets.
    @raise Invalid_argument when there are more than 20 candidates. *)

val expected_quality : 'a t -> float
(** Exact, via {!probabilities}. *)

val privacy_epsilon : 'a t -> float

val budget : 'a t -> Privacy.budget
