(** Smooth sensitivity (Nissim–Raskhodnikova–Smith 2007).

    Global sensitivity is a worst-case over all databases; for
    functions like the median it is enormous (the full range) even
    when the actual database is insensitive. The β-smooth sensitivity
    [S_β(D) = max_{D'} LS(D')·e^{−β·d(D,D')}] upper-bounds the local
    sensitivity smoothly, and adding Cauchy noise scaled by
    [S_β(D)/ε] (with β = ε/6) gives pure ε-DP. For the median of a
    sorted bounded database the smooth sensitivity is computable
    exactly in O(n²) (O(n·k_max) here with early cutoff). *)

val median_local_sensitivity_at_distance :
  lo:float -> hi:float -> sorted:float array -> int -> float
(** [A(k)]: the largest local sensitivity of the median over databases
    at Hamming distance ≤ k — for the median at index m,
    [max_{t ≤ k+1} (x_{m+t} − x_{m+t−k−1})] with out-of-range indices
    clamped to the domain edges.
    @raise Invalid_argument on unsorted-looking input or k < 0. *)

val median_smooth_sensitivity :
  beta:float -> lo:float -> hi:float -> float array -> float
(** [S_β = max_k e^{−βk}·A(k)] over [k = 0..n]. Data are clamped into
    the domain and sorted internally.
    @raise Invalid_argument on empty data, [lo >= hi], or β ≤ 0. *)

val private_median :
  epsilon:float -> lo:float -> hi:float -> float array -> Dp_rng.Prng.t -> float
(** The NRS mechanism: [median + Cauchy(6·S_{ε/6}/ε)] noise, clamped
    into the domain. Pure ε-DP. *)

val cauchy : scale:float -> Dp_rng.Prng.t -> float
(** Standard Cauchy sampler times [scale] (tan of a uniform angle). *)
