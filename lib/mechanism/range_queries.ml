open Dp_math

type strategy =
  | Flat of float array
  | Hierarchical of { levels : float array array; m : int }
      (* levels.(l).(i): noisy sum of the block [i*2^l, (i+1)*2^l) *)

type t = { strategy : strategy; m : int; epsilon : float }

let check_counts counts =
  let m = Array.length counts in
  if m = 0 then invalid_arg "Range_queries: empty counts";
  m

let flat_release ~epsilon counts g =
  let epsilon = Numeric.check_pos "Range_queries.flat_release epsilon" epsilon in
  let m = check_counts counts in
  let scale = 2. /. epsilon in
  let noisy =
    Array.map
      (fun c -> float_of_int c +. Dp_rng.Sampler.laplace ~mean:0. ~scale g)
      counts
  in
  { strategy = Flat noisy; m; epsilon }

let n_levels m =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 (m - 1) + 1

let hierarchical_release ~epsilon counts g =
  let epsilon =
    Numeric.check_pos "Range_queries.hierarchical_release epsilon" epsilon
  in
  let m = check_counts counts in
  let h = n_levels m in
  let scale = 2. *. float_of_int h /. epsilon in
  let levels =
    Array.init h (fun l ->
        let block = 1 lsl l in
        let blocks = (m + block - 1) / block in
        Array.init blocks (fun i ->
            let lo = i * block and hi = Stdlib.min m ((i + 1) * block) in
            let s = ref 0 in
            for k = lo to hi - 1 do
              s := !s + counts.(k)
            done;
            float_of_int !s +. Dp_rng.Sampler.laplace ~mean:0. ~scale g))
  in
  { strategy = Hierarchical { levels; m }; m; epsilon }

let domain_size t = t.m
let budget t = Privacy.pure t.epsilon

let true_range counts ~lo ~hi =
  if lo < 0 || hi >= Array.length counts || lo > hi then
    invalid_arg "Range_queries.true_range: invalid range";
  let s = ref 0 in
  for i = lo to hi do
    s := !s + counts.(i)
  done;
  !s

(* greedy dyadic decomposition of [lo, hi] (inclusive) *)
let rec decompose acc levels lo hi =
  if lo > hi then acc
  else begin
    (* largest aligned block starting at lo and fitting in [lo, hi] *)
    let max_l = Array.length levels - 1 in
    let rec best l =
      let block = 1 lsl l in
      if l = 0 then 0
      else if lo mod block = 0 && lo + block - 1 <= hi then l
      else best (l - 1)
    in
    let l = best max_l in
    let block = 1 lsl l in
    decompose (levels.(l).(lo / block) :: acc) levels (lo + block) hi
  end

let range_query t ~lo ~hi =
  if lo < 0 || hi >= t.m || lo > hi then
    invalid_arg "Range_queries.range_query: invalid range";
  match t.strategy with
  | Flat noisy ->
      Numeric.float_sum_range (hi - lo + 1) (fun k -> noisy.(lo + k))
  | Hierarchical { levels; _ } ->
      Summation.sum_list (decompose [] levels lo hi)

let expected_flat_std ~epsilon ~range_len =
  let epsilon = Numeric.check_pos "Range_queries.expected_flat_std epsilon" epsilon in
  if range_len <= 0 then invalid_arg "Range_queries.expected_flat_std: range_len <= 0";
  sqrt (float_of_int range_len *. 2. *. Numeric.sq (2. /. epsilon))
