(** The exponential mechanism of McSherry–Talwar (paper §2.1,
    Theorem 2.3).

    Parametrized by a quality function [q(x, u)]; for a fixed input the
    mechanism samples [u] with probability [∝ exp(ε·q(x,u)) · π(u)]
    over a base measure π. In the paper's normalization this gives
    [2εΔq]-differential privacy where [Δq] is the global sensitivity
    of [q].

    The weight exponent [ε] here is the paper's ε (an inverse
    temperature); use {!privacy_epsilon} for the resulting privacy
    level, or {!calibrate_exponent} to hit a target privacy level. The
    Gibbs posterior of Lemma 3.2 is exactly this mechanism with
    [q = −R̂] and [ε = β] (see [Dp_pac_bayes.Gibbs]). *)

type 'a t

val create :
  candidates:'a array ->
  ?log_prior:float array ->
  quality:('a -> float) ->
  sensitivity:float ->
  epsilon:float ->
  unit ->
  'a t
(** [create ~candidates ~quality ~sensitivity ~epsilon ()] builds the
    mechanism for one fixed input dataset ([quality u] is [q(x, u)]
    with [x] already applied). [log_prior] defaults to uniform; it need
    not be normalized.
    @raise Invalid_argument on empty candidates, non-positive ε,
    negative sensitivity, mismatched prior length, or a non-finite
    quality value. *)

val of_qualities :
  candidates:'a array ->
  ?log_prior:float array ->
  qualities:float array ->
  sensitivity:float ->
  epsilon:float ->
  unit ->
  'a t
(** As {!create} but from a precomputed quality vector aligned with
    [candidates] (used when the qualities were already evaluated, e.g.
    by a Gibbs posterior).
    @raise Invalid_argument additionally on a length mismatch. *)

val candidates : 'a t -> 'a array

val log_probabilities : 'a t -> float array
(** Normalized log output distribution. *)

val probabilities : 'a t -> float array

val sample : 'a t -> Dp_rng.Prng.t -> 'a
(** One Gumbel-max draw (no table construction). *)

val sampler : 'a t -> Dp_rng.Prng.t -> unit -> 'a
(** Builds the alias table once; each call of the thunk is O(1). Use
    when drawing many outputs from the same input (ablation A1). *)

val privacy_epsilon : 'a t -> float
(** [2 · ε · Δq], Theorem 2.3's privacy level. *)

val budget : 'a t -> Privacy.budget

val calibrate_exponent : target_epsilon:float -> sensitivity:float -> float
(** The exponent ε achieving a desired privacy level:
    [target / (2Δq)].
    @raise Invalid_argument on non-positive inputs. *)

val expected_quality : 'a t -> float
(** [E_{u∼M} q(x,u)] — the utility the mechanism achieves. *)

val max_quality : 'a t -> float

val utility_bound : 'a t -> failure_prob:float -> float
(** McSherry–Talwar utility: with probability [1 − failure_prob] the
    sampled quality is at least
    [max q − (ln |U| + ln (1/failure_prob)) / ε]. Returns that
    threshold. *)

val log_ratio_bound : 'a t -> 'a t -> float
(** [max_u |log P₁(u) − log P₂(u)|] between two mechanisms over the
    same candidate set — the exact privacy loss between two inputs.
    For mechanisms built from neighbouring datasets this is ≤
    {!privacy_epsilon} (verified in experiment E2/E5).
    @raise Invalid_argument when candidate counts differ. *)
