open Dp_math

type curve = float -> float

let check_alpha alpha =
  if alpha <= 1. then invalid_arg "Rdp: RDP order must be > 1"

let gaussian ~l2_sensitivity ~std =
  let std = Numeric.check_pos "Rdp.gaussian std" std in
  let d = Numeric.check_nonneg "Rdp.gaussian sensitivity" l2_sensitivity in
  fun alpha ->
    check_alpha alpha;
    alpha *. d *. d /. (2. *. std *. std)

let laplace ~sensitivity ~epsilon =
  ignore (Numeric.check_nonneg "Rdp.laplace sensitivity" sensitivity);
  let eps = Numeric.check_pos "Rdp.laplace epsilon" epsilon in
  fun alpha ->
    check_alpha alpha;
    (* Mironov 2017, Table II: Renyi divergence between Lap(b) shifted
       by its scale times eps... closed form for shift = sensitivity,
       scale = sensitivity/eps. *)
    let a = alpha in
    let t1 = log (a /. ((2. *. a) -. 1.)) +. ((a -. 1.) *. eps) in
    let t2 = log ((a -. 1.) /. ((2. *. a) -. 1.)) -. (a *. eps) in
    Logspace.log_sum_exp2 t1 t2 /. (a -. 1.)

let pure_dp ~epsilon =
  let eps = Numeric.check_nonneg "Rdp.pure_dp epsilon" epsilon in
  fun alpha ->
    check_alpha alpha;
    eps

let compose curves alpha = Summation.sum_list (List.map (fun c -> c alpha) curves)

let scale k curve =
  if k <= 0 then invalid_arg "Rdp.scale: k must be positive";
  fun alpha -> float_of_int k *. curve alpha

let alpha_grid =
  (* log-spaced orders in (1, 512] plus a fine low-end *)
  let low = List.init 18 (fun i -> 1.05 +. (0.15 *. float_of_int i)) in
  let high = List.init 24 (fun i -> 4. *. (1.26 ** float_of_int i)) in
  low @ List.filter (fun a -> a <= 512.) high

let to_dp ~delta curve =
  if delta <= 0. || delta >= 1. then
    invalid_arg "Rdp.to_dp: delta must be in (0, 1)";
  let eps =
    List.fold_left
      (fun acc alpha ->
        let e = curve alpha +. (log (1. /. delta) /. (alpha -. 1.)) in
        Float.min acc e)
      infinity alpha_grid
  in
  Privacy.approx ~epsilon:eps ~delta

let gaussian_sgm_epsilon ~noise_multiplier ~steps ~delta =
  let sigma = Numeric.check_pos "Rdp.gaussian_sgm noise_multiplier" noise_multiplier in
  if steps <= 0 then invalid_arg "Rdp.gaussian_sgm_epsilon: steps must be positive";
  let curve = scale steps (gaussian ~l2_sensitivity:1. ~std:sigma) in
  (to_dp ~delta curve).Privacy.epsilon
