open Dp_math

let check name epsilon sensitivity scores =
  ignore (Numeric.check_pos (name ^ " epsilon") epsilon);
  ignore (Numeric.check_nonneg (name ^ " sensitivity") sensitivity);
  if Array.length scores = 0 then invalid_arg (name ^ ": empty scores")

let select ~epsilon ~sensitivity ~scores g =
  check "Noisy_max.select" epsilon sensitivity scores;
  let b = if sensitivity = 0. then 0. else sensitivity /. epsilon in
  let noisy =
    Array.map
      (fun s ->
        if b = 0. then s else s +. Dp_rng.Sampler.laplace ~mean:0. ~scale:b g)
      scores
  in
  Dp_linalg.Vec.argmax noisy

let select_exponential_noise ~epsilon ~sensitivity ~scores g =
  check "Noisy_max.select_exponential_noise" epsilon sensitivity scores;
  let rate = if sensitivity = 0. then infinity else epsilon /. (2. *. sensitivity) in
  let noisy =
    Array.map
      (fun s ->
        if rate = infinity then s else s +. Dp_rng.Sampler.exponential ~rate g)
      scores
  in
  Dp_linalg.Vec.argmax noisy
