(** Propose–test–release (Dwork–Lei 2009): the other classical route
    past global sensitivity.

    To release f(D) with only local-sensitivity noise: privately test
    whether the database is FAR (in Hamming distance) from any
    database whose local sensitivity exceeds a proposed bound b; if
    the noisy distance clears a threshold, release f(D) + Lap(b/ε),
    otherwise refuse (⊥). The refusal branch makes the mechanism
    (ε, δ)-DP rather than pure ε-DP: δ bounds the probability the
    test passes on an unstable database. *)

type 'a outcome = Released of 'a | Refused

val distance_to_instability :
  is_stable:(int -> bool) -> int
(** [distance_to_instability ~is_stable] is the smallest k ≥ 0 with
    [is_stable k = false], probed incrementally ([is_stable k] should
    say whether every database within Hamming distance k keeps the
    property); capped at 10_000. *)

val release_scalar :
  epsilon:float ->
  delta:float ->
  distance:int ->
  local_bound:float ->
  value:float ->
  Dp_rng.Prng.t ->
  float outcome
(** Generic PTR step: [distance] is the (exactly computed) Hamming
    distance from D to the nearest database whose local sensitivity
    exceeds [local_bound]. The test releases iff
    [distance + Lap(1/ε) > log(1/δ)/ε]; on release, adds
    [Lap(local_bound/ε)] to [value]. Total: (2ε, δ)-DP.
    @raise Invalid_argument on non-positive ε, δ outside (0,1),
    negative distance or bound. *)

val private_median :
  epsilon:float ->
  delta:float ->
  lo:float ->
  hi:float ->
  float array ->
  Dp_rng.Prng.t ->
  float outcome
(** PTR for the median on [\[lo, hi\]]: proposes the bound
    b = the median's local sensitivity at distance ⌈log(1/δ)/ε⌉ + 1
    (so stability at the tested radius is guaranteed by construction),
    computes the exact distance to instability, tests, and releases
    with Lap(b/ε) noise. Compare {!Smooth_sensitivity.private_median}:
    PTR gives lighter (Laplace, not Cauchy) tails but pays a δ. *)
