(** Local differential privacy: each individual randomizes their own
    record before it leaves their hands (no trusted curator). The
    binary case is Warner's randomized response
    ({!Randomized_response}); this module adds the k-ary protocols and
    their frequency oracles, the standard local-model workload
    (experiment E24).

    Both protocols are ε-LDP per record; the curator debiases the
    aggregated reports into frequency estimates. *)

(** Generalized randomized response (direct encoding): report the true
    value with probability [e^ε/(e^ε + k − 1)], otherwise a uniform
    other value. Best at small k. *)
module Grr : sig
  type t

  val create : epsilon:float -> k:int -> t
  (** @raise Invalid_argument for non-positive ε or k < 2. *)

  val truth_probability : t -> float

  val respond : t -> int -> Dp_rng.Prng.t -> int
  (** @raise Invalid_argument for a value outside [0, k). *)

  val estimate_frequencies : t -> int array -> float array
  (** Debiased frequency estimates from the reports (may be slightly
      negative / above 1; clamp if needed downstream).
      @raise Invalid_argument on empty reports or out-of-range
      values. *)

  val budget : t -> Privacy.budget
end

(** Symmetric unary encoding (basic RAPPOR): encode the value as a
    one-hot bit vector and flip each bit independently with
    probability [1/(e^{ε/2} + 1)]. Error independent of k — wins for
    large alphabets. *)
module Unary : sig
  type t

  val create : epsilon:float -> k:int -> t
  (** @raise Invalid_argument for non-positive ε or k < 2. *)

  val keep_probability : t -> float
  (** Probability a bit is transmitted unflipped: [e^{ε/2}/(e^{ε/2}+1)]. *)

  val respond : t -> int -> Dp_rng.Prng.t -> bool array

  val estimate_frequencies : t -> bool array array -> float array
  (** @raise Invalid_argument on empty or mis-sized reports. *)

  val budget : t -> Privacy.budget
end

val expected_l2_error_grr : epsilon:float -> k:int -> n:int -> float
(** Analytic per-cell standard error of the GRR estimator at uniform
    truth ≈ [sqrt(k − 2 + e^ε) / ((e^ε − 1) · sqrt n)] — the scaling
    law E24 verifies. *)
