(** Private range queries over a histogram domain: flat noise vs the
    hierarchical strategy (Hay et al. 2010).

    A domain of [m] buckets with integer counts; the workload is all
    range sums. Flat: noise every bucket once, answer ranges by
    summation — error grows linearly with range length. Hierarchical:
    noise every node of a binary interval tree (splitting the budget
    across levels — each level is a partition of the domain, so levels
    compose sequentially and nodes within a level in parallel); any
    range decomposes into O(log m) nodes — error polylog in the range
    length. Experiment E31. *)

type t

val flat_release : epsilon:float -> int array -> Dp_rng.Prng.t -> t
(** ε-DP: Laplace(2/ε) per bucket (replacement moves one unit between
    two buckets: per-partition sensitivity 2).
    @raise Invalid_argument on empty counts or non-positive ε. *)

val hierarchical_release : epsilon:float -> int array -> Dp_rng.Prng.t -> t
(** ε-DP: the budget splits evenly across the [⌈log₂ m⌉ + 1] tree
    levels; each node gets Laplace(2·levels/ε). *)

val range_query : t -> lo:int -> hi:int -> float
(** Private answer to [Σ counts.(lo..hi)] (inclusive).
    @raise Invalid_argument on an invalid range. *)

val domain_size : t -> int
val budget : t -> Privacy.budget

val true_range : int array -> lo:int -> hi:int -> int
(** Non-private comparison point. *)

val expected_flat_std : epsilon:float -> range_len:int -> float
(** Analytic std of the flat answer: [sqrt(range_len · 2·(2/ε)²)]. *)
