(** The Laplace mechanism (paper Theorem 2.2, Dwork et al. 2006).

    [M(D) = f(D) + Lap(Δf/ε)] is ε-differentially private. Alongside
    the sampler this module exposes the output density and CDF so the
    DP inequality can be checked in closed form (experiment E1 compares
    the closed form against empirical frequencies). *)

type t = { sensitivity : float; epsilon : float }

val create : sensitivity:float -> epsilon:float -> t
(** @raise Invalid_argument for non-positive ε or negative Δf. *)

val scale : t -> float
(** The noise scale [Δf/ε]. *)

val budget : t -> Privacy.budget

val release : t -> value:float -> Dp_rng.Prng.t -> float
(** Noisy release of a query value. *)

val release_vector : t -> value:float array -> Dp_rng.Prng.t -> float array
(** Adds independent Laplace noise per coordinate; [sensitivity] must
    then be the L1 sensitivity of the vector query. *)

val density : t -> value:float -> float -> float
(** [density m ~value y]: output density at [y] when the true query
    value is [value]. *)

val cdf : t -> value:float -> float -> float

val log_likelihood_ratio : t -> value1:float -> value2:float -> float -> float
(** Log of the output-density ratio at one point for two adjacent true
    values — bounded by [ε/Δf · |value1 − value2|], with equality
    structure used by the privacy auditor. Computed in closed form
    [(|y − value2| − |y − value1|)/b], so it stays exact arbitrarily
    far in the tails (where the densities themselves underflow to 0).
    @raise Invalid_argument on a zero-sensitivity (deterministic)
    mechanism. *)

val interval_probability : t -> value:float -> lo:float -> hi:float -> float
(** Exact probability the release lands in [\[lo, hi\]]. *)
