open Dp_math

type 'a outcome = Released of 'a | Refused

let distance_to_instability ~is_stable =
  let rec go k = if k > 10_000 then k else if is_stable k then go (k + 1) else k in
  go 0

let release_scalar ~epsilon ~delta ~distance ~local_bound ~value g =
  let epsilon = Numeric.check_pos "Propose_test_release epsilon" epsilon in
  if delta <= 0. || delta >= 1. then
    invalid_arg "Propose_test_release: delta must be in (0,1)";
  if distance < 0 then invalid_arg "Propose_test_release: negative distance";
  let local_bound =
    Numeric.check_nonneg "Propose_test_release local_bound" local_bound
  in
  let threshold = log (1. /. delta) /. epsilon in
  let noisy_distance =
    float_of_int distance +. Dp_rng.Sampler.laplace ~mean:0. ~scale:(1. /. epsilon) g
  in
  if noisy_distance <= threshold then Refused
  else if local_bound = 0. then Released value
  else
    Released
      (value +. Dp_rng.Sampler.laplace ~mean:0. ~scale:(local_bound /. epsilon) g)

let private_median ~epsilon ~delta ~lo ~hi xs g =
  let epsilon = Numeric.check_pos "Propose_test_release.private_median epsilon" epsilon in
  if delta <= 0. || delta >= 1. then
    invalid_arg "Propose_test_release.private_median: delta must be in (0,1)";
  if lo >= hi then invalid_arg "Propose_test_release.private_median: lo >= hi";
  let n = Array.length xs in
  if n = 0 then invalid_arg "Propose_test_release.private_median: empty data";
  let sorted = Array.map (Numeric.clamp ~lo ~hi) xs in
  Array.sort compare sorted;
  (* propose: the local sensitivity at radius r, with r chosen so the
     stability test can pass *)
  let r = int_of_float (Float.ceil (log (1. /. delta) /. epsilon)) + 1 in
  let bound =
    Smooth_sensitivity.median_local_sensitivity_at_distance ~lo ~hi ~sorted r
  in
  (* distance to instability: the largest k such that every database
     within distance k has local sensitivity <= bound; LS at distance d
     is monotone in d, so test A(k+ ... ) directly *)
  let is_stable k =
    Smooth_sensitivity.median_local_sensitivity_at_distance ~lo ~hi ~sorted
      (k + 1)
    <= bound +. 1e-12
  in
  let distance = distance_to_instability ~is_stable in
  release_scalar ~epsilon ~delta ~distance ~local_bound:bound
    ~value:(Dp_stats.Describe.median sorted)
    g
