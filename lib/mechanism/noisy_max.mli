(** Report-noisy-max: add Laplace([Δ/ε]) noise to each score and
    release the argmax. ε-DP for counting-style scores with
    sensitivity Δ; a practical alternative to the exponential
    mechanism for private selection (compared in E2). *)

val select :
  epsilon:float ->
  sensitivity:float ->
  scores:float array ->
  Dp_rng.Prng.t ->
  int
(** @raise Invalid_argument on an empty score vector or bad
    parameters. *)

val select_exponential_noise :
  epsilon:float ->
  sensitivity:float ->
  scores:float array ->
  Dp_rng.Prng.t ->
  int
(** The one-sided exponential-noise variant, distributionally identical
    to the exponential mechanism with exponent [ε/2] on the same
    scores. *)
