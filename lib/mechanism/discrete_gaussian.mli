(** The discrete Gaussian mechanism (Canonne–Kamath–Steinke 2020):
    noise supported on ℤ with [P(k) ∝ exp(−k²/(2σ²))].

    The integer-valued counterpart of the Gaussian mechanism, as the
    geometric mechanism is of Laplace: exactly samplable (no floating
    point privacy leaks), exactly computable pmf, and Rényi-DP at most
    that of the continuous Gaussian with the same σ —
    [ρ(α) ≤ α·Δ²/(2σ²)] — so it plugs into the {!Rdp} accountant
    unchanged. *)

type t = { sensitivity : int; sigma : float }

val create : sensitivity:int -> sigma:float -> t
(** @raise Invalid_argument for negative sensitivity or σ ≤ 0. *)

val sample_noise : sigma:float -> Dp_rng.Prng.t -> int
(** One exact draw of discrete Gaussian noise via the CKS rejection
    sampler (discrete-Laplace proposals).
    @raise Invalid_argument for σ ≤ 0. *)

val release : t -> value:int -> Dp_rng.Prng.t -> int

val pmf : t -> int -> float
(** Exact noise pmf at an offset (series-normalized to ~1e-12). *)

val log_likelihood_ratio : t -> value1:int -> value2:int -> int -> float
(** Exact privacy loss at one output for two true values: the series
    normalizer cancels, leaving [((k−v2)² − (k−v1)²)/(2σ²)] — computed
    in expanded integer form so it stays exact arbitrarily far in the
    tails (where the pmfs underflow to 0). Like the continuous
    Gaussian the loss is unbounded in [k]; the harness compares the
    outcome mass beyond [e^ε] against the δ of {!budget}. At
    sensitivity 0 the point-mass limits apply (0, ±∞, or nan). *)

val rdp : t -> Rdp.curve
(** The mechanism's RDP curve [α ↦ α·Δ²/(2σ²)] (a valid upper bound
    per CKS). *)

val budget : t -> delta:float -> Privacy.budget
(** (ε, δ) via the RDP conversion. *)
