open Dp_math

type t = { sensitivity : int; sigma : float }

let create ~sensitivity ~sigma =
  if sensitivity < 0 then
    invalid_arg "Discrete_gaussian.create: negative sensitivity";
  { sensitivity; sigma = Numeric.check_pos "Discrete_gaussian.create sigma" sigma }

(* CKS 2020, Algorithm 1: propose from a two-sided geometric
   (discrete Laplace) with scale t ~ sigma, accept with probability
   exp(-(|y| - sigma^2/t)^2 / (2 sigma^2)). *)
let sample_noise ~sigma g =
  let sigma = Numeric.check_pos "Discrete_gaussian.sample_noise sigma" sigma in
  let t = Float.floor sigma +. 1. in
  let rec draw () =
    let y = Dp_rng.Sampler.discrete_laplace ~scale:t g in
    let fy = float_of_int (abs y) in
    let accept_log =
      -.Numeric.sq (fy -. (sigma *. sigma /. t)) /. (2. *. sigma *. sigma)
    in
    if log (Dp_rng.Prng.float_pos g) < accept_log then y else draw ()
  in
  draw ()

let release t ~value g =
  if t.sensitivity = 0 then value
  else begin
    Draws.record Draws.Discrete_gaussian;
    value + sample_noise ~sigma:t.sigma g
  end

let pmf t k =
  let s2 = 2. *. t.sigma *. t.sigma in
  (* normalizer: 1 + 2 sum_{j>=1} exp(-j^2 / s2); terms decay fast *)
  let z = ref 1. and j = ref 1 in
  let continue_ = ref true in
  while !continue_ do
    let term = exp (-.float_of_int (!j * !j) /. s2) in
    z := !z +. (2. *. term);
    if term < 1e-16 || !j > 10_000 then continue_ := false;
    incr j
  done;
  exp (-.float_of_int (k * k) /. s2) /. !z

let log_likelihood_ratio t ~value1 ~value2 k =
  if t.sensitivity = 0 then
    (* deterministic point masses: the same 0 / ±inf / nan limits the
       geometric mechanism keeps at sensitivity 0 *)
    match (k = value1, k = value2) with
    | true, true -> 0.
    | true, false -> infinity
    | false, true -> neg_infinity
    | false, false -> nan
  else
    (* closed form: log pmf(k | v) = -(k - v)^2 / (2 sigma^2) - log Z,
       the series normalizer Z cancels, and the squares are expanded
       before subtracting — exact at any distance from the true values,
       where the pmfs themselves underflow to 0 *)
    float_of_int
      (((k - value2) * (k - value2)) - ((k - value1) * (k - value1)))
    /. (2. *. t.sigma *. t.sigma)

let rdp t =
  Rdp.gaussian ~l2_sensitivity:(float_of_int t.sensitivity) ~std:t.sigma

let budget t ~delta = Rdp.to_dp ~delta (rdp t)
