open Dp_math

type budget = { epsilon : float; delta : float }

let pure epsilon =
  { epsilon = Numeric.check_nonneg "Privacy.pure epsilon" epsilon; delta = 0. }

let approx ~epsilon ~delta =
  {
    epsilon = Numeric.check_nonneg "Privacy.approx epsilon" epsilon;
    delta = Numeric.check_prob "Privacy.approx delta" delta;
  }

let compose a b = { epsilon = a.epsilon +. b.epsilon; delta = a.delta +. b.delta }

let compose_list = List.fold_left compose { epsilon = 0.; delta = 0. }

let parallel = function
  | [] -> invalid_arg "Privacy.parallel: empty list"
  | b :: rest ->
      List.fold_left
        (fun acc x ->
          {
            epsilon = Float.max acc.epsilon x.epsilon;
            delta = Float.max acc.delta x.delta;
          })
        b rest

let group ~k b =
  if k <= 0 then invalid_arg "Privacy.group: k must be positive";
  let kf = float_of_int k in
  {
    epsilon = kf *. b.epsilon;
    delta = Float.min 1. (kf *. exp ((kf -. 1.) *. b.epsilon) *. b.delta);
  }

let advanced_compose ~k ~delta_slack b =
  if k <= 0 then invalid_arg "Privacy.advanced_compose: k must be positive";
  if delta_slack <= 0. || delta_slack >= 1. then
    invalid_arg "Privacy.advanced_compose: slack must be in (0,1)";
  let eps = b.epsilon and kf = float_of_int k in
  let eps' =
    (eps *. sqrt (2. *. kf *. log (1. /. delta_slack)))
    +. (kf *. eps *. (exp eps -. 1.))
  in
  { epsilon = eps'; delta = (kf *. b.delta) +. delta_slack }

let scale_noise_for ~epsilon ~sensitivity =
  let epsilon = Numeric.check_pos "Privacy.scale_noise_for epsilon" epsilon in
  let sensitivity =
    Numeric.check_nonneg "Privacy.scale_noise_for sensitivity" sensitivity
  in
  sensitivity /. epsilon

let pp_budget fmt b =
  if b.delta = 0. then Format.fprintf fmt "%g-DP" b.epsilon
  else Format.fprintf fmt "(%g, %g)-DP" b.epsilon b.delta

exception Budget_exceeded of { requested : budget; remaining : budget }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { requested; remaining } ->
        Some
          (Format.asprintf
             "Privacy.Budget_exceeded: requested %a with only %a remaining"
             pp_budget requested pp_budget remaining)
    | _ -> None)

module Accountant = struct
  type t = { total : budget; mutable used : budget }

  let create ~total = { total; used = { epsilon = 0.; delta = 0. } }

  let can_afford t b =
    t.used.epsilon +. b.epsilon <= t.total.epsilon +. 1e-12
    && t.used.delta +. b.delta <= t.total.delta +. 1e-15

  let remaining t =
    {
      epsilon = Float.max 0. (t.total.epsilon -. t.used.epsilon);
      delta = Float.max 0. (t.total.delta -. t.used.delta);
    }

  let spend t b =
    if not (can_afford t b) then
      raise (Budget_exceeded { requested = b; remaining = remaining t });
    t.used <- compose t.used b

  let spent t = t.used
end
