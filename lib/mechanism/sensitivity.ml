let count () = 1.

let bounded_sum ~lo ~hi =
  if lo > hi then invalid_arg "Sensitivity.bounded_sum: lo > hi";
  hi -. lo

let bounded_mean ~lo ~hi ~n =
  if n <= 0 then invalid_arg "Sensitivity.bounded_mean: n must be positive";
  bounded_sum ~lo ~hi /. float_of_int n

let histogram () = 2.

let empirical_risk ~loss_range ~n =
  if n <= 0 then invalid_arg "Sensitivity.empirical_risk: n must be positive";
  let loss_range =
    Dp_math.Numeric.check_nonneg "Sensitivity.empirical_risk loss_range"
      loss_range
  in
  loss_range /. float_of_int n

let estimate_scalar ~f ~databases ~universe =
  if universe <= 0 then
    invalid_arg "Sensitivity.estimate_scalar: universe must be positive";
  let worst = ref 0. in
  Array.iter
    (fun db ->
      let fd = f db in
      Array.iteri
        (fun i _ ->
          for v = 0 to universe - 1 do
            if v <> db.(i) then begin
              let d' = Array.copy db in
              d'.(i) <- v;
              worst := Float.max !worst (Float.abs (fd -. f d'))
            end
          done)
        db)
    databases;
  !worst
