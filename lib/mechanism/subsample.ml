open Dp_math

let amplified_epsilon ~epsilon ~q =
  let epsilon = Numeric.check_nonneg "Subsample.amplified_epsilon epsilon" epsilon in
  let q = Numeric.check_prob "Subsample.amplified_epsilon q" q in
  Float.log1p (q *. Float.expm1 epsilon)

let required_epsilon ~target ~q =
  let target = Numeric.check_pos "Subsample.required_epsilon target" target in
  let q = Numeric.check_prob "Subsample.required_epsilon q" q in
  if q = 0. then invalid_arg "Subsample.required_epsilon: q must be positive";
  Float.log1p (Float.expm1 target /. q)

let run_subsampled ~q ~base_epsilon ~mechanism db g =
  let q = Numeric.check_prob "Subsample.run_subsampled q" q in
  if q = 0. then invalid_arg "Subsample.run_subsampled: q must be positive";
  let n = Array.length db in
  if n = 0 then invalid_arg "Subsample.run_subsampled: empty database";
  let m = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  let idx = Dp_rng.Sampler.sample_without_replacement ~k:m n g in
  let sub = Array.map (fun i -> db.(i)) idx in
  let result = mechanism sub g in
  (result, Privacy.pure (amplified_epsilon ~epsilon:base_epsilon ~q))
