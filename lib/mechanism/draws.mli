(** Process-wide noise-draw counters, one per mechanism family.

    Every sampling site in [lib/mechanism] calls [record] when it
    actually consumes randomness (deterministic zero-sensitivity paths
    do not count). Draws, not queries: a vector release counts once per
    component, a rejection sampler once per accepted sample. The engine
    observability layer snapshots these into its exported metrics. *)

type kind =
  | Laplace
  | Geometric
  | Gaussian
  | Discrete_gaussian
  | Exponential
  | Randomized_response

val record : kind -> unit
val count : kind -> int
val name : kind -> string
val all : kind array

val snapshot : unit -> (string * int) list
(** [(name, count)] pairs in a fixed order. *)

val total : unit -> int

val reset : unit -> unit
(** Zero all counters (tests only — counters are process-global). *)
