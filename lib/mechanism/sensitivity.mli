(** Global sensitivity (Definition 2.2 of the paper):
    [Δf = max over neighbours D,D' of ‖f(D) − f(D')‖₁]. *)

val count : unit -> float
(** A 0/1 counting query changes by at most 1. *)

val bounded_sum : lo:float -> hi:float -> float
(** Sum of records confined to [\[lo, hi\]]: sensitivity [hi − lo]
    under the replace-one-record neighbour relation.
    @raise Invalid_argument when [lo > hi]. *)

val bounded_mean : lo:float -> hi:float -> n:int -> float
(** Mean over exactly [n] records in [\[lo, hi\]]: [(hi − lo)/n]. *)

val histogram : unit -> float
(** Replacing one record moves one unit of count between two bins:
    L1 sensitivity 2. *)

val empirical_risk : loss_range:float -> n:int -> float
(** Sensitivity of the empirical risk [R̂(θ) = (1/n) Σ ℓ_θ(zᵢ)] for a
    loss bounded in an interval of width [loss_range]: replacing one
    sample moves R̂ by at most [loss_range / n]. This is the ΔR̂ of the
    paper's Theorem 4.1.
    @raise Invalid_argument on non-positive inputs. *)

val estimate_scalar :
  f:(int array -> float) ->
  databases:int array array ->
  universe:int ->
  float
(** Brute-force lower bound on the sensitivity of a scalar query:
    maximizes [|f D − f D'|] over every provided database and all its
    replace-one neighbours over the given universe. Exact when
    [databases] covers the worst case; used in tests to confirm the
    closed forms above. *)
