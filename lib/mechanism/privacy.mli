(** Privacy budgets and composition accounting.

    Definition 2.1 of the paper: a randomized [f] is ε-differentially
    private when [P(f D ∈ S) <= exp ε · P(f D' ∈ S)] for all
    neighbouring [D, D'] and measurable [S]. This module tracks budgets
    under the basic composition theorems. *)

type budget = { epsilon : float; delta : float }
(** Pure ε-DP is [{epsilon; delta = 0.}]. *)

val pure : float -> budget
(** [pure eps] is ε-DP. @raise Invalid_argument for negative ε. *)

val approx : epsilon:float -> delta:float -> budget
(** (ε,δ)-DP. @raise Invalid_argument for negative components or δ>1. *)

val compose : budget -> budget -> budget
(** Sequential composition: budgets add in both components. *)

val compose_list : budget list -> budget

val parallel : budget list -> budget
(** Parallel composition over disjoint data partitions: the max of the
    budgets. @raise Invalid_argument on the empty list. *)

val group : k:int -> budget -> budget
(** Group privacy: protecting groups of [k] individuals at once scales
    pure ε-DP to [k·ε] (and δ to [k·e^{(k−1)ε}·δ]).
    @raise Invalid_argument when [k <= 0]. *)

val advanced_compose : k:int -> delta_slack:float -> budget -> budget
(** Dwork–Rothblum–Vadhan advanced composition of [k] copies of a pure
    ε-mechanism: [(ε√(2k ln(1/δ')) + kε(eᵉ−1), kδ + δ')].
    @raise Invalid_argument when [k <= 0] or slack outside (0,1). *)

val scale_noise_for : epsilon:float -> sensitivity:float -> float
(** The Laplace scale [Δf/ε] from Theorem 2.2.
    @raise Invalid_argument on non-positive ε or negative sensitivity. *)

val pp_budget : Format.formatter -> budget -> unit

exception Budget_exceeded of { requested : budget; remaining : budget }
(** Raised by {!Accountant.spend} on overdraft. Carries the offending
    request and what was left, so callers (e.g. the serving engine's
    ledger) can reject structurally instead of parsing a message. *)

(** Mutable budget ledger for a sequence of releases. *)
module Accountant : sig
  type t

  val create : total:budget -> t
  val spend : t -> budget -> unit
  (** @raise Budget_exceeded when the spend would exceed the total. *)

  val spent : t -> budget
  val remaining : t -> budget
  val can_afford : t -> budget -> bool
end
