open Dp_math

type t = { sensitivity : int; epsilon : float }

let create ~sensitivity ~epsilon =
  if sensitivity < 0 then
    invalid_arg "Geometric_mech.create: negative sensitivity";
  {
    sensitivity;
    epsilon = Numeric.check_pos "Geometric_mech.create epsilon" epsilon;
  }

let alpha t =
  if t.sensitivity = 0 then 0.
  else exp (-.t.epsilon /. float_of_int t.sensitivity)

let budget t = Privacy.pure t.epsilon

let release t ~value g =
  if t.sensitivity = 0 then value
  else begin
    (* two-sided geometric with decay alpha: difference of two
       geometric(1 - alpha) draws *)
    let scale = float_of_int t.sensitivity /. t.epsilon in
    Draws.record Draws.Geometric;
    value + Dp_rng.Sampler.discrete_laplace ~scale g
  end

let pmf t ~value k =
  let a = alpha t in
  if a = 0. then (if k = value then 1. else 0.)
  else (1. -. a) /. (1. +. a) *. (a ** float_of_int (abs (k - value)))

let log_likelihood_ratio t ~value1 ~value2 k =
  if t.sensitivity = 0 then
    (* deterministic point masses: keep the 0 / ±inf / nan limits the
       log-of-pmf form had *)
    match (k = value1, k = value2) with
    | true, true -> 0.
    | true, false -> infinity
    | false, true -> neg_infinity
    | false, false -> nan
  else
    (* closed form: log pmf(k|v) = log((1-a)/(1+a)) + |k-v| log a, the
       normalizers cancel, and log a = -eps/sensitivity exactly — no
       underflow however far k is from the values *)
    float_of_int (abs (k - value2) - abs (k - value1))
    *. t.epsilon /. float_of_int t.sensitivity

let truncated_distribution t ~value ~lo ~hi =
  if lo > hi then invalid_arg "Geometric_mech.truncated_distribution: lo > hi";
  let a = alpha t in
  let width = hi - lo + 1 in
  let out = Array.init width (fun i -> pmf t ~value (lo + i)) in
  (* fold the tails onto the endpoints: tail mass below lo is
     a^{value-lo+1}... computed exactly via the geometric series *)
  let tail_mass d =
    (* P(output <= value - d) for d >= 1 = a^d / (1 + a) *)
    if a = 0. then 0. else (a ** float_of_int d) /. (1. +. a)
  in
  (* bin lo collects P(output <= lo), bin hi collects P(output >= hi);
     by symmetry P(output >= value + d) = tail_mass d for d >= 1. *)
  (if value >= lo then out.(0) <- out.(0) +. tail_mass (value - lo + 1)
   else out.(0) <- 1. -. tail_mass (lo + 1 - value));
  (if value <= hi then
     out.(width - 1) <- out.(width - 1) +. tail_mass (hi - value + 1)
   else out.(width - 1) <- 1. -. tail_mass (value - hi + 1));
  out
