type t = { epsilon : float; p_truth : float }

let create ~epsilon =
  let epsilon = Dp_math.Numeric.check_pos "Randomized_response.create" epsilon in
  { epsilon; p_truth = exp epsilon /. (1. +. exp epsilon) }

let truth_probability t = t.p_truth

let budget t = Privacy.pure t.epsilon

let respond t bit g =
  Draws.record Draws.Randomized_response;
  if Dp_rng.Sampler.bernoulli ~p:t.p_truth g then bit else not bit

let respond_database t db g =
  Array.map (fun b -> if respond t (b = 1) g then 1 else 0) db

let estimate_mean t responses =
  let n = Array.length responses in
  if n = 0 then invalid_arg "Randomized_response.estimate_mean: empty database";
  let p_hat =
    float_of_int (Array.fold_left ( + ) 0 responses) /. float_of_int n
  in
  let p = t.p_truth in
  (p_hat -. (1. -. p)) /. ((2. *. p) -. 1.)

let channel_matrix t =
  let p = t.p_truth in
  [| [| p; 1. -. p |]; [| 1. -. p; p |] |]
