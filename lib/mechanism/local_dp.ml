open Dp_math

module Grr = struct
  type t = { epsilon : float; k : int; p : float }

  let create ~epsilon ~k =
    let epsilon = Numeric.check_pos "Local_dp.Grr.create epsilon" epsilon in
    if k < 2 then invalid_arg "Local_dp.Grr.create: k must be >= 2";
    let p = exp epsilon /. (exp epsilon +. float_of_int (k - 1)) in
    { epsilon; k; p }

  let truth_probability t = t.p

  let respond t v g =
    if v < 0 || v >= t.k then invalid_arg "Local_dp.Grr.respond: value out of range";
    if Dp_rng.Sampler.bernoulli ~p:t.p g then v
    else begin
      (* uniform over the k-1 other values *)
      let r = Dp_rng.Prng.int g (t.k - 1) in
      if r >= v then r + 1 else r
    end

  let estimate_frequencies t reports =
    let n = Array.length reports in
    if n = 0 then invalid_arg "Local_dp.Grr.estimate_frequencies: empty reports";
    let counts = Array.make t.k 0. in
    Array.iter
      (fun v ->
        if v < 0 || v >= t.k then
          invalid_arg "Local_dp.Grr.estimate_frequencies: value out of range";
        counts.(v) <- counts.(v) +. 1.)
      reports;
    let q = (1. -. t.p) /. float_of_int (t.k - 1) in
    Array.map
      (fun c ->
        let observed = c /. float_of_int n in
        (observed -. q) /. (t.p -. q))
      counts

  let budget t = Privacy.pure t.epsilon
end

module Unary = struct
  type t = { epsilon : float; k : int; keep : float }

  let create ~epsilon ~k =
    let epsilon = Numeric.check_pos "Local_dp.Unary.create epsilon" epsilon in
    if k < 2 then invalid_arg "Local_dp.Unary.create: k must be >= 2";
    let e2 = exp (epsilon /. 2.) in
    { epsilon; k; keep = e2 /. (e2 +. 1.) }

  let keep_probability t = t.keep

  let respond t v g =
    if v < 0 || v >= t.k then invalid_arg "Local_dp.Unary.respond: value out of range";
    Array.init t.k (fun i ->
        let bit = i = v in
        if Dp_rng.Sampler.bernoulli ~p:t.keep g then bit else not bit)

  let estimate_frequencies t reports =
    let n = Array.length reports in
    if n = 0 then invalid_arg "Local_dp.Unary.estimate_frequencies: empty reports";
    let counts = Array.make t.k 0. in
    Array.iter
      (fun r ->
        if Array.length r <> t.k then
          invalid_arg "Local_dp.Unary.estimate_frequencies: mis-sized report";
        Array.iteri (fun i b -> if b then counts.(i) <- counts.(i) +. 1.) r)
      reports;
    let p = t.keep and q = 1. -. t.keep in
    Array.map
      (fun c ->
        let observed = c /. float_of_int n in
        (observed -. q) /. (p -. q))
      counts

  let budget t = Privacy.pure t.epsilon
end

let expected_l2_error_grr ~epsilon ~k ~n =
  let epsilon = Numeric.check_pos "Local_dp.expected_l2_error_grr epsilon" epsilon in
  if k < 2 then invalid_arg "Local_dp.expected_l2_error_grr: k must be >= 2";
  if n <= 0 then invalid_arg "Local_dp.expected_l2_error_grr: n must be positive";
  sqrt (float_of_int (k - 2) +. exp epsilon)
  /. (Float.expm1 epsilon *. sqrt (float_of_int n))
