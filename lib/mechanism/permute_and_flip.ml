open Dp_math

type 'a t = {
  candidates : 'a array;
  qualities : float array;
  flip : float array; (* acceptance probability per candidate *)
  epsilon : float;
}

let create ~candidates ~quality ~sensitivity ~epsilon () =
  let k = Array.length candidates in
  if k = 0 then invalid_arg "Permute_and_flip.create: empty candidate set";
  let epsilon = Numeric.check_pos "Permute_and_flip.create epsilon" epsilon in
  let sensitivity =
    Numeric.check_pos "Permute_and_flip.create sensitivity" sensitivity
  in
  let qualities =
    Array.map
      (fun u ->
        let q = quality u in
        if Float.is_nan q then invalid_arg "Permute_and_flip.create: NaN quality";
        q)
      candidates
  in
  let qmax = Array.fold_left Float.max neg_infinity qualities in
  let flip =
    Array.map
      (fun q -> exp (epsilon *. (q -. qmax) /. (2. *. sensitivity)))
      qualities
  in
  { candidates; qualities; flip; epsilon }

let sample t g =
  let k = Array.length t.candidates in
  let order = Array.init k Fun.id in
  Dp_rng.Sampler.shuffle order g;
  let rec walk i =
    if i >= k then
      (* cannot happen: the argmax accepts with probability 1, but keep
         a safe fallback for float edge cases *)
      t.candidates.(order.(k - 1))
    else begin
      let u = order.(i) in
      if Dp_rng.Sampler.bernoulli ~p:(Float.min 1. t.flip.(u)) g then
        t.candidates.(u)
      else walk (i + 1)
    end
  in
  walk 0

let probabilities t =
  let k = Array.length t.candidates in
  if k > 20 then
    invalid_arg "Permute_and_flip.probabilities: more than 20 candidates";
  (* memo.(mask).(u) = P(output = u | remaining set = mask), u in mask *)
  let memo = Hashtbl.create 1024 in
  let rec dist mask =
    match Hashtbl.find_opt memo mask with
    | Some d -> d
    | None ->
        let members = ref [] in
        for u = k - 1 downto 0 do
          if mask land (1 lsl u) <> 0 then members := u :: !members
        done;
        let size = float_of_int (List.length !members) in
        let d = Array.make k 0. in
        List.iter
          (fun v ->
            (* v drawn first with prob 1/size *)
            let pv = Float.min 1. t.flip.(v) in
            d.(v) <- d.(v) +. (pv /. size);
            if pv < 1. then begin
              let rest = dist (mask lxor (1 lsl v)) in
              Array.iteri
                (fun u p -> d.(u) <- d.(u) +. ((1. -. pv) /. size *. p))
                rest
            end)
          !members;
        Hashtbl.add memo mask d;
        d
  in
  let full = (1 lsl k) - 1 in
  dist full

let expected_quality t =
  let p = probabilities t in
  Numeric.float_sum_range (Array.length p) (fun i -> p.(i) *. t.qualities.(i))

let privacy_epsilon t = t.epsilon

let budget t = Privacy.pure t.epsilon
