(** The analytic-calibration Gaussian mechanism for (ε, δ)-DP.

    Included as the standard relaxation the paper's pure-ε mechanisms
    are compared against; noise std is the classical
    [σ = Δ₂ √(2 ln(1.25/δ)) / ε] (valid for ε ≤ 1, conservative
    above). *)

type t = { l2_sensitivity : float; epsilon : float; delta : float }

val create : l2_sensitivity:float -> epsilon:float -> delta:float -> t
(** @raise Invalid_argument for non-positive ε, δ outside (0,1), or
    negative sensitivity. *)

val std : t -> float
val budget : t -> Privacy.budget
val release : t -> value:float -> Dp_rng.Prng.t -> float
val release_vector : t -> value:float array -> Dp_rng.Prng.t -> float array

val cdf : t -> value:float -> float -> float
(** Output CDF at [y] when the true query value is [value]. *)

val log_likelihood_ratio : t -> value1:float -> value2:float -> float -> float
(** Log of the output-density ratio at one point for two true values —
    the privacy loss the certification harness tests. Computed in
    closed form [(v1 − v2)(2y − v1 − v2)/(2σ²)] (normalizers cancel,
    squares expanded before subtraction), so it stays exact arbitrarily
    far in the tails where the densities underflow to 0. Unlike the
    pure-ε mechanisms the loss is unbounded in [y]: the (ε, δ)
    relaxation is precisely the outcome mass whose loss exceeds ε.
    @raise Invalid_argument on a zero-sensitivity (deterministic)
    mechanism. *)
