(** The analytic-calibration Gaussian mechanism for (ε, δ)-DP.

    Included as the standard relaxation the paper's pure-ε mechanisms
    are compared against; noise std is the classical
    [σ = Δ₂ √(2 ln(1.25/δ)) / ε] (valid for ε ≤ 1, conservative
    above). *)

type t = { l2_sensitivity : float; epsilon : float; delta : float }

val create : l2_sensitivity:float -> epsilon:float -> delta:float -> t
(** @raise Invalid_argument for non-positive ε, δ outside (0,1), or
    negative sensitivity. *)

val std : t -> float
val budget : t -> Privacy.budget
val release : t -> value:float -> Dp_rng.Prng.t -> float
val release_vector : t -> value:float array -> Dp_rng.Prng.t -> float array
