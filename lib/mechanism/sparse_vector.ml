type answer = Above | Below

type t = {
  epsilon : float;
  max_positives : int;
  noisy_threshold : float;
  positive_scale : float;
  g : Dp_rng.Prng.t;
  mutable used : int;
}

let create ~epsilon ~threshold ?(max_positives = 1) g =
  let epsilon = Dp_math.Numeric.check_pos "Sparse_vector.create epsilon" epsilon in
  if max_positives <= 0 then
    invalid_arg "Sparse_vector.create: max_positives must be positive";
  let threshold_scale = 2. /. epsilon in
  (* epsilon/2 across up to c positives, each a sensitivity-2 event in
     the standard analysis: scale 4c/epsilon. *)
  let positive_scale = 4. *. float_of_int max_positives /. epsilon in
  {
    epsilon;
    max_positives;
    noisy_threshold =
      threshold +. Dp_rng.Sampler.laplace ~mean:0. ~scale:threshold_scale g;
    positive_scale;
    g;
    used = 0;
  }

let is_exhausted t = t.used >= t.max_positives

let query t v =
  if is_exhausted t then None
  else begin
    let noisy = v +. Dp_rng.Sampler.laplace ~mean:0. ~scale:t.positive_scale t.g in
    if noisy >= t.noisy_threshold then begin
      t.used <- t.used + 1;
      Some Above
    end
    else Some Below
  end

let positives_used t = t.used

let budget t = Privacy.pure t.epsilon
