open Dp_math

type t = { sensitivity : float; epsilon : float }

let create ~sensitivity ~epsilon =
  {
    sensitivity = Numeric.check_nonneg "Laplace.create sensitivity" sensitivity;
    epsilon = Numeric.check_pos "Laplace.create epsilon" epsilon;
  }

let scale t =
  if t.sensitivity = 0. then 0. else t.sensitivity /. t.epsilon

let budget t = Privacy.pure t.epsilon

let release t ~value g =
  let b = scale t in
  if b = 0. then value
  else begin
    Draws.record Draws.Laplace;
    value +. Dp_rng.Sampler.laplace ~mean:0. ~scale:b g
  end

let release_vector t ~value g = Array.map (fun v -> release t ~value:v g) value

let density t ~value y =
  let b = scale t in
  if b = 0. then invalid_arg "Laplace.density: zero-sensitivity mechanism is deterministic";
  exp (-.Float.abs (y -. value) /. b) /. (2. *. b)

let cdf t ~value y =
  let b = scale t in
  if b = 0. then (if y >= value then 1. else 0.)
  else begin
    let z = y -. value in
    if z < 0. then 0.5 *. exp (z /. b) else 1. -. (0.5 *. exp (-.z /. b))
  end

let log_likelihood_ratio t ~value1 ~value2 y =
  let b = scale t in
  if b = 0. then
    invalid_arg
      "Laplace.log_likelihood_ratio: zero-sensitivity mechanism is \
       deterministic";
  (* closed form: the log(2b) normalizers cancel, and unlike
     log density - log density it cannot underflow to nan far in the
     tails (where each density rounds to 0) *)
  (Float.abs (y -. value2) -. Float.abs (y -. value1)) /. b

let interval_probability t ~value ~lo ~hi =
  if lo > hi then invalid_arg "Laplace.interval_probability: lo > hi";
  cdf t ~value hi -. cdf t ~value lo
