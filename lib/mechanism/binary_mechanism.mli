(** The binary (tree) mechanism for continual counting
    (Chan–Shi–Song / Dwork–Naor–Pitassi–Rothblum 2010).

    Release the running count of a 0/1 stream at every step under a
    SINGLE ε budget for the whole stream. Each stream position belongs
    to O(log T) dyadic intervals; each interval's partial sum gets
    Laplace(log₂T/ε)-ish noise, and every prefix sum is assembled from
    ≤ log₂T noisy intervals, giving per-release error O(log^{1.5}T/ε)
    instead of the O(T/ε) of re-releasing the count each step. *)

type t

val create : epsilon:float -> horizon:int -> Dp_rng.Prng.t -> t
(** [create ~epsilon ~horizon g] prepares for a stream of at most
    [horizon] items. @raise Invalid_argument on non-positive inputs. *)

val observe : t -> int -> unit
(** Feed the next bit (0 or 1).
    @raise Invalid_argument on other values or past the horizon. *)

val current_count : t -> float
(** The private running count after the items observed so far. *)

val true_count : t -> int
(** The non-private count (for error measurement in experiments). *)

val steps_observed : t -> int
val budget : t -> Privacy.budget

val levels : horizon:int -> int
(** Number of dyadic levels used: the bit length of [horizon], i.e.
    ⌊log₂ horizon⌋ + 1. *)

val expected_noise_std : epsilon:float -> horizon:int -> float
(** Predicted per-release noise std: each of up to L levels
    contributes Laplace(L/ε) noise, so
    [std ≈ sqrt(L) · sqrt(2) · L/ε] with [L = levels ~horizon]. *)
