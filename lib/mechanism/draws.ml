(* Process-wide noise-draw counters, one per mechanism family. The
   mechanisms are pure values with no shared context to thread a
   registry through, so the counters live here as module state; the
   engine's observability layer snapshots them into its global scope.
   Counting draws (not queries) makes vector releases and rejection
   samplers visible: a histogram release bumps Laplace once per cell. *)

type kind =
  | Laplace
  | Geometric
  | Gaussian
  | Discrete_gaussian
  | Exponential
  | Randomized_response

let n_kinds = 6

let index = function
  | Laplace -> 0
  | Geometric -> 1
  | Gaussian -> 2
  | Discrete_gaussian -> 3
  | Exponential -> 4
  | Randomized_response -> 5

let name = function
  | Laplace -> "laplace"
  | Geometric -> "geometric"
  | Gaussian -> "gaussian"
  | Discrete_gaussian -> "discrete_gaussian"
  | Exponential -> "exponential"
  | Randomized_response -> "randomized_response"

let counts = Array.make n_kinds 0

let record k =
  let i = index k in
  counts.(i) <- counts.(i) + 1

let count k = counts.(index k)

let all = [| Laplace; Geometric; Gaussian; Discrete_gaussian; Exponential; Randomized_response |]

let snapshot () = Array.to_list (Array.map (fun k -> (name k, counts.(index k))) all)

let total () = Array.fold_left ( + ) 0 counts

let reset () = Array.fill counts 0 n_kinds 0
