(** The geometric mechanism: the integer-valued analogue of Laplace
    noise for counting queries, [M(D) = f(D) + Δ] with two-sided
    geometric noise [P(Δ = k) ∝ α^{|k|}], [α = e^{−ε/Δf}].

    For integer-valued queries it is universally optimal (Ghosh,
    Roughgarden, Sundararajan 2009) and — unlike discretized Laplace —
    exactly ε-DP with an exactly computable pmf, which makes it the
    cleanest mechanism for closed-form audits. *)

type t = { sensitivity : int; epsilon : float }

val create : sensitivity:int -> epsilon:float -> t
(** @raise Invalid_argument for non-positive ε or negative Δf. *)

val alpha : t -> float
(** The decay [e^{−ε/Δf}]. *)

val budget : t -> Privacy.budget

val release : t -> value:int -> Dp_rng.Prng.t -> int

val pmf : t -> value:int -> int -> float
(** [pmf m ~value k]: exact output probability at [k] when the true
    value is [value]: [(1−α)/(1+α) · α^{|k−value|}]. *)

val log_likelihood_ratio : t -> value1:int -> value2:int -> int -> float
(** Exact privacy-loss at one output; bounded by
    [ε/Δf · |value1 − value2|]. Computed in closed form
    [(|k − value2| − |k − value1|)·ε/Δf] — exact at any distance from
    the true values. At sensitivity 0 the point-mass limits apply
    (0, ±∞, or nan). *)

val truncated_distribution : t -> value:int -> lo:int -> hi:int -> float array
(** The pmf restricted to [\[lo, hi\]] with the outside tails folded
    onto the endpoints (post-processing, hence still ε-DP); sums
    to 1. Used to build exact finite channels from the mechanism.
    @raise Invalid_argument when [lo > hi]. *)
