(** Samplers for the distributions used throughout the library.

    Every sampler takes the generator last so partial application gives
    a reusable thunk. Scale/shape parameters are validated; violations
    raise [Invalid_argument]. *)

val uniform : lo:float -> hi:float -> Prng.t -> float
(** Uniform on [\[lo, hi)]. @raise Invalid_argument if [lo >= hi]. *)

val bernoulli : p:float -> Prng.t -> bool
(** @raise Invalid_argument unless [p ∈ [0,1]]. *)

val binomial : n:int -> p:float -> Prng.t -> int
(** Sum of [n] Bernoulli draws ([n] is small everywhere we use this). *)

val geometric : p:float -> Prng.t -> int
(** Number of failures before the first success, support {0,1,...}.
    @raise Invalid_argument unless [p ∈ (0,1]]. *)

val exponential : rate:float -> Prng.t -> float
(** Exponential with the given rate (mean [1/rate]). *)

val laplace : mean:float -> scale:float -> Prng.t -> float
(** Laplace via inverse CDF: the noise distribution of Dwork et al.'s
    mechanism (paper Thm 2.2 uses [Lap(Δf/ε)]). *)

val gaussian : mean:float -> std:float -> Prng.t -> float
(** Marsaglia polar method. *)

val gaussian_vector : dim:int -> std:float -> Prng.t -> float array
(** Isotropic Gaussian vector. *)

val gamma : shape:float -> scale:float -> Prng.t -> float
(** Marsaglia–Tsang squeeze method (with the shape<1 boost). *)

val beta : a:float -> b:float -> Prng.t -> float

val dirichlet : alpha:float array -> Prng.t -> float array
(** @raise Invalid_argument on empty or non-positive concentration. *)

val categorical : probs:float array -> Prng.t -> int
(** Linear-scan inverse-CDF draw from an explicit probability vector
    (use {!Alias} when drawing many times from one distribution).
    @raise Invalid_argument when probabilities are negative or do not
    sum to ~1. *)

val categorical_log : log_weights:float array -> Prng.t -> int
(** Gumbel-max draw from unnormalized log weights: numerically stable
    one-shot sampling from a Gibbs distribution. *)

val discrete_laplace : scale:float -> Prng.t -> int
(** Two-sided geometric distribution on ℤ with
    [P(k) ∝ exp (-|k| / scale)]: the integer analogue of Laplace noise
    used for count queries. *)

val gamma_vector_direction : dim:int -> Prng.t -> float array
(** Uniform direction on the unit sphere in the given dimension. *)

val laplace_vector_l2 : dim:int -> scale:float -> Prng.t -> float array
(** High-dimensional Laplace with density [∝ exp (-‖x‖₂ / scale)]:
    the noise of Chaudhuri et al.'s output perturbation. Sampled as a
    uniform direction times a Gamma(dim, scale) radius. *)

val shuffle : 'a array -> Prng.t -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : k:int -> int -> Prng.t -> int array
(** [sample_without_replacement ~k n] draws [k] distinct indices from
    [\[0, n)]. @raise Invalid_argument when [k > n] or [k < 0]. *)
