(** Deterministic, splittable pseudo-random generator.

    Xoshiro256** seeded through SplitMix64. Every randomized component
    of the library threads an explicit generator so that experiments
    are reproducible from a single integer seed; {!split} derives
    statistically independent child streams for parallel or per-trial
    use without sharing state. *)

type t

val create : int -> t
(** [create seed] builds a generator deterministically from [seed]. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of [g]'s subsequent output (re-seeded through
    SplitMix64 from fresh output of [g]). *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)] with 53 bits of precision. *)

val float_pos : t -> float
(** Uniform float in [(0, 1)] — never returns 0, safe for [log]. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)] without modulo bias.
    @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool
