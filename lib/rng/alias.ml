type t = {
  prob : float array; (* scaled probability of keeping column i *)
  alias : int array; (* fallback category *)
  probabilities : float array; (* the normalized input, for inspection *)
}

let build probabilities =
  let k = Array.length probabilities in
  let prob = Array.make k 0. and alias = Array.init k Fun.id in
  let scaled = Array.map (fun p -> p *. float_of_int k) probabilities in
  (* Partition into columns below / at-or-above average weight. *)
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i s -> if s < 1. then Stack.push i small else Stack.push i large)
    scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
    if scaled.(l) < 1. then Stack.push l small else Stack.push l large
  done;
  Stack.iter (fun i -> prob.(i) <- 1.) small;
  Stack.iter (fun i -> prob.(i) <- 1.) large;
  { prob; alias; probabilities }

let create weights =
  let k = Array.length weights in
  if k = 0 then invalid_arg "Alias.create: empty weight array";
  Array.iter
    (fun w ->
      if w < 0. || not (Dp_math.Numeric.is_finite w) then
        invalid_arg "Alias.create: negative or non-finite weight")
    weights;
  let total = Dp_math.Summation.sum weights in
  if total <= 0. then invalid_arg "Alias.create: all weights are zero";
  build (Array.map (fun w -> w /. total) weights)

let of_log_weights lw =
  if Array.length lw = 0 then invalid_arg "Alias.of_log_weights: empty array";
  build (Dp_math.Logspace.normalize_log_weights lw)

let sample t g =
  let k = Array.length t.prob in
  let i = Prng.int g k in
  if Prng.float g < t.prob.(i) then i else t.alias.(i)

let probability t i = t.probabilities.(i)

let size t = Array.length t.prob
