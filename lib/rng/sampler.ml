open Dp_math

let uniform ~lo ~hi g =
  if lo >= hi then invalid_arg "Sampler.uniform: requires lo < hi";
  lo +. ((hi -. lo) *. Prng.float g)

let bernoulli ~p g =
  let p = Numeric.check_prob "Sampler.bernoulli p" p in
  Prng.float g < p

let binomial ~n ~p g =
  if n < 0 then invalid_arg "Sampler.binomial: negative n";
  let p = Numeric.check_prob "Sampler.binomial p" p in
  let count = ref 0 in
  for _ = 1 to n do
    if Prng.float g < p then incr count
  done;
  !count

let geometric ~p g =
  let p = Numeric.check_prob "Sampler.geometric p" p in
  if p = 0. then invalid_arg "Sampler.geometric: p must be positive";
  if p = 1. then 0
  else
    let u = Prng.float_pos g in
    int_of_float (Float.floor (log u /. Float.log1p (-.p)))

let exponential ~rate g =
  let rate = Numeric.check_pos "Sampler.exponential rate" rate in
  -.log (Prng.float_pos g) /. rate

let laplace ~mean ~scale g =
  let scale = Numeric.check_pos "Sampler.laplace scale" scale in
  (* Inverse CDF: u uniform on (-1/2, 1/2),
     x = mean - scale * sign(u) * log(1 - 2|u|). *)
  let u = Prng.float_pos g -. 0.5 in
  let s = if u >= 0. then 1. else -1. in
  mean -. (scale *. s *. Float.log1p (-2. *. Float.abs u))

let gaussian ~mean ~std g =
  let std = Numeric.check_nonneg "Sampler.gaussian std" std in
  if std = 0. then mean
  else begin
    (* Marsaglia polar method; the second deviate is discarded to keep
       the sampler stateless. *)
    let rec draw () =
      let u = (2. *. Prng.float g) -. 1. in
      let v = (2. *. Prng.float g) -. 1. in
      let s = (u *. u) +. (v *. v) in
      if s >= 1. || s = 0. then draw ()
      else u *. sqrt (-2. *. log s /. s)
    in
    mean +. (std *. draw ())
  end

let gaussian_vector ~dim ~std g =
  if dim <= 0 then invalid_arg "Sampler.gaussian_vector: dim must be positive";
  Array.init dim (fun _ -> gaussian ~mean:0. ~std g)

let rec gamma ~shape ~scale g =
  let shape = Numeric.check_pos "Sampler.gamma shape" shape in
  let scale = Numeric.check_pos "Sampler.gamma scale" scale in
  if shape < 1. then begin
    (* Boost: Gamma(a) = Gamma(a+1) * U^{1/a}. *)
    let x = gamma ~shape:(shape +. 1.) ~scale:1. g in
    let u = Prng.float_pos g in
    scale *. x *. (u ** (1. /. shape))
  end
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec draw () =
      let x = gaussian ~mean:0. ~std:1. g in
      let v = 1. +. (c *. x) in
      if v <= 0. then draw ()
      else begin
        let v3 = v *. v *. v in
        let u = Prng.float_pos g in
        let x2 = x *. x in
        if u < 1. -. (0.0331 *. x2 *. x2) then d *. v3
        else if log u < (0.5 *. x2) +. (d *. (1. -. v3 +. log v3)) then d *. v3
        else draw ()
      end
    in
    scale *. draw ()
  end

let beta ~a ~b g =
  let x = gamma ~shape:a ~scale:1. g in
  let y = gamma ~shape:b ~scale:1. g in
  x /. (x +. y)

let dirichlet ~alpha g =
  if Array.length alpha = 0 then invalid_arg "Sampler.dirichlet: empty alpha";
  let draws = Array.map (fun a -> gamma ~shape:a ~scale:1. g) alpha in
  let total = Summation.sum draws in
  Array.map (fun x -> x /. total) draws

let categorical ~probs g =
  let k = Array.length probs in
  if k = 0 then invalid_arg "Sampler.categorical: empty probability vector";
  Array.iter
    (fun p ->
      if p < 0. || not (Numeric.is_finite p) then
        invalid_arg "Sampler.categorical: negative probability")
    probs;
  let total = Summation.sum probs in
  if not (Numeric.approx_equal ~rel_tol:1e-6 total 1.) then
    invalid_arg
      (Printf.sprintf "Sampler.categorical: probabilities sum to %g" total);
  let u = Prng.float g *. total in
  let acc = ref 0. and chosen = ref (k - 1) in
  (try
     for i = 0 to k - 1 do
       acc := !acc +. probs.(i);
       if u < !acc then begin
         chosen := i;
         raise Exit
       end
     done
   with Exit -> ());
  !chosen

let categorical_log ~log_weights g =
  let k = Array.length log_weights in
  if k = 0 then invalid_arg "Sampler.categorical_log: empty weights";
  (* Gumbel-max trick: argmax (log w_i + G_i) ~ softmax(log w). *)
  let best = ref (-1) and best_val = ref neg_infinity in
  for i = 0 to k - 1 do
    if log_weights.(i) > neg_infinity then begin
      let gumbel = -.log (-.log (Prng.float_pos g)) in
      let v = log_weights.(i) +. gumbel in
      if v > !best_val then begin
        best_val := v;
        best := i
      end
    end
  done;
  if !best < 0 then invalid_arg "Sampler.categorical_log: all weights are zero";
  !best

let discrete_laplace ~scale g =
  let scale = Numeric.check_pos "Sampler.discrete_laplace scale" scale in
  (* Difference of two geometric draws with p = 1 - exp(-1/scale) is a
     two-sided geometric centred at 0. *)
  let p = -.Float.expm1 (-1. /. scale) in
  let x = geometric ~p g and y = geometric ~p g in
  x - y

let gamma_vector_direction ~dim g =
  if dim <= 0 then invalid_arg "Sampler.gamma_vector_direction: dim must be positive";
  let rec draw () =
    let v = Array.init dim (fun _ -> gaussian ~mean:0. ~std:1. g) in
    let n = sqrt (Summation.sum_map (fun x -> x *. x) v) in
    if n = 0. then draw () else Array.map (fun x -> x /. n) v
  in
  draw ()

let laplace_vector_l2 ~dim ~scale g =
  let scale = Numeric.check_pos "Sampler.laplace_vector_l2 scale" scale in
  let dir = gamma_vector_direction ~dim g in
  let radius = gamma ~shape:(float_of_int dim) ~scale g in
  Array.map (fun x -> x *. radius) dir

let shuffle a g =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int g (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let sample_without_replacement ~k n g =
  if k < 0 || k > n then
    invalid_arg "Sampler.sample_without_replacement: requires 0 <= k <= n";
  let idx = Array.init n Fun.id in
  (* Partial Fisher–Yates: only the first k positions need settling. *)
  for i = 0 to k - 1 do
    let j = i + Prng.int g (n - i) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  Array.sub idx 0 k
