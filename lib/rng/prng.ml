type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let sm = ref seed64 in
  let s0 = splitmix64 sm in
  let s1 = splitmix64 sm in
  let s2 = splitmix64 sm in
  let s3 = splitmix64 sm in
  (* All-zero state is invalid for xoshiro; SplitMix64 cannot produce
     four zero outputs in a row, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let uint64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = of_seed64 (uint64 g)

let float g =
  (* Top 53 bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (uint64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let rec float_pos g =
  let u = float g in
  if u > 0. then u else float_pos g

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec go () =
    let r = Int64.shift_right_logical (uint64 g) 1 in
    (* 63-bit nonneg *)
    let v = Int64.rem r n64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int n64) 1L then go ()
    else Int64.to_int v
  in
  go ()

let bool g = Int64.logand (uint64 g) 1L = 1L
