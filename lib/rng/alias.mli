(** Walker/Vose alias method for O(1) categorical sampling.

    Building the table is O(k); each draw costs one uniform and one
    comparison. This is the sampler behind the exponential mechanism on
    finite ranges, where thousands of draws from the same distribution
    are common (see ablation A1 in DESIGN.md). *)

type t

val create : float array -> t
(** [create weights] preprocesses nonnegative weights (not necessarily
    normalized) into an alias table.
    @raise Invalid_argument when the array is empty, any weight is
    negative or non-finite, or all weights are zero. *)

val of_log_weights : float array -> t
(** Build from unnormalized log weights (stable for extreme scales). *)

val sample : t -> Prng.t -> int
(** Draw a category index. *)

val probability : t -> int -> float
(** The normalized probability of a category (reconstructed from the
    table; exact up to roundoff). *)

val size : t -> int
