(** Risks in the paper's statistical-prediction framework (§2.2).

    A loss [ℓ_θ(z)] maps a predictor and an example to a real value;
    the empirical risk of θ on a sample Ẑ is the average loss, and the
    true risk is the expectation under the unknown distribution Q. *)

val empirical : loss:('theta -> 'z -> float) -> 'z array -> 'theta -> float
(** [R̂_Ẑ(θ) = (1/n) Σ ℓ_θ(zᵢ)].
    @raise Invalid_argument on the empty sample. *)

val empirical_all :
  loss:('theta -> 'z -> float) -> 'z array -> 'theta array -> float array
(** Empirical risk of every predictor on a shared sample. *)

val true_risk_mc :
  loss:('theta -> 'z -> float) ->
  sampler:(Dp_rng.Prng.t -> 'z) ->
  n:int ->
  'theta ->
  Dp_rng.Prng.t ->
  float
(** Monte-Carlo estimate of [R(θ) = E_Z ℓ_θ(Z)] with [n] fresh draws. *)

val sensitivity : loss_lo:float -> loss_hi:float -> n:int -> float
(** Global sensitivity [ΔR̂ = (loss_hi − loss_lo)/n] of the empirical
    risk under replacement of one sample (paper Theorem 4.1).
    @raise Invalid_argument when [loss_lo > loss_hi] or [n <= 0]. *)

val check_bounded :
  loss:('theta -> 'z -> float) ->
  lo:float ->
  hi:float ->
  'z array ->
  'theta array ->
  bool
(** True when every loss value on the given grid lies in [\[lo, hi\]]
    (validation helper for the bounded-loss assumptions). *)
