(** Direct numerical minimization of the PAC-Bayes empirical objective
    over the probability simplex — the independent check of Lemma 3.2
    (experiment E3): the minimizer it finds must coincide with the
    Gibbs posterior.

    The objective [F(ρ) = Σ ρᵢRᵢ + KL(ρ‖π)/β] is convex on the
    simplex; we use exponentiated-gradient (entropic mirror descent),
    whose iterates stay strictly inside the simplex. *)

type result = {
  posterior : float array;
  objective : float;
  iterations : int;
  trace : float list;  (** objective per iteration, oldest first *)
}

val minimize :
  ?step:float ->
  ?tol:float ->
  ?max_iter:int ->
  risks:float array ->
  prior:float array ->
  beta:float ->
  unit ->
  result
(** @raise Invalid_argument on shape mismatch, an invalid prior, or
    non-positive β/step. *)

val objective :
  risks:float array -> prior:float array -> beta:float -> float array -> float
(** [F(ρ)] for an arbitrary posterior (validated). *)
