(** Random-walk Metropolis sampling from continuous Gibbs posteriors.

    On a continuous predictor space Θ ⊂ ℝᵈ the Gibbs posterior
    [∝ π(θ) e^{−β R̂(θ)}] cannot be enumerated; the exponential
    mechanism is realized by MCMC instead (the paper notes the
    mechanism is "not always computationally efficient" — this is the
    standard workaround, used by the private ERM learners in
    [Dp_learn]). Note that a finite chain only approximates the
    mechanism, so the DP guarantee holds exactly only in the limit;
    ablation A3 quantifies the gap. *)

type config = {
  step_std : float;  (** proposal std per coordinate *)
  burn_in : int;
  thin : int;  (** keep every [thin]-th draw *)
}

val default_config : config
(** [{step_std = 0.25; burn_in = 1000; thin = 10}]. *)

type run = {
  samples : float array array;
  acceptance_rate : float;
  log_density : float array -> float;
}

val run :
  ?config:config ->
  log_density:(float array -> float) ->
  init:float array ->
  n_samples:int ->
  Dp_rng.Prng.t ->
  run
(** [run ~log_density ~init ~n_samples g] draws [n_samples] (after
    burn-in, with thinning) from the unnormalized log density.
    @raise Invalid_argument on non-positive [n_samples], empty [init],
    bad config values, or a non-finite initial density. *)

val gibbs_log_density :
  beta:float ->
  empirical_risk:(float array -> float) ->
  ?log_prior:(float array -> float) ->
  unit ->
  float array ->
  float
(** The Gibbs target [−β·R̂(θ) + log π(θ)]; the default prior is the
    standard Gaussian. *)

val posterior_mean : run -> float array
(** Mean of the retained draws. *)

val tv_distance_to_grid :
  run -> grid:float array array -> grid_probs:float array -> float
(** Diagnostic for ablation A3: bin the 1-D (first-coordinate) chain at
    the grid points (nearest neighbour) and return the total-variation
    distance to the exact grid posterior. *)
