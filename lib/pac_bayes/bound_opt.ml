open Dp_math

type result = {
  posterior : float array;
  objective : float;
  iterations : int;
  trace : float list;
}

let objective ~risks ~prior ~beta rho =
  let beta = Numeric.check_pos "Bound_opt.objective beta" beta in
  let rho = Dp_info.Entropy.validate "Bound_opt.objective rho" rho in
  if Array.length rho <> Array.length risks then
    invalid_arg "Bound_opt.objective: length mismatch";
  Numeric.float_sum_range (Array.length risks) (fun i -> rho.(i) *. risks.(i))
  +. (Dp_info.Entropy.kl_divergence rho prior /. beta)

let minimize ?(step = 0.5) ?(tol = 1e-12) ?(max_iter = 20_000) ~risks ~prior
    ~beta () =
  let k = Array.length risks in
  if k = 0 then invalid_arg "Bound_opt.minimize: empty risks";
  let prior = Dp_info.Entropy.validate "Bound_opt.minimize prior" prior in
  if Array.length prior <> k then
    invalid_arg "Bound_opt.minimize: prior length mismatch";
  let beta = Numeric.check_pos "Bound_opt.minimize beta" beta in
  let step = Numeric.check_pos "Bound_opt.minimize step" step in
  Array.iter
    (fun r -> ignore (Numeric.check_finite "Bound_opt.minimize risk" r))
    risks;
  (* Work in log space; start at the prior (interior of the simplex). *)
  let log_prior = Array.map (fun p -> log (Float.max p 1e-300)) prior in
  let log_rho = ref (Array.copy log_prior) in
  let eval lr =
    let rho = Array.map exp lr in
    Numeric.float_sum_range k (fun i -> rho.(i) *. risks.(i))
    +. (Numeric.float_sum_range k (fun i ->
            if rho.(i) > 0. then rho.(i) *. (lr.(i) -. log_prior.(i)) else 0.)
       /. beta)
  in
  let obj = ref (eval !log_rho) in
  let trace = ref [ !obj ] in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    (* Gradient of F at rho: R_i + (log(rho_i/pi_i) + 1)/beta. *)
    let grad =
      Array.init k (fun i ->
          risks.(i) +. ((!log_rho.(i) -. log_prior.(i) +. 1.) /. beta))
    in
    (* EG step with halving on non-descent. *)
    let eta = ref step in
    let improved = ref false in
    let attempts = ref 0 in
    while (not !improved) && !attempts < 50 do
      incr attempts;
      let lw = Array.mapi (fun i l -> l -. (!eta *. grad.(i))) !log_rho in
      let z = Logspace.log_sum_exp lw in
      let cand = Array.map (fun w -> w -. z) lw in
      let c_obj = eval cand in
      if c_obj <= !obj then begin
        if !obj -. c_obj <= tol *. (1. +. Float.abs !obj) then
          converged := true;
        log_rho := cand;
        obj := c_obj;
        improved := true
      end
      else eta := !eta /. 2.
    done;
    if not !improved then converged := true;
    trace := !obj :: !trace
  done;
  {
    posterior = Array.map exp !log_rho;
    objective = !obj;
    iterations = !iterations;
    trace = List.rev !trace;
  }
