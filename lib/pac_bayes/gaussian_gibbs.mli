(** Exact Gibbs-posterior sampling for private regression — the
    direction the paper's §5 announces ("currently investigating
    differentially-private regression ... using PAC-Bayesian bounds").

    For the squared loss the Gibbs posterior is conjugate: with a
    Gaussian prior N(0, σ²I),

    [π̂(θ) ∝ exp(−β R̂(θ)) N(θ; 0, σ²I)]

    is the Gaussian with precision [Λ = (β/n)XᵀX + I/σ²] and mean
    [Λ⁻¹ (β/n) Xᵀy], truncated to the ball ‖θ‖₂ ≤ R. Truncation keeps
    the loss range — and with it the empirical-risk sensitivity —
    bounded, so one draw is exactly
    [2·β·ΔR̂]-DP with [ΔR̂ = (R+1)²/(2n)] for ‖x‖ ≤ 1, |y| ≤ 1
    (Theorem 4.1), and unlike the MCMC realization the sampler is
    EXACT: Cholesky sampling plus rejection into the ball, no chain
    approximation (compare ablation A3). *)

type t

val fit :
  beta:float -> ?prior_std:float -> radius:float -> Dp_dataset.Dataset.t -> t
(** [fit ~beta ~radius d] computes the truncated Gaussian posterior.
    [prior_std] defaults to 1. Features should be clipped to the unit
    ball and labels to [−1, 1] for the privacy accounting to apply.
    @raise Invalid_argument on non-positive parameters. *)

val mean : t -> float array
(** The untruncated posterior mean (the tempered ridge solution). *)

val sample : ?max_attempts:int -> t -> Dp_rng.Prng.t -> float array
(** One exact draw from the truncated posterior (rejection; default
    10_000 attempts).
    @raise Failure when the acceptance region has negligible mass —
    choose a larger radius. *)

val log_density : t -> float array -> float
(** Unnormalized log density (−∞ outside the ball). *)

val loss_range : radius:float -> float
(** The squared-loss range on the ball: [(R+1)²/2]. *)

val calibrate_beta : epsilon:float -> n:int -> radius:float -> float
(** β with [2βΔR̂ = ε]: [ε·n / (R+1)²]. *)

val privacy_epsilon : t -> n:int -> float
(** The ε of one draw: [2·β·(R+1)²/(2n)]. *)

val fit_private :
  epsilon:float ->
  ?prior_std:float ->
  radius:float ->
  Dp_dataset.Dataset.t ->
  Dp_rng.Prng.t ->
  float array * Dp_mechanism.Privacy.budget
(** Calibrate β for the target ε, fit, and release one draw. *)
