(** The paper's Figure 1 made concrete: the information channel
    [Ẑ → θ] whose rows are Gibbs posteriors.

    For a small discrete universe the full sample space of size-n
    tuples can be enumerated, the input distribution Q^n computed
    exactly, and every information-theoretic quantity of §4 evaluated
    in closed form — this is how experiments E5, E6 and E12 verify
    Theorems 4.1 and 4.2 exactly rather than by simulation. *)

type 'theta t = {
  samples : int array array;  (** all size-n tuples over the universe *)
  input : float array;  (** P(Ẑ) = Πᵢ Q(zᵢ) *)
  risk : float array array;  (** risk.(s).(j) = R̂_{samples.(s)}(θⱼ) *)
  channel : Dp_info.Channel.t;  (** rows are Gibbs posteriors *)
  predictors : 'theta array;
  prior : float array;  (** the base measure π (normalized) *)
  beta : float;
}

val build :
  universe_probs:float array ->
  n:int ->
  predictors:'theta array ->
  ?log_prior:float array ->
  beta:float ->
  loss:('theta -> int -> float) ->
  unit ->
  'theta t
(** [build ~universe_probs ~n ~predictors ~beta ~loss ()] enumerates
    all [v^n] samples from a universe of size [v = length
    universe_probs] with record distribution Q = [universe_probs].
    @raise Invalid_argument when the enumeration would exceed the exact
    regime (see [Dp_dataset.Neighbors.all_samples]) or parameters are
    invalid. *)

val neighbor_indices : 'theta t -> int -> int array
(** Indices of the samples at Hamming distance 1 from sample [i] — the
    neighbour relation for {!dp_epsilon}. *)

val mutual_information : 'theta t -> float
(** [I(Ẑ; θ)] of the channel. *)

val expected_empirical_risk : 'theta t -> float

val objective : 'theta t -> float
(** [E R̂ + I/β] — Theorem 4.2's mutual-information objective
    evaluated at this channel. Minimized over all channels only under
    the optimal prior (the paper's §4 assumption); compare against
    [Dp_info.Rate_risk.solve]. *)

val objective_of_channel : 'theta t -> Dp_info.Channel.t -> float
(** The same objective for any other channel over the same spaces.
    @raise Invalid_argument on shape mismatch. *)

val pac_objective : 'theta t -> float
(** The prior-explicit objective [E R̂ + E_Ẑ KL(π̂_Ẑ‖π)/β] with π the
    prior this channel was built from. The Gibbs channel minimizes
    this among ALL channels for its own prior (Lemma 3.2 row by row) —
    the minimality statement E6 verifies without the optimal-prior
    assumption. *)

val pac_objective_of_channel : 'theta t -> Dp_info.Channel.t -> float
(** {!pac_objective} for an arbitrary channel over the same spaces. *)

val dp_epsilon : 'theta t -> float
(** Exact privacy level: max divergence over all neighbouring rows.
    Theorem 4.1 predicts [≤ 2·β·ΔR̂]. *)

val risk_sensitivity : 'theta t -> loss_lo:float -> loss_hi:float -> float
(** [ΔR̂ = (hi − lo)/n] for the bounded loss. *)

val theoretical_epsilon : 'theta t -> loss_lo:float -> loss_hi:float -> float
(** [2·β·ΔR̂]. *)
