open Dp_math

let autocorrelation xs lag =
  let n = Array.length xs in
  if lag < 0 then invalid_arg "Diagnostics.autocorrelation: negative lag";
  if n <= lag + 1 then invalid_arg "Diagnostics.autocorrelation: chain too short";
  let mean = Summation.mean xs in
  let var =
    Numeric.float_sum_range n (fun i -> Numeric.sq (xs.(i) -. mean))
    /. float_of_int n
  in
  if var = 0. then 0.
  else
    Numeric.float_sum_range (n - lag) (fun i ->
        (xs.(i) -. mean) *. (xs.(i + lag) -. mean))
    /. float_of_int n /. var

let effective_sample_size xs =
  let n = Array.length xs in
  if n < 4 then invalid_arg "Diagnostics.effective_sample_size: chain too short";
  (* Geyer's initial positive sequence: sum rho_{2k-1} + rho_{2k}
     pairs while the pair sums stay positive. *)
  let acc = ref 0. in
  let k = ref 1 in
  let continue_ = ref true in
  while !continue_ && (2 * !k) < n - 1 do
    let pair = autocorrelation xs ((2 * !k) - 1) +. autocorrelation xs (2 * !k) in
    if pair > 0. then begin
      acc := !acc +. pair;
      incr k
    end
    else continue_ := false
  done;
  let tau = 1. +. (2. *. !acc) in
  Numeric.clamp ~lo:1. ~hi:(float_of_int n) (float_of_int n /. tau)

let gelman_rubin chains =
  let m = Array.length chains in
  if m < 2 then invalid_arg "Diagnostics.gelman_rubin: need >= 2 chains";
  let n = Array.length chains.(0) in
  if n < 4 then invalid_arg "Diagnostics.gelman_rubin: chains too short";
  Array.iter
    (fun c ->
      if Array.length c <> n then
        invalid_arg "Diagnostics.gelman_rubin: unequal chain lengths")
    chains;
  let nf = float_of_int n and mf = float_of_int m in
  let means = Array.map Summation.mean chains in
  let grand = Summation.mean means in
  let b =
    nf /. (mf -. 1.)
    *. Summation.sum_map (fun mu -> Numeric.sq (mu -. grand)) means
  in
  let w =
    Summation.mean
      (Array.map
         (fun c ->
           let mu = Summation.mean c in
           Summation.sum_map (fun x -> Numeric.sq (x -. mu)) c /. (nf -. 1.))
         chains)
  in
  if w = 0. then 1.
  else begin
    let var_plus = ((nf -. 1.) /. nf *. w) +. (b /. nf) in
    sqrt (var_plus /. w)
  end

let summarize run ~coordinate =
  let xs = Array.map (fun s -> s.(coordinate)) run.Mcmc.samples in
  (`Ess (effective_sample_size xs), `Mean (Summation.mean xs))
