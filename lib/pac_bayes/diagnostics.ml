open Dp_math

let check_no_nan who chains =
  Array.iter
    (fun c ->
      Array.iter
        (fun x -> if Float.is_nan x then invalid_arg (who ^ ": chain contains NaN"))
        c)
    chains

let autocorrelation xs lag =
  let n = Array.length xs in
  if lag < 0 then invalid_arg "Diagnostics.autocorrelation: negative lag";
  if n <= lag + 1 then invalid_arg "Diagnostics.autocorrelation: chain too short";
  let mean = Summation.mean xs in
  let var =
    Numeric.float_sum_range n (fun i -> Numeric.sq (xs.(i) -. mean))
    /. float_of_int n
  in
  if var = 0. then 0.
  else
    Numeric.float_sum_range (n - lag) (fun i ->
        (xs.(i) -. mean) *. (xs.(i + lag) -. mean))
    /. float_of_int n /. var

let effective_sample_size xs =
  let n = Array.length xs in
  if n < 4 then invalid_arg "Diagnostics.effective_sample_size: chain too short";
  check_no_nan "Diagnostics.effective_sample_size" [| xs |];
  (* Geyer's initial positive sequence: sum rho_{2k-1} + rho_{2k}
     pairs while the pair sums stay positive. *)
  let acc = ref 0. in
  let k = ref 1 in
  let continue_ = ref true in
  while !continue_ && (2 * !k) < n - 1 do
    let pair = autocorrelation xs ((2 * !k) - 1) +. autocorrelation xs (2 * !k) in
    if pair > 0. then begin
      acc := !acc +. pair;
      incr k
    end
    else continue_ := false
  done;
  let tau = 1. +. (2. *. !acc) in
  Numeric.clamp ~lo:1. ~hi:(float_of_int n) (float_of_int n /. tau)

let gelman_rubin chains =
  let m = Array.length chains in
  if m < 2 then invalid_arg "Diagnostics.gelman_rubin: need >= 2 chains";
  let n = Array.length chains.(0) in
  if n < 4 then invalid_arg "Diagnostics.gelman_rubin: chains too short";
  Array.iter
    (fun c ->
      if Array.length c <> n then
        invalid_arg "Diagnostics.gelman_rubin: unequal chain lengths")
    chains;
  let nf = float_of_int n and mf = float_of_int m in
  let means = Array.map Summation.mean chains in
  let grand = Summation.mean means in
  let b =
    nf /. (mf -. 1.)
    *. Summation.sum_map (fun mu -> Numeric.sq (mu -. grand)) means
  in
  let w =
    Summation.mean
      (Array.map
         (fun c ->
           let mu = Summation.mean c in
           Summation.sum_map (fun x -> Numeric.sq (x -. mu)) c /. (nf -. 1.))
         chains)
  in
  if w = 0. then 1.
  else begin
    let var_plus = ((nf -. 1.) /. nf *. w) +. (b /. nf) in
    sqrt (var_plus /. w)
  end

(* ------------------------------------------------------------------ *)
(* Rank-normalized split statistics (Vehtari et al. 2021) *)

let check_rect who min_len chains =
  let m = Array.length chains in
  if m < 1 then invalid_arg (who ^ ": need >= 1 chain");
  let n = Array.length chains.(0) in
  if n < min_len then invalid_arg (who ^ ": chains too short");
  Array.iter
    (fun c ->
      if Array.length c <> n then invalid_arg (who ^ ": unequal chain lengths"))
    chains;
  check_no_nan who chains;
  (m, n)

let rank_normalize chains =
  let m, n = check_rect "Diagnostics.rank_normalize" 1 chains in
  let s = m * n in
  (* Pool all draws, rank them with ties averaged, and push the
     fractional rank (r − 3/8)/(S + 1/4) through the normal quantile. *)
  let flat = Array.make s (0., 0) in
  Array.iteri
    (fun ci c -> Array.iteri (fun i x -> flat.((ci * n) + i) <- (x, (ci * n) + i)) c)
    chains;
  Array.sort (fun (a, _) (b, _) -> compare a b) flat;
  let ranks = Array.make s 0. in
  let i = ref 0 in
  while !i < s do
    (* [i, j) is a run of tied values sharing the average rank *)
    let j = ref (!i + 1) in
    while !j < s && fst flat.(!j) = fst flat.(!i) do
      incr j
    done;
    let avg = float_of_int (!i + !j - 1) /. 2. +. 1. in
    for k = !i to !j - 1 do
      ranks.(snd flat.(k)) <- avg
    done;
    i := !j
  done;
  let sf = float_of_int s in
  Array.init m (fun ci ->
      Array.init n (fun i ->
          Special.std_normal_quantile
            ((ranks.((ci * n) + i) -. 0.375) /. (sf +. 0.25))))

let split_chains chains =
  let n = Array.length chains.(0) in
  let h = n / 2 in
  Array.concat
    (Array.to_list
       (Array.map
          (fun c -> [| Array.sub c 0 h; Array.sub c (n - h) h |])
          chains))

(* Classic PSRF on already-transformed chains, with the frozen-chain
   case made honest: zero within-chain variance with between-chain
   disagreement is divergence (R̂ = ∞), not convergence. *)
let psrf chains =
  let m = Array.length chains and n = Array.length chains.(0) in
  let nf = float_of_int n and mf = float_of_int m in
  let means = Array.map Summation.mean chains in
  let grand = Summation.mean means in
  let b =
    nf /. (mf -. 1.)
    *. Summation.sum_map (fun mu -> Numeric.sq (mu -. grand)) means
  in
  let w =
    Summation.mean
      (Array.map
         (fun c ->
           let mu = Summation.mean c in
           Summation.sum_map (fun x -> Numeric.sq (x -. mu)) c /. (nf -. 1.))
         chains)
  in
  if w = 0. then if b = 0. then 1. else infinity
  else sqrt ((((nf -. 1.) /. nf *. w) +. (b /. nf)) /. w)

let split_rhat chains =
  ignore (check_rect "Diagnostics.split_rhat" 8 chains);
  psrf (rank_normalize (split_chains chains))

let ess_rank_normalized chains =
  ignore (check_rect "Diagnostics.ess_rank_normalized" 8 chains);
  let chains = rank_normalize (split_chains chains) in
  let m = Array.length chains and n = Array.length chains.(0) in
  let nf = float_of_int n and mf = float_of_int m in
  let total = mf *. nf in
  let means = Array.map Summation.mean chains in
  (* biased per-chain variances and autocovariances (divisor n), plus
     the pooled var⁺ from unbiased chain variances, per Vehtari et
     al.'s combined autocorrelation *)
  let autocov c mu lag =
    Numeric.float_sum_range
      (n - lag)
      (fun i -> (c.(i) -. mu) *. (c.(i + lag) -. mu))
    /. nf
  in
  let s2 =
    Array.mapi
      (fun ci c ->
        let mu = means.(ci) in
        Summation.sum_map (fun x -> Numeric.sq (x -. mu)) c /. (nf -. 1.))
      chains
  in
  let w = Summation.mean s2 in
  let var_plus =
    let grand = Summation.mean means in
    let b_over_n =
      if m > 1 then
        Summation.sum_map (fun mu -> Numeric.sq (mu -. grand)) means
        /. (mf -. 1.)
      else 0.
    in
    ((nf -. 1.) /. nf *. w) +. b_over_n
  in
  if var_plus <= 0. then total
  else begin
    let rho lag =
      let mean_cov =
        Summation.mean
          (Array.mapi (fun ci c -> autocov c means.(ci) lag) chains)
      in
      1. -. ((w -. mean_cov) /. var_plus)
    in
    (* Geyer pairing as in the single-chain ESS, on the combined rho *)
    let acc = ref (rho 1) in
    let k = ref 1 in
    let continue_ = ref true in
    while !continue_ && (2 * !k) + 1 < n - 1 do
      let pair = rho (2 * !k) +. rho ((2 * !k) + 1) in
      if pair > 0. then begin
        acc := !acc +. pair;
        incr k
      end
      else continue_ := false
    done;
    let tau = 1. +. (2. *. Float.max 0. !acc) in
    Numeric.clamp ~lo:1. ~hi:total (total /. tau)
  end

type summary = { ess : float; mean : float; rhat : float }

let summarize run ~coordinate =
  let xs = Array.map (fun s -> s.(coordinate)) run.Mcmc.samples in
  {
    ess = effective_sample_size xs;
    mean = Summation.mean xs;
    rhat = split_rhat [| xs |];
  }
