let empirical ~loss sample theta =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Risk.empirical: empty sample";
  Dp_math.Numeric.float_sum_range n (fun i -> loss theta sample.(i))
  /. float_of_int n

let empirical_all ~loss sample thetas =
  Array.map (fun th -> empirical ~loss sample th) thetas

let true_risk_mc ~loss ~sampler ~n theta g =
  if n <= 0 then invalid_arg "Risk.true_risk_mc: n must be positive";
  Dp_math.Numeric.float_sum_range n (fun _ -> loss theta (sampler g))
  /. float_of_int n

let sensitivity ~loss_lo ~loss_hi ~n =
  if loss_lo > loss_hi then invalid_arg "Risk.sensitivity: lo > hi";
  if n <= 0 then invalid_arg "Risk.sensitivity: n must be positive";
  (loss_hi -. loss_lo) /. float_of_int n

let check_bounded ~loss ~lo ~hi sample thetas =
  Array.for_all
    (fun th ->
      Array.for_all
        (fun z ->
          let v = loss th z in
          v >= lo -. 1e-12 && v <= hi +. 1e-12)
        sample)
    thetas
