(** The Gibbs posterior (paper Lemma 3.2 / Theorem 4.1).

    Over a finite predictor space Θ with prior π, sample Ẑ and inverse
    temperature β, the Gibbs posterior is

    [dπ̂_β(θ) ∝ exp(−β · R̂_Ẑ(θ)) dπ(θ)].

    Lemma 3.2: this posterior minimizes the empirical PAC-Bayes
    objective [E_π̂ R̂ + KL(π̂‖π)/β] over all posteriors. Theorem 4.1:
    viewed as a mechanism it is the exponential mechanism with quality
    [−R̂] and therefore [2·β·ΔR̂]-differentially private. Both facts
    are verified numerically by the test suite and experiments E3/E5. *)

type 'theta t

val fit :
  predictors:'theta array ->
  ?log_prior:float array ->
  beta:float ->
  empirical_risk:('theta -> float) ->
  unit ->
  'theta t
(** @raise Invalid_argument on empty predictors, non-positive β,
    prior length mismatch, or non-finite risks. *)

val of_risks :
  predictors:'theta array ->
  ?log_prior:float array ->
  beta:float ->
  risks:float array ->
  unit ->
  'theta t
(** Same, from precomputed risks (shared across β sweeps). *)

val predictors : 'theta t -> 'theta array
val beta : 'theta t -> float
val risks : 'theta t -> float array
val probabilities : 'theta t -> float array
val log_probabilities : 'theta t -> float array
val prior_probabilities : 'theta t -> float array

val sample : 'theta t -> Dp_rng.Prng.t -> 'theta
(** Draw a predictor — the private release. *)

val sampler : 'theta t -> Dp_rng.Prng.t -> unit -> 'theta
(** Alias-table sampler for repeated draws. *)

val expected_empirical_risk : 'theta t -> float
(** [E_{θ∼π̂} R̂(θ)]. *)

val kl_from_prior : 'theta t -> float
(** [KL(π̂ ‖ π)]. *)

val pac_bayes_objective : 'theta t -> float
(** [E_π̂ R̂ + KL(π̂‖π)/β] — the quantity Lemma 3.2 says is minimal
    among all posteriors. *)

val objective_of_posterior : 'theta t -> float array -> float
(** The same objective evaluated at an arbitrary posterior (used to
    verify minimality). @raise Invalid_argument on length mismatch or
    invalid distribution. *)

val privacy_epsilon : 'theta t -> risk_sensitivity:float -> float
(** Theorem 4.1: [2·β·ΔR̂]. *)

val as_exponential_mechanism :
  'theta t -> risk_sensitivity:float -> 'theta Dp_mechanism.Exponential.t
(** The explicit correspondence with McSherry–Talwar: the same
    distribution constructed through [Dp_mechanism.Exponential] with
    quality [−R̂] and exponent β (tests assert the distributions agree
    pointwise). *)

val map : ('a -> 'b) -> 'a t -> 'b t
