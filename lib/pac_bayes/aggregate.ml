open Dp_math

let vote ~posterior ~predict x =
  let posterior = Dp_info.Entropy.validate "Aggregate.vote posterior" posterior in
  let s =
    Numeric.float_sum_range (Array.length posterior) (fun i ->
        posterior.(i) *. predict i x)
  in
  if s >= 0. then 1. else -1.

let vote_risk ~posterior ~predict sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Aggregate.vote_risk: empty sample";
  Numeric.float_sum_range n (fun k ->
      let x, y = sample.(k) in
      if vote ~posterior ~predict x = y then 0. else 1.)
  /. float_of_int n

let gibbs_risk ~posterior ~predict sample =
  let posterior =
    Dp_info.Entropy.validate "Aggregate.gibbs_risk posterior" posterior
  in
  let n = Array.length sample in
  if n = 0 then invalid_arg "Aggregate.gibbs_risk: empty sample";
  Numeric.float_sum_range (Array.length posterior) (fun i ->
      posterior.(i)
      *. Numeric.float_sum_range n (fun k ->
             let x, y = sample.(k) in
             if (if predict i x >= 0. then 1. else -1.) = y then 0. else 1.))
  /. float_of_int n

let factor_two_bound ~gibbs_risk =
  Float.min 1. (2. *. Numeric.check_nonneg "Aggregate.factor_two_bound" gibbs_risk)

let private_vote_of_draws ~draws ~predict x =
  let k = Array.length draws in
  if k = 0 then invalid_arg "Aggregate.private_vote_of_draws: no draws";
  let s =
    Numeric.float_sum_range k (fun i ->
        if predict draws.(i) x >= 0. then 1. else -1.)
  in
  if s >= 0. then 1. else -1.
