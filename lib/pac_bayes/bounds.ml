open Dp_math

let check_common name n delta emp_risk kl =
  if n <= 0 then invalid_arg (name ^ ": n must be positive");
  ignore (Numeric.check_prob (name ^ " delta") delta);
  if delta = 0. then invalid_arg (name ^ ": delta must be positive");
  ignore (Numeric.check_prob (name ^ " emp_risk") emp_risk);
  ignore (Numeric.check_nonneg (name ^ " kl") kl)

let catoni ~beta ~n ~delta ~emp_risk ~kl =
  let beta = Numeric.check_pos "Bounds.catoni beta" beta in
  check_common "Bounds.catoni" n delta emp_risk kl;
  let nf = float_of_int n in
  let c = beta /. nf in
  let inner = (-.c *. emp_risk) -. ((kl +. log (1. /. delta)) /. nf) in
  let bound = -.Float.expm1 inner /. -.Float.expm1 (-.c) in
  Numeric.clamp ~lo:0. ~hi:1. bound

let catoni_expectation ~beta ~n ~emp_risk ~kl =
  let beta = Numeric.check_pos "Bounds.catoni_expectation beta" beta in
  if n <= 0 then invalid_arg "Bounds.catoni_expectation: n must be positive";
  ignore (Numeric.check_prob "Bounds.catoni_expectation emp_risk" emp_risk);
  ignore (Numeric.check_nonneg "Bounds.catoni_expectation kl" kl);
  let nf = float_of_int n in
  let c = beta /. nf in
  let inner = (-.c *. emp_risk) -. (kl /. nf) in
  let bound = -.Float.expm1 inner /. -.Float.expm1 (-.c) in
  Numeric.clamp ~lo:0. ~hi:1. bound

let catoni_correction ~beta ~n =
  let beta = Numeric.check_pos "Bounds.catoni_correction beta" beta in
  if n <= 0 then invalid_arg "Bounds.catoni_correction: n must be positive";
  let c = beta /. float_of_int n in
  -.Float.expm1 (-.c) /. c

let empirical_objective ~beta ~emp_risk ~kl =
  let beta = Numeric.check_pos "Bounds.empirical_objective beta" beta in
  ignore (Numeric.check_finite "Bounds.empirical_objective emp_risk" emp_risk);
  ignore (Numeric.check_nonneg "Bounds.empirical_objective kl" kl);
  emp_risk +. (kl /. beta)

let catoni_correction_unchecked beta n =
  let c = beta /. float_of_int n in
  -.Float.expm1 (-.c) /. c

let linearized ~beta ~n ~delta ~emp_risk ~kl =
  let beta = Numeric.check_pos "Bounds.linearized beta" beta in
  check_common "Bounds.linearized" n delta emp_risk kl;
  (* 1 − e^{−x} ≤ x on the Catoni numerator gives the valid loosening
     [L / correction] with L = R̂ + (KL + log(1/δ))/β. *)
  let l = emp_risk +. ((kl +. log (1. /. delta)) /. beta) in
  Float.min 1. (l /. catoni_correction_unchecked beta n)

let complexity_term n delta kl =
  (kl +. log (2. *. sqrt (float_of_int n) /. delta)) /. float_of_int n

let mcallester ~n ~delta ~emp_risk ~kl =
  check_common "Bounds.mcallester" n delta emp_risk kl;
  Float.min 1. (emp_risk +. sqrt (complexity_term n delta kl /. 2.))

let seeger ~n ~delta ~emp_risk ~kl =
  check_common "Bounds.seeger" n delta emp_risk kl;
  Special.binary_kl_inv_upper ~q:emp_risk ~c:(complexity_term n delta kl)

let alquier ~lambda ~n ~delta ~sub_gaussian_std ~emp_risk ~kl =
  let lambda = Numeric.check_pos "Bounds.alquier lambda" lambda in
  if n <= 0 then invalid_arg "Bounds.alquier: n must be positive";
  ignore (Numeric.check_prob "Bounds.alquier delta" delta);
  if delta = 0. then invalid_arg "Bounds.alquier: delta must be positive";
  let sigma = Numeric.check_pos "Bounds.alquier sub_gaussian_std" sub_gaussian_std in
  ignore (Numeric.check_finite "Bounds.alquier emp_risk" emp_risk);
  ignore (Numeric.check_nonneg "Bounds.alquier kl" kl);
  emp_risk
  +. ((kl +. log (1. /. delta)) /. lambda)
  +. (lambda *. sigma *. sigma /. (2. *. float_of_int n))

let best_alquier_lambda ~n ~delta ~sub_gaussian_std ~kl =
  if n <= 0 then invalid_arg "Bounds.best_alquier_lambda: n must be positive";
  ignore (Numeric.check_prob "Bounds.best_alquier_lambda delta" delta);
  if delta = 0. then invalid_arg "Bounds.best_alquier_lambda: delta must be positive";
  let sigma =
    Numeric.check_pos "Bounds.best_alquier_lambda sub_gaussian_std"
      sub_gaussian_std
  in
  ignore (Numeric.check_nonneg "Bounds.best_alquier_lambda kl" kl);
  sqrt (2. *. float_of_int n *. (kl +. log (1. /. delta))) /. sigma

let best_catoni_beta ~n ~delta ~emp_risk ~kl =
  check_common "Bounds.best_catoni_beta" n delta emp_risk kl;
  let f log_beta = catoni ~beta:(exp log_beta) ~n ~delta ~emp_risk ~kl in
  let log_beta =
    Roots.golden_section_min ~f (log 1e-3) (log (10. *. float_of_int n))
  in
  exp log_beta
