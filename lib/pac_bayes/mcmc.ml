open Dp_math

type config = { step_std : float; burn_in : int; thin : int }

let default_config = { step_std = 0.25; burn_in = 1000; thin = 10 }

type run = {
  samples : float array array;
  acceptance_rate : float;
  log_density : float array -> float;
}

let run ?(config = default_config) ~log_density ~init ~n_samples g =
  if n_samples <= 0 then invalid_arg "Mcmc.run: n_samples must be positive";
  if Array.length init = 0 then invalid_arg "Mcmc.run: empty init";
  if config.step_std <= 0. then invalid_arg "Mcmc.run: step_std must be positive";
  if config.burn_in < 0 || config.thin <= 0 then
    invalid_arg "Mcmc.run: bad burn_in/thin";
  let dim = Array.length init in
  let current = ref (Array.copy init) in
  let current_ld = ref (log_density !current) in
  if Float.is_nan !current_ld || !current_ld = infinity then
    invalid_arg "Mcmc.run: non-finite log density at init";
  let accepted = ref 0 and proposed = ref 0 in
  let step () =
    incr proposed;
    let cand =
      Array.map
        (fun x -> x +. Dp_rng.Sampler.gaussian ~mean:0. ~std:config.step_std g)
        !current
    in
    let cand_ld = log_density cand in
    let log_alpha = cand_ld -. !current_ld in
    if
      (not (Float.is_nan cand_ld))
      && (log_alpha >= 0. || log (Dp_rng.Prng.float_pos g) < log_alpha)
    then begin
      incr accepted;
      current := cand;
      current_ld := cand_ld
    end
  in
  for _ = 1 to config.burn_in do
    step ()
  done;
  let samples =
    Array.init n_samples (fun _ ->
        for _ = 1 to config.thin do
          step ()
        done;
        Array.copy !current)
  in
  ignore dim;
  {
    samples;
    acceptance_rate = float_of_int !accepted /. float_of_int !proposed;
    log_density;
  }

let std_gaussian_log_prior theta =
  let d = float_of_int (Array.length theta) in
  (-0.5 *. Summation.sum_map (fun x -> x *. x) theta)
  -. (0.5 *. d *. log (2. *. Float.pi))

let gibbs_log_density ~beta ~empirical_risk ?log_prior () =
  let beta = Numeric.check_pos "Mcmc.gibbs_log_density beta" beta in
  let log_prior = Option.value log_prior ~default:std_gaussian_log_prior in
  fun theta -> (-.beta *. empirical_risk theta) +. log_prior theta

let posterior_mean run =
  let n = Array.length run.samples in
  let dim = Array.length run.samples.(0) in
  Array.init dim (fun j ->
      Numeric.float_sum_range n (fun i -> run.samples.(i).(j))
      /. float_of_int n)

let tv_distance_to_grid run ~grid ~grid_probs =
  let k = Array.length grid in
  if k = 0 || Array.length grid_probs <> k then
    invalid_arg "Mcmc.tv_distance_to_grid: bad grid";
  let counts = Array.make k 0. in
  Array.iter
    (fun s ->
      (* nearest grid point in Euclidean distance *)
      let best = ref 0 and best_d = ref infinity in
      Array.iteri
        (fun i gpt ->
          let d = Dp_linalg.Vec.dist2 s gpt in
          if d < !best_d then begin
            best_d := d;
            best := i
          end)
        grid;
      counts.(!best) <- counts.(!best) +. 1.)
    run.samples;
  let n = float_of_int (Array.length run.samples) in
  let empirical = Array.map (fun c -> c /. n) counts in
  0.5
  *. Numeric.float_sum_range k (fun i ->
         Float.abs (empirical.(i) -. grid_probs.(i)))
