(** PAC-Bayesian generalization bounds for losses in [\[0, 1\]].

    The paper's Theorem 3.1 is Catoni's bound; McAllester's and the
    Maurer–Seeger (kl⁻¹) bounds are implemented for the E4 comparison.
    All bounds take the posterior's expected empirical risk and its KL
    divergence from the prior, so one computation of the posterior
    serves every bound. *)

val catoni :
  beta:float -> n:int -> delta:float -> emp_risk:float -> kl:float -> float
(** Theorem 3.1 (high probability form): with probability ≥ 1−δ over
    the sample,
    [E_π̂ R ≤ (1−e^{−β/n})^{−1} · (1 − exp(−(β/n)·E_π̂R̂ − (KL(π̂‖π) + log(1/δ))/n))].
    The result is clamped to [\[0, 1\]] (a risk bound above 1 is
    vacuous). @raise Invalid_argument on parameters outside their
    domains. *)

val catoni_expectation : beta:float -> n:int -> emp_risk:float -> kl:float -> float
(** The in-expectation variant (paper Eq. 1): same expression without
    the confidence term. *)

val catoni_correction : beta:float -> n:int -> float
(** The factor [(β/n)^{−1}(1 − e^{−β/n}) ∈ (1 − β/2n, 1)] the paper
    notes is close to 1 when β ≪ n. *)

val empirical_objective : beta:float -> emp_risk:float -> kl:float -> float
(** The unbiased empirical upper bound whose minimizer is the Gibbs
    posterior (Lemma 3.2): [E_π̂ R̂ + KL(π̂‖π)/β]. Monotone in the
    Catoni bound, so minimizing it minimizes the bound. *)

val linearized :
  beta:float -> n:int -> delta:float -> emp_risk:float -> kl:float -> float
(** The valid first-order loosening of {!catoni} (via 1−e^{−x} ≤ x):
    [(E R̂ + (KL + log(1/δ))/β) / catoni_correction], the linear form
    commonly quoted; always ≥ {!catoni} (ablation A4). *)

val mcallester : n:int -> delta:float -> emp_risk:float -> kl:float -> float
(** McAllester (1999):
    [E R ≤ E R̂ + sqrt((KL + log(2√n/δ)) / (2n))]. Clamped to 1. *)

val seeger : n:int -> delta:float -> emp_risk:float -> kl:float -> float
(** Maurer–Seeger:
    [E R ≤ kl⁻¹(E R̂ | (KL + log(2√n/δ))/n)] via the binary-KL upper
    inverse — the tightest of the three in most regimes. *)

val alquier :
  lambda:float ->
  n:int ->
  delta:float ->
  sub_gaussian_std:float ->
  emp_risk:float ->
  kl:float ->
  float
(** Alquier–Ribatet–Guedj (2016) bound for UNBOUNDED losses whose
    centred value is sub-Gaussian with parameter
    [sub_gaussian_std] under (Q, π): with probability ≥ 1−δ,
    [E_ρ R ≤ E_ρ R̂ + (KL + log(1/δ))/λ + λ·σ²/(2n)]. Unlike
    {!catoni} the risk need not lie in [0,1] (used by the regression
    learners, where the squared loss is unbounded).
    @raise Invalid_argument on non-positive λ/σ or δ outside (0,1). *)

val best_alquier_lambda :
  n:int -> delta:float -> sub_gaussian_std:float -> kl:float -> float
(** The λ minimizing {!alquier} at fixed (KL, σ):
    [sqrt(2n(KL + log(1/δ)))/σ]. *)

val best_catoni_beta :
  n:int -> delta:float -> emp_risk:float -> kl:float -> float
(** The β minimizing the Catoni bound for fixed (risk, KL) by golden
    section on [log β] (diagnostic; note that choosing β from data this
    way voids the fixed-β statement, exactly as in practice). *)
