open Dp_math

type 'theta t = {
  predictors : 'theta array;
  log_prior : float array; (* normalized *)
  beta : float;
  risks : float array;
  log_posterior : float array; (* normalized *)
}

let normalize_log_prior k = function
  | None -> Array.make k (-.log (float_of_int k))
  | Some lp ->
      if Array.length lp <> k then
        invalid_arg "Gibbs: prior length mismatch";
      let z = Logspace.log_sum_exp lp in
      if not (Float.is_finite z) then
        invalid_arg "Gibbs: degenerate prior";
      Array.map (fun w -> w -. z) lp

let of_risks ~predictors ?log_prior ~beta ~risks () =
  let k = Array.length predictors in
  if k = 0 then invalid_arg "Gibbs.of_risks: empty predictor space";
  if Array.length risks <> k then
    invalid_arg "Gibbs.of_risks: risks length mismatch";
  let beta = Numeric.check_pos "Gibbs.of_risks beta" beta in
  Array.iter
    (fun r -> ignore (Numeric.check_finite "Gibbs.of_risks risk" r))
    risks;
  let log_prior = normalize_log_prior k log_prior in
  let lw = Array.mapi (fun i r -> log_prior.(i) -. (beta *. r)) risks in
  let z = Logspace.log_sum_exp lw in
  let log_posterior = Array.map (fun w -> w -. z) lw in
  { predictors; log_prior; beta; risks; log_posterior }

let fit ~predictors ?log_prior ~beta ~empirical_risk () =
  let risks = Array.map empirical_risk predictors in
  of_risks ~predictors ?log_prior ~beta ~risks ()

let predictors t = t.predictors
let beta t = t.beta
let risks t = Array.copy t.risks
let log_probabilities t = Array.copy t.log_posterior
let probabilities t = Array.map exp t.log_posterior
let prior_probabilities t = Array.map exp t.log_prior

let sample t g =
  t.predictors.(Dp_rng.Sampler.categorical_log ~log_weights:t.log_posterior g)

let sampler t g =
  let table = Dp_rng.Alias.of_log_weights t.log_posterior in
  fun () -> t.predictors.(Dp_rng.Alias.sample table g)

let expected_empirical_risk t =
  Numeric.float_sum_range (Array.length t.risks) (fun i ->
      exp t.log_posterior.(i) *. t.risks.(i))

let kl_from_prior t =
  Dp_info.Entropy.kl_divergence_log t.log_posterior t.log_prior

let pac_bayes_objective t =
  expected_empirical_risk t +. (kl_from_prior t /. t.beta)

let objective_of_posterior t rho =
  let k = Array.length t.predictors in
  if Array.length rho <> k then
    invalid_arg "Gibbs.objective_of_posterior: length mismatch";
  let rho = Dp_info.Entropy.validate "Gibbs.objective_of_posterior" rho in
  let prior = prior_probabilities t in
  let risk_term =
    Numeric.float_sum_range k (fun i -> rho.(i) *. t.risks.(i))
  in
  risk_term +. (Dp_info.Entropy.kl_divergence rho prior /. t.beta)

let privacy_epsilon t ~risk_sensitivity =
  let risk_sensitivity =
    Numeric.check_nonneg "Gibbs.privacy_epsilon sensitivity" risk_sensitivity
  in
  2. *. t.beta *. risk_sensitivity

let as_exponential_mechanism t ~risk_sensitivity =
  (* q = −R̂, exponent = β, base measure = the prior. The exponential
     mechanism's weights are ε·q + log π = −β·R̂ + log π: identical to
     the Gibbs weights by construction. *)
  Dp_mechanism.Exponential.of_qualities ~candidates:t.predictors
    ~log_prior:t.log_prior
    ~qualities:(Array.map (fun r -> -.r) t.risks)
    ~sensitivity:risk_sensitivity ~epsilon:t.beta ()

let map f t = { t with predictors = Array.map f t.predictors }
