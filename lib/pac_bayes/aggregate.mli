(** Aggregating the Gibbs posterior: the randomized predictor vs the
    deterministic majority vote.

    The paper studies the randomized predictor θ ∼ π̂ (which is what
    can be released privately). In PAC-Bayes one also considers the
    ρ-weighted MAJORITY VOTE [sign E_θ∼π̂ h_θ(x)], which satisfies the
    folklore factor-two bound [R(vote) ≤ 2·E_θ∼π̂ R(θ)] for 0-1 loss.
    Aggregation is post-processing of the posterior, so when the
    posterior's parameters are released privately the vote costs no
    extra budget; when only a SINGLE draw is released (the paper's
    mechanism), voting over k draws costs k·ε by composition —
    experiment E21 quantifies this privacy/aggregation tradeoff. *)

val vote :
  posterior:float array ->
  predict:(int -> 'x -> float) ->
  'x ->
  float
(** [vote ~posterior ~predict x] is the ρ-weighted vote
    [sign Σᵢ ρᵢ predict i x] (±1; ties to +1).
    @raise Invalid_argument on an invalid posterior. *)

val vote_risk :
  posterior:float array ->
  predict:(int -> 'x -> float) ->
  ('x * float) array ->
  float
(** 0-1 risk of the weighted vote on a labelled sample. *)

val gibbs_risk :
  posterior:float array ->
  predict:(int -> 'x -> float) ->
  ('x * float) array ->
  float
(** Expected 0-1 risk of the randomized predictor
    [E_{θ∼ρ} R̂(θ)] on the sample (the quantity the factor-two bound
    compares against). *)

val factor_two_bound : gibbs_risk:float -> float
(** [min 1 (2·gibbs_risk)] — the vote risk never exceeds it. *)

val private_vote_of_draws :
  draws:'theta array ->
  predict:('theta -> 'x -> float) ->
  'x ->
  float
(** Majority vote over independently released Gibbs draws (each draw
    paid for separately; see E21). *)
