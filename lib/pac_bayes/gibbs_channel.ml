open Dp_math

type 'theta t = {
  samples : int array array;
  input : float array;
  risk : float array array;
  channel : Dp_info.Channel.t;
  predictors : 'theta array;
  prior : float array;
  beta : float;
}

let build ~universe_probs ~n ~predictors ?log_prior ~beta ~loss () =
  let universe_probs =
    Dp_info.Entropy.validate "Gibbs_channel.build universe_probs" universe_probs
  in
  let v = Array.length universe_probs in
  let k = Array.length predictors in
  if k = 0 then invalid_arg "Gibbs_channel.build: empty predictor space";
  let beta = Numeric.check_pos "Gibbs_channel.build beta" beta in
  let samples = Dp_dataset.Neighbors.all_samples ~universe:v ~n in
  let log_q = Array.map (fun p -> log (Float.max p 1e-300)) universe_probs in
  let input =
    Array.map
      (fun s ->
        exp (Numeric.float_sum_range n (fun i -> log_q.(s.(i)))))
      samples
  in
  (* Per-predictor loss on each universe element, shared across samples. *)
  let loss_table =
    Array.map (fun th -> Array.init v (fun z -> loss th z)) predictors
  in
  let risk =
    Array.map
      (fun s ->
        Array.init k (fun j ->
            Numeric.float_sum_range n (fun i -> loss_table.(j).(s.(i)))
            /. float_of_int n))
      samples
  in
  let prior = ref [||] in
  let matrix =
    Array.map
      (fun risks ->
        let g = Gibbs.of_risks ~predictors ?log_prior ~beta ~risks () in
        if Array.length !prior = 0 then prior := Gibbs.prior_probabilities g;
        Gibbs.probabilities g)
      risk
  in
  let channel = Dp_info.Channel.create ~input ~matrix in
  { samples; input; risk; channel; predictors; prior = !prior; beta }

let sample_code ~universe s =
  Array.fold_left (fun acc z -> (acc * universe) + z) 0 s

let neighbor_indices t i =
  let n = Array.length t.samples.(0) in
  (* The universe size is recoverable from the channel input length:
     |samples| = v^n. *)
  let total = Array.length t.samples in
  let v =
    int_of_float (Float.round (float_of_int total ** (1. /. float_of_int n)))
  in
  Dp_dataset.Neighbors.neighbors_of_sample ~universe:v t.samples.(i)
  |> Array.map (fun s -> sample_code ~universe:v s)

let mutual_information t = Dp_info.Channel.mutual_information t.channel

let expected_empirical_risk t =
  Dp_info.Channel.expected_risk t.channel ~risk:(fun s j -> t.risk.(s).(j))

let objective t =
  Dp_info.Channel.objective t.channel
    ~risk:(fun s j -> t.risk.(s).(j))
    ~beta:t.beta

let check_shape name t ch =
  if
    Dp_info.Channel.n_inputs ch <> Array.length t.samples
    || Dp_info.Channel.n_outputs ch <> Array.length t.predictors
  then invalid_arg ("Gibbs_channel." ^ name ^ ": shape mismatch")

let objective_of_channel t ch =
  check_shape "objective_of_channel" t ch;
  Dp_info.Channel.objective ch
    ~risk:(fun s j -> t.risk.(s).(j))
    ~beta:t.beta

let pac_objective t =
  Dp_info.Channel.objective_kl t.channel
    ~risk:(fun s j -> t.risk.(s).(j))
    ~beta:t.beta ~prior:t.prior

let pac_objective_of_channel t ch =
  check_shape "pac_objective_of_channel" t ch;
  Dp_info.Channel.objective_kl ch
    ~risk:(fun s j -> t.risk.(s).(j))
    ~beta:t.beta ~prior:t.prior

let dp_epsilon t =
  Dp_info.Channel.dp_epsilon t.channel ~neighbors:(neighbor_indices t)

let risk_sensitivity t ~loss_lo ~loss_hi =
  Risk.sensitivity ~loss_lo ~loss_hi ~n:(Array.length t.samples.(0))

let theoretical_epsilon t ~loss_lo ~loss_hi =
  2. *. t.beta *. risk_sensitivity t ~loss_lo ~loss_hi
