(** Convergence diagnostics for the MCMC Gibbs sampler.

    The gating statistics follow Vehtari, Gelman, Simpson, Carpenter &
    Bürkner (2021): chains are split in half (so a trend inside one
    chain shows up as between-chain disagreement) and rank-normalized
    (pooled ranks mapped through the standard normal quantile, so
    heavy tails and scale-only differences cannot hide from a
    mean/variance comparison), then the classic potential scale
    reduction factor and Geyer's autocovariance ESS are computed on
    the transformed draws. *)

val autocorrelation : float array -> int -> float
(** Lag-k autocorrelation of a scalar chain (biased, normalized by the
    lag-0 variance). @raise Invalid_argument on short chains or a
    negative lag. *)

val effective_sample_size : float array -> float
(** Single-chain ESS via Geyer's initial positive sequence: sum paired
    autocorrelations until a pair goes non-positive. Between 1 and the
    chain length. @raise Invalid_argument on chains shorter than 4 or
    containing NaN (a NaN would otherwise propagate into a gate
    comparison that silently passes). *)

val rank_normalize : float array array -> float array array
(** Pooled-rank normal-score transform over ≥ 1 chains of equal
    length: every draw is replaced by [Φ⁻¹((r − 3/8) / (S + 1/4))]
    where [r] is its average rank among all [S] pooled draws (ties
    share their average rank). Shape is preserved.
    @raise Invalid_argument on empty input, unequal lengths, or NaN. *)

val split_rhat : float array array -> float
(** Rank-normalized split-R̂ over ≥ 1 chains of equal length ≥ 8:
    each chain is halved (so [m] chains enter the classic R̂ as [2m]),
    the pooled draws are rank-normalized, and the potential scale
    reduction factor is computed on the transformed split chains.
    Values near 1 indicate convergence; [infinity] when the chains are
    individually frozen but disagree (zero within-chain variance with
    nonzero between-chain variance — the old statistic returned 1.0
    there, a convergence verdict for stuck chains).
    @raise Invalid_argument on no chains, unequal lengths, chains
    shorter than 8, or NaN. *)

val ess_rank_normalized : float array array -> float
(** Multi-chain bulk ESS: Geyer's initial-positive-sequence truncation
    on the multi-chain autocorrelation [ρ̂_t = 1 − (W − mean_m s²_m
    ρ_{t,m}) / var⁺] of the rank-normalized split chains, giving
    [m·n / τ]. Between 1 and the total number of draws.
    @raise Invalid_argument on no chains, unequal lengths, chains
    shorter than 8, or NaN. *)

val gelman_rubin : float array array -> float
(** Plain potential scale reduction factor over ≥ 2 chains of equal
    length — no splitting, no rank normalization.
    @deprecated Retained as a reference point for the regression tests
    pinning old-vs-new behaviour; gate on {!split_rhat}, which detects
    within-chain trends and frozen chains this statistic misses.
    @raise Invalid_argument on fewer than 2 chains, unequal lengths,
    or chains shorter than 4. *)

type summary = { ess : float; mean : float; rhat : float }
(** [rhat] is {!split_rhat} of the single chain (its two halves act as
    the ≥ 2 chains), so a single-call user can gate on it directly. *)

val summarize : Mcmc.run -> coordinate:int -> summary
(** ESS, mean and split-R̂ of one coordinate of a run. *)
