(** Convergence diagnostics for the MCMC Gibbs sampler. *)

val autocorrelation : float array -> int -> float
(** Lag-k autocorrelation of a scalar chain (biased, normalized by the
    lag-0 variance). @raise Invalid_argument on short chains or a
    negative lag. *)

val effective_sample_size : float array -> float
(** ESS via Geyer's initial positive sequence: sum paired
    autocorrelations until a pair goes non-positive. Between 1 and the
    chain length. @raise Invalid_argument on chains shorter than 4. *)

val gelman_rubin : float array array -> float
(** Potential scale reduction factor R̂ over ≥ 2 chains of equal
    length; values near 1 indicate convergence.
    @raise Invalid_argument on fewer than 2 chains, unequal lengths,
    or chains shorter than 4. *)

val summarize :
  Mcmc.run -> coordinate:int -> [ `Ess of float ] * [ `Mean of float ]
(** Convenience: ESS and mean of one coordinate of a run. *)
