open Dp_math
open Dp_dataset

type t = {
  mean : float array;
  chol_precision : Dp_linalg.Mat.t; (* L with L Lᵀ = Λ *)
  precision : Dp_linalg.Mat.t;
  beta : float;
  prior_std : float;
  radius : float;
}

let fit ~beta ?(prior_std = 1.) ~radius d =
  let beta = Numeric.check_pos "Gaussian_gibbs.fit beta" beta in
  let prior_std = Numeric.check_pos "Gaussian_gibbs.fit prior_std" prior_std in
  let radius = Numeric.check_pos "Gaussian_gibbs.fit radius" radius in
  let n = float_of_int (Dataset.size d) in
  let x = Dp_linalg.Mat.of_arrays d.Dataset.features in
  let scale = beta /. n in
  let precision =
    Dp_linalg.Mat.add_diagonal
      (1. /. (prior_std *. prior_std))
      (Dp_linalg.Mat.scale scale (Dp_linalg.Mat.gram x))
  in
  let eta = Dp_linalg.Vec.scale scale (Dp_linalg.Mat.tmul_vec x d.Dataset.labels) in
  let chol_precision = Dp_linalg.Decomp.cholesky precision in
  let mean = Dp_linalg.Decomp.cholesky_solve chol_precision eta in
  { mean; chol_precision; precision; beta; prior_std; radius }

let mean t = Array.copy t.mean

let sample_unconstrained t g =
  (* theta = mean + L^{-T} z, z ~ N(0, I): covariance Λ^{-1}. *)
  let dim = Array.length t.mean in
  let z = Dp_rng.Sampler.gaussian_vector ~dim ~std:1. g in
  (* back substitution on Lᵀ u = z *)
  let u = Array.make dim 0. in
  for i = dim - 1 downto 0 do
    let s =
      Numeric.float_sum_range
        (dim - i - 1)
        (fun k -> Dp_linalg.Mat.get t.chol_precision (i + 1 + k) i *. u.(i + 1 + k))
    in
    u.(i) <- (z.(i) -. s) /. Dp_linalg.Mat.get t.chol_precision i i
  done;
  Dp_linalg.Vec.add t.mean u

let sample ?(max_attempts = 10_000) t g =
  let rec go attempts =
    if attempts = 0 then
      failwith
        "Gaussian_gibbs.sample: rejection into the ball failed; increase radius"
    else begin
      let theta = sample_unconstrained t g in
      if Dp_linalg.Vec.norm2 theta <= t.radius then theta
      else go (attempts - 1)
    end
  in
  go max_attempts

let log_density t theta =
  if Dp_linalg.Vec.norm2 theta > t.radius then neg_infinity
  else begin
    let d = Dp_linalg.Vec.sub theta t.mean in
    -0.5 *. Dp_linalg.Vec.dot d (Dp_linalg.Mat.mul_vec t.precision d)
  end

let loss_range ~radius =
  let radius = Numeric.check_pos "Gaussian_gibbs.loss_range radius" radius in
  Numeric.sq (radius +. 1.) /. 2.

let calibrate_beta ~epsilon ~n ~radius =
  let epsilon = Numeric.check_pos "Gaussian_gibbs.calibrate_beta epsilon" epsilon in
  if n <= 0 then invalid_arg "Gaussian_gibbs.calibrate_beta: n must be positive";
  epsilon *. float_of_int n /. (2. *. loss_range ~radius)

let privacy_epsilon t ~n =
  if n <= 0 then invalid_arg "Gaussian_gibbs.privacy_epsilon: n must be positive";
  2. *. t.beta *. loss_range ~radius:t.radius /. float_of_int n

let fit_private ~epsilon ?prior_std ~radius d g =
  let beta = calibrate_beta ~epsilon ~n:(Dataset.size d) ~radius in
  let t = fit ~beta ?prior_std ~radius d in
  (sample t g, Dp_mechanism.Privacy.pure epsilon)
