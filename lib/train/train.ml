(* All models live on the L2 ball of this radius, matching the
   clipping convention of Loss_fn (the logistic range bound [0,4] holds
   for ‖θ‖ ≤ 3, ‖x‖ ≤ 1). *)
let radius = 3.0
let loss = Dp_learn.Loss_fn.logistic

type backend = Gibbs | Objpert

let backend_name = function
  | Gibbs -> "gibbs"
  | Objpert -> "objective-perturbation"

type params = {
  backend : backend;
  epsilon : float;
  chains : int;
  steps : int;
  burn_in : int;
  step_std : float;
  lambda : float;
  target : string;
  rhat_max : float;
  ess_min : float;
}

let keys =
  [
    "backend"; "eps"; "chains"; "steps"; "burn"; "step-std"; "lambda";
    "target"; "rhat-max"; "ess-min";
  ]

let ( let* ) = Result.bind

let find_opt key opts =
  List.find_map (fun (k, v) -> if k = key then v else None) opts

let float_opt key ~default opts =
  match find_opt key opts with
  | None -> Ok default
  | Some s -> (
      match float_of_string_opt s with
      | Some x when Float.is_finite x -> Ok x
      | _ -> Error (Printf.sprintf "bad number %s=%s" key s))

let int_opt key ~default opts =
  match find_opt key opts with
  | None -> Ok default
  | Some s -> (
      match int_of_string_opt s with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad integer %s=%s" key s))

let params_of_opts ~default_epsilon opts =
  let* backend =
    match find_opt "backend" opts with
    | None | Some "gibbs" -> Ok Gibbs
    | Some "objpert" -> Ok Objpert
    | Some other -> Error (Printf.sprintf "bad backend=%s (gibbs|objpert)" other)
  in
  let* epsilon = float_opt "eps" ~default:default_epsilon opts in
  let* chains =
    int_opt "chains" ~default:(match backend with Gibbs -> 2 | Objpert -> 1) opts
  in
  let* steps = int_opt "steps" ~default:400 opts in
  let* burn_in = int_opt "burn" ~default:400 opts in
  let* step_std = float_opt "step-std" ~default:0.25 opts in
  let* lambda = float_opt "lambda" ~default:0.1 opts in
  let target = Option.value (find_opt "target" opts) ~default:"score" in
  let* rhat_max = float_opt "rhat-max" ~default:1.1 opts in
  let* ess_min = float_opt "ess-min" ~default:20. opts in
  if epsilon <= 0. then Error "eps must be positive"
  else if steps < 8 then Error "steps must be >= 8 (the gate splits each chain)"
  else if burn_in < 0 then Error "burn must be >= 0"
  else if step_std <= 0. then Error "step-std must be positive"
  else if lambda <= 0. then Error "lambda must be positive"
  else if rhat_max < 1. then Error "rhat-max must be >= 1"
  else if ess_min < 1. then Error "ess-min must be >= 1"
  else
    match backend with
    | Gibbs when chains < 2 ->
        Error "chains must be >= 2 for backend=gibbs (the gate compares chains)"
    | Gibbs when chains > 64 -> Error "chains must be <= 64"
    | Objpert when chains <> 1 -> Error "chains must be 1 for backend=objpert"
    | Gibbs | Objpert ->
        Ok
          {
            backend;
            epsilon;
            chains;
            steps;
            burn_in;
            step_std;
            lambda;
            target;
            rhat_max;
            ess_min;
          }

let normalize p =
  Printf.sprintf "train(%s,target=%s,eps=%.12g,chains=%d,steps=%d)"
    (backend_name p.backend) p.target p.epsilon p.chains p.steps

type spec = {
  params : params;
  beta : float;
  sensitivity : float;
  face : Dp_mechanism.Privacy.budget;
  features : string list;
}

let spec ~rows ~cols p =
  if rows <= 0 then Error "dataset has no rows"
  else if not (List.mem p.target cols) then
    Error (Printf.sprintf "unknown target column %s" p.target)
  else
    let features = List.filter (fun c -> c <> p.target) cols in
    if features = [] then
      Error "no feature columns besides the target"
    else
      let range = Dp_learn.Loss_fn.range_width loss in
      let n = float_of_int rows in
      match p.backend with
      | Gibbs ->
          Ok
            {
              params = p;
              beta =
                Dp_learn.Private_erm.gibbs_beta ~epsilon:p.epsilon ~n:rows
                  ~loss_range:range;
              sensitivity = range /. n;
              face =
                Dp_mechanism.Privacy.pure (float_of_int p.chains *. p.epsilon);
              features;
            }
      | Objpert ->
          Ok
            {
              params = p;
              beta = 0.;
              sensitivity = 2. *. loss.Dp_learn.Loss_fn.lipschitz /. (n *. p.lambda);
              face = Dp_mechanism.Privacy.pure p.epsilon;
              features;
            }

type design = {
  data : Dp_dataset.Dataset.t;
  features : (string * float * float) array;
}

(* Per-column affine map into [-1,1] from the public bounds, then unit
   L2 clip — shared verbatim by training and prediction. *)
let scale_raw ~features x =
  let d = Array.length features in
  let scaled =
    Array.init d (fun j ->
        let _, lo, hi = features.(j) in
        let v = Float.min hi (Float.max lo x.(j)) in
        (2. *. ((v -. lo) /. (hi -. lo))) -. 1.)
  in
  Dp_linalg.Vec.project_l2_ball ~radius:1. scaled

let scale_point ~features x =
  if Array.length x <> Array.length features then
    Error
      (Printf.sprintf "expected %d feature values, got %d"
         (Array.length features) (Array.length x))
  else Ok (scale_raw ~features x)

(* the design's public half: names and policy bounds only, so readers
   of journal records never touch the scaled rows *)
let[@dp.sanitizer] public_facts (d : design) = d.features

let design ~columns ~target =
  match
    Array.find_opt (fun (name, _, _, _) -> name = target) columns
  with
  | None -> Error (Printf.sprintf "unknown target column %s" target)
  | Some (_, t_lo, t_hi, t_values) ->
      let feats =
        Array.of_list
          (List.filter_map
             (fun (name, lo, hi, values) ->
               if name = target then None else Some (name, lo, hi, values))
             (Array.to_list columns))
      in
      if Array.length feats = 0 then
        Error "no feature columns besides the target"
      else
        let bounds = Array.map (fun (n, lo, hi, _) -> (n, lo, hi)) feats in
        let mid = (t_lo +. t_hi) /. 2. in
        let rows = Array.length t_values in
        let xs =
          Array.init rows (fun i ->
              scale_raw ~features:bounds
                (Array.map (fun (_, _, _, vs) -> vs.(i)) feats))
        in
        let ys =
          Array.map (fun v -> if v > mid then 1. else -1.) t_values
        in
        Ok { data = Dp_dataset.Dataset.create xs ys; features = bounds }

type outcome =
  | Released of {
      theta : float array;
      report : Gates.report;
      acceptance : float;
    }
  | Withheld of { report : Gates.report; acceptance : float }

let predict_margin ~theta x = Dp_linalg.Vec.dot theta x

(* Overdispersed chain initialisation inside the ball: each coordinate
   uniform in [-0.9 r/sqrt d, 0.9 r/sqrt d], so chains start in
   different basins and split-R̂ can actually see a failure to mix. *)
let init_point ~dim g =
  let s = 0.9 *. radius /. sqrt (float_of_int dim) in
  Array.init dim (fun _ -> s *. ((2. *. Dp_rng.Prng.float g) -. 1.))

let clipped_risk data theta =
  let n = Dp_dataset.Dataset.size data in
  Dp_math.Numeric.float_sum_range n (fun i ->
      let x, y = Dp_dataset.Dataset.row data i in
      Dp_learn.Loss_fn.clip loss ~theta ~x ~y)
  /. float_of_int n

(* the Gibbs-posterior / objective-perturbation samplers below ARE the
   mechanism: the released theta depends on the design only through the
   calibrated sampling, so this is a declared dataflow sanitizer *)
let[@dp.sanitizer] run ?(gate_hook = fun check -> check ()) sp design g =
  let p = sp.params in
  match p.backend with
  | Objpert ->
      let model =
        Dp_learn.Private_erm.objective_perturbation ~epsilon:p.epsilon
          ~lambda:p.lambda ~loss design.data g
      in
      let report =
        Gates.deterministic ~rhat_max:p.rhat_max ~ess_min:p.ess_min
      in
      Released
        { theta = model.Dp_learn.Private_erm.theta; report; acceptance = 1. }
  | Gibbs ->
      let dim = Dp_dataset.Dataset.dim design.data in
      let log_density theta =
        if Dp_linalg.Vec.norm2 theta > radius then neg_infinity
        else -.sp.beta *. clipped_risk design.data theta
      in
      let config =
        { Dp_pac_bayes.Mcmc.step_std = p.step_std; burn_in = p.burn_in; thin = 1 }
      in
      let runs =
        Array.init p.chains (fun _ ->
            Dp_pac_bayes.Mcmc.run ~config ~log_density
              ~init:(init_point ~dim g) ~n_samples:p.steps g)
      in
      let chains = Array.map (fun r -> r.Dp_pac_bayes.Mcmc.samples) runs in
      let acceptance =
        Dp_math.Summation.mean
          (Array.map (fun r -> r.Dp_pac_bayes.Mcmc.acceptance_rate) runs)
      in
      let report =
        gate_hook (fun () ->
            Gates.check ~rhat_max:p.rhat_max ~ess_min:p.ess_min chains)
      in
      if Gates.converged report then
        let draws = chains.(0) in
        Released
          { theta = draws.(Array.length draws - 1); report; acceptance }
      else Withheld { report; acceptance }
