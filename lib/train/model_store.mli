(** The engine-side registry of trained model handles.

    A handle is durable metadata plus (for released models) the θ
    vector; it is rebuilt bit-identically from the journal's Train
    frames on recovery, in insertion order, so handle names
    ([dataset/mN]) are stable across crashes. Withheld models occupy a
    slot too — their charge is real and their handle answers [model]
    queries — they just carry no θ and refuse predictions. *)

type model = {
  handle : string;
  dataset : string;
  backend : string;
  epsilon : float;  (** per-chain face ε as requested *)
  chains : int;
  steps : int;
  beta : float;
  face : Dp_mechanism.Privacy.budget;  (** total ledger charge *)
  target : string;
  features : (string * float * float) array;
  theta : float array option;  (** [None] iff the gate withheld the release *)
  rhat : float array;  (** per-coordinate split-R̂; empty when deterministic *)
  ess : float array;
  acceptance : float;
}

type t

val create : unit -> t
val size : t -> int
(** Number of handles ever issued (released + withheld) — the next
    handle is [dataset ^ "/m" ^ string_of_int (size t + 1)]. *)

val add : t -> model -> unit
(** @raise Invalid_argument on a duplicate handle. *)

val find : t -> string -> model option
val released : t -> int
val withheld : t -> int

val predicts : t -> int
(** Served prediction count (free post-processing; observability only). *)

val predict : t -> string -> float array -> (float, string) result
(** Score a raw (unscaled) point with a released model; bumps
    {!predicts} on success. [Error] on an unknown handle, a withheld
    model, or a dimension mismatch. *)
