type coord = { rhat : float; ess : float }

type verdict =
  | Converged
  | Unconverged of { worst_rhat : float; min_ess : float }

type report = {
  verdict : verdict;
  coords : coord array;
  rhat_max : float;
  ess_min : float;
}

let check ~rhat_max ~ess_min chains =
  let m = Array.length chains in
  if m < 1 then invalid_arg "Gates.check: need >= 1 chain";
  let n = Array.length chains.(0) in
  if n < 1 then invalid_arg "Gates.check: empty chain";
  let d = Array.length chains.(0).(0) in
  if d < 1 then invalid_arg "Gates.check: zero-dimensional draws";
  let coords =
    Array.init d (fun j ->
        let per_chain =
          Array.map (fun chain -> Array.map (fun draw -> draw.(j)) chain) chains
        in
        {
          rhat = Dp_pac_bayes.Diagnostics.split_rhat per_chain;
          ess = Dp_pac_bayes.Diagnostics.ess_rank_normalized per_chain;
        })
  in
  let worst =
    Array.fold_left (fun acc c -> Float.max acc c.rhat) neg_infinity coords
  in
  let least =
    Array.fold_left (fun acc c -> Float.min acc c.ess) infinity coords
  in
  let verdict =
    (* any NaN from a degenerate statistic must fail closed, so the
       comparisons are phrased as "provably within threshold" *)
    if worst <= rhat_max && least >= ess_min then Converged
    else Unconverged { worst_rhat = worst; min_ess = least }
  in
  { verdict; coords; rhat_max; ess_min }

let deterministic ~rhat_max ~ess_min =
  { verdict = Converged; coords = [||]; rhat_max; ess_min }

let converged r = match r.verdict with Converged -> true | Unconverged _ -> false

let worst_rhat r =
  match r.verdict with
  | Unconverged { worst_rhat; _ } -> worst_rhat
  | Converged ->
      Array.fold_left (fun acc c -> Float.max acc c.rhat) 1. r.coords

let min_ess r =
  match r.verdict with
  | Unconverged { min_ess; _ } -> min_ess
  | Converged -> Array.fold_left (fun acc c -> Float.min acc c.ess) infinity r.coords
