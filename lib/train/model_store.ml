type model = {
  handle : string;
  dataset : string;
  backend : string;
  epsilon : float;
  chains : int;
  steps : int;
  beta : float;
  face : Dp_mechanism.Privacy.budget;
  target : string;
  features : (string * float * float) array;
  theta : float array option;
  rhat : float array;
  ess : float array;
  acceptance : float;
}

type t = {
  tbl : (string, model) Hashtbl.t;
  mutable order : string list;  (* newest first *)
  mutable n_released : int;
  mutable n_withheld : int;
  mutable n_predicts : int;
}

let create () =
  {
    tbl = Hashtbl.create 16;
    order = [];
    n_released = 0;
    n_withheld = 0;
    n_predicts = 0;
  }

let size t = List.length t.order

let add t m =
  if Hashtbl.mem t.tbl m.handle then
    invalid_arg (Printf.sprintf "Model_store.add: duplicate handle %s" m.handle);
  Hashtbl.replace t.tbl m.handle m;
  t.order <- m.handle :: t.order;
  (match m.theta with
  | Some _ -> t.n_released <- t.n_released + 1
  | None -> t.n_withheld <- t.n_withheld + 1)

let find t handle = Hashtbl.find_opt t.tbl handle
let released t = t.n_released
let withheld t = t.n_withheld
let predicts t = t.n_predicts

let predict t handle x =
  match find t handle with
  | None -> Error (Printf.sprintf "unknown model %s" handle)
  | Some { theta = None; _ } ->
      Error (Printf.sprintf "model %s was withheld (unconverged); nothing to predict with" handle)
  | Some { theta = Some theta; features; _ } -> (
      match Train.scale_point ~features x with
      | Error e -> Error e
      | Ok scaled ->
          t.n_predicts <- t.n_predicts + 1;
          Ok (Train.predict_margin ~theta scaled))
