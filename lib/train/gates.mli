(** Convergence gating for served training runs.

    A Gibbs-posterior release is only as private as the chain is
    converged: an unconverged chain is a sample from some *other*
    distribution — whose privacy nobody proved — biased toward the
    (data-dependent) initialisation basin. The gate therefore computes
    rank-normalized split-R̂ and the multi-chain Geyer ESS
    ({!Dp_pac_bayes.Diagnostics}) per coordinate across all chains and
    withholds the release unless every coordinate passes both
    thresholds. Deterministic backends (objective perturbation runs a
    convex optimizer to tolerance, no chain) pass by construction. *)

type coord = { rhat : float; ess : float }

type verdict =
  | Converged
  | Unconverged of { worst_rhat : float; min_ess : float }

type report = {
  verdict : verdict;
  coords : coord array;  (** per predictor coordinate; empty when deterministic *)
  rhat_max : float;  (** threshold the verdict was computed against *)
  ess_min : float;
}

val check :
  rhat_max:float -> ess_min:float -> float array array array -> report
(** [check ~rhat_max ~ess_min chains] over [chains.(c).(draw).(coord)]:
    converged iff every coordinate has split-R̂ ≤ [rhat_max] and
    rank-normalized ESS ≥ [ess_min]. @raise Invalid_argument on empty
    or ragged input, or chains shorter than 8 draws. *)

val deterministic : rhat_max:float -> ess_min:float -> report
(** The vacuous passing report for non-MCMC backends. *)

val converged : report -> bool
val worst_rhat : report -> float
(** 1.0 for a deterministic (empty-coordinate) report. *)

val min_ess : report -> float
(** [infinity] for a deterministic report. *)
