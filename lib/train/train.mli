(** The served-learning query class: private ERM as a query.

    A [train] request names a registered dataset, a label column and a
    backend, and asks for one private model release. The module is
    split exactly like {!Dp_engine.Planner}: {!spec} is purely static —
    it prices the request from the schema (row count and column names)
    alone, which is what lets [dpkit analyze] cost a training workload
    bit-identically to a live run — and {!run} executes the chains on
    the actual data.

    Backends:
    - [Gibbs] — the paper's mechanism (Theorem 4.1): [chains]
      independent MCMC chains targeting the Gibbs posterior
      [∝ exp(−β·R̂_clip(θ))] on the L2 ball, [β = ε·n/(2·range)] so one
      posterior draw is ε-DP; releasing the draw after charging all
      chains (each chain is one draw's worth of posterior access, so
      the face charge is [chains·ε]) and gating on {!Gates.check}.
    - [Objpert] — Chaudhuri–Monteleoni–Sarwate objective perturbation:
      deterministic convex optimization of a perturbed objective,
      ε-DP at face [ε], no chain and hence a vacuous gate.

    The learning task is fixed by construction: binary classification
    with logistic loss, label [+1] iff the target column's value
    exceeds the midpoint of its public [lo, hi] bounds, features the
    remaining columns affinely scaled into [−1,1] from their public
    bounds and L2-clipped to the unit ball. Everything about the task
    except the row values is public, so the privacy cost is a property
    of the request alone. *)

type backend = Gibbs | Objpert

val backend_name : backend -> string
(** ["gibbs"] / ["objective-perturbation"] — audit-log mechanism ids. *)

type params = {
  backend : backend;
  epsilon : float;  (** per-chain (Gibbs) / per-release (Objpert) face ε *)
  chains : int;  (** ≥ 2 for Gibbs (the gate needs disagreement to see);
                     exactly 1 for Objpert *)
  steps : int;  (** retained draws per chain, ≥ 8 *)
  burn_in : int;
  step_std : float;  (** random-walk proposal std *)
  lambda : float;  (** ridge strength (Objpert only) *)
  target : string;  (** label column *)
  rhat_max : float;
  ess_min : float;
}

val keys : string list
(** Wire option keys accepted by {!params_of_opts} — shared by the
    serve protocol's [train] command and the analyzer's workload
    grammar. *)

val params_of_opts :
  default_epsilon:float ->
  (string * string option) list ->
  (params, string) result
(** Build and validate params from parsed [key=value] options
    (unknown keys are the caller's concern; defaults:
    [backend=gibbs chains=2 steps=400 burn=400 step-std=0.25
    lambda=0.1 target=score rhat-max=1.1 ess-min=20]). The error is a
    plain message without wire-format prefix. *)

val normalize : params -> string
(** Canonical request text — the journal/audit-log query label. *)

type spec = {
  params : params;
  beta : float;  (** Gibbs inverse temperature; [0.] for Objpert *)
  sensitivity : float;
      (** ΔR̂ = range/n (Gibbs) or the minimizer's L2 sensitivity
          2L/(nλ) (Objpert) — display metadata, not a pricing input *)
  face : Dp_mechanism.Privacy.budget;
      (** the ledger ask: [chains·ε] (Gibbs) or [ε] (Objpert), pure *)
  features : string list;  (** feature columns, schema order *)
}

val spec : rows:int -> cols:string list -> params -> (spec, string) result
(** Static pricing from public schema facts only: no data access, no
    sampling. [Error] on an unknown target column or a schema with no
    feature column left over. The analyzer and the live engine both
    call this, so their charges are bit-identical by construction. *)

type design = {
  data : Dp_dataset.Dataset.t;  (** scaled, clipped, labelled *)
  features : (string * float * float) array;  (** name, lo, hi — the
      public scaling facts a recovered model needs to predict *)
}

val design :
  columns:(string * float * float * float array) array ->
  target:string ->
  (design, string) result
(** Build the training set from raw registered columns
    [(name, lo, hi, values)]. *)

val public_facts : design -> (string * float * float) array
(** The design's public projection — column names and policy bounds,
    nothing derived from values. Declared as a dataflow sanitizer so
    the flow analyzer knows this read leaves the rows behind. *)

val scale_point :
  features:(string * float * float) array ->
  float array ->
  (float array, string) result
(** Apply the training-time feature transform (per-column affine map
    into [−1,1] from the public bounds, then unit-L2 clip) to one raw
    point — prediction must see exactly the geometry training saw.
    [Error] on a dimension mismatch. *)

type outcome =
  | Released of {
      theta : float array;
      report : Gates.report;
      acceptance : float;  (** mean MCMC acceptance rate; 1.0 for Objpert *)
    }
  | Withheld of { report : Gates.report; acceptance : float }
      (** the gate failed: the charge stands (the data pass happened)
          but no sample leaves — an unconverged draw is a biased
          posterior sample, not the priced mechanism *)

val run :
  ?gate_hook:((unit -> Gates.report) -> Gates.report) ->
  spec ->
  design ->
  Dp_rng.Prng.t ->
  outcome
(** Execute the training request: for Gibbs, [chains] MCMC chains
    seeded sequentially from [g] (the privacy noise stream) with
    overdispersed initial points, gated by {!Gates.check} over all
    retained draws; the released θ is the final retained draw of the
    first chain. For Objpert, one optimizer run gated by
    {!Gates.deterministic}. [gate_hook] (default: apply) wraps the
    gate computation so the engine can time and trace it without this
    library depending on observability. *)

val predict_margin : theta:float array -> float array -> float
(** [θ·x̃] on an already-scaled point — the released model's output;
    pure post-processing of the released θ. *)
