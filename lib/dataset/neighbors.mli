(** The paper's neighbour relation on sample sets (§2.2): two datasets
    are neighbours when they differ in exactly one record. This module
    produces neighbour pairs for the privacy auditor and enumerates
    small discrete sample spaces for exact channel computations. *)

val perturb_scalar_database :
  int array -> index:int -> value:int -> int array
(** Replace one entry of a 0/1 (or small-integer) database.
    @raise Invalid_argument on a bad index. *)

val worst_case_pair_for_count : int array -> int array * int array
(** For a 0/1 counting query: the canonical neighbour pair [(D, D')]
    where [D'] flips the first record — the pair achieving the
    sensitivity of the count. *)

val perturb_dataset :
  Dataset.t -> index:int -> row:float array * float -> Dataset.t
(** Alias of {!Dataset.replace_row} with audit-friendly naming. *)

val all_samples : universe:int -> n:int -> int array array
(** Every sample (ordered tuple) of size [n] over the universe
    [{0..universe-1}]: [universe^n] rows. Used by E6/E12 where the
    channel input distribution ranges over all samples.
    @raise Invalid_argument when [universe^n] exceeds [2^20] (the
    exact-computation regime only). *)

val neighbors_of_sample : universe:int -> int array -> int array array
(** All samples differing from the given one in exactly one position
    ([n × (universe-1)] rows). *)

val random_scalar_pair :
  universe:int -> n:int -> Dp_rng.Prng.t -> int array * int array
(** A uniformly random sample of size [n] over [{0..universe-1}]
    together with a uniformly random neighbour: one position is chosen
    uniformly and its value resampled among the [universe-1] other
    values, so the pair differs in exactly one record by construction.
    The statistical certification harness draws its trial pairs here.
    @raise Invalid_argument when [universe < 2] or [n <= 0]. *)

val random_dataset_pair :
  Dataset.t -> Dp_rng.Prng.t -> Dataset.t * Dataset.t * int
(** A random neighbour of a supervised dataset: one row index is chosen
    uniformly and that row replaced by a fresh one drawn from the
    dataset's own per-column empirical ranges (resampled until it
    differs; on fully degenerate ranges — e.g. a single repeated row —
    the label is bumped deterministically). Returns
    [(d, d', index)] where [d'] differs from [d] in exactly row
    [index] and shares its schema (size and feature dimension). *)

val hamming_distance : int array -> int array -> int
(** Number of positions at which the two samples differ.
    @raise Invalid_argument on length mismatch. *)
