type t = { features : float array array; labels : float array }

let create features labels =
  let n = Array.length features in
  if n = 0 then invalid_arg "Dataset.create: empty dataset";
  if Array.length labels <> n then
    invalid_arg "Dataset.create: features/labels length mismatch";
  let d = Array.length features.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Dataset.create: ragged features")
    features;
  { features; labels }

let size t = Array.length t.labels
let dim t = Array.length t.features.(0)
let row t i = (t.features.(i), t.labels.(i))

let replace_row t i (x, y) =
  if i < 0 || i >= size t then invalid_arg "Dataset.replace_row: index out of range";
  if Array.length x <> dim t then
    invalid_arg "Dataset.replace_row: feature dimension mismatch";
  let features = Array.copy t.features in
  let labels = Array.copy t.labels in
  features.(i) <- Array.copy x;
  labels.(i) <- y;
  { features; labels }

let split ~ratio t g =
  let n = size t in
  let n_train = int_of_float (Float.round (ratio *. float_of_int n)) in
  let n_train = Dp_math.Numeric.clamp ~lo:1. ~hi:(float_of_int (n - 1)) (float_of_int n_train)
                |> int_of_float in
  if n < 2 then invalid_arg "Dataset.split: needs at least two rows";
  let idx = Array.init n Fun.id in
  Dp_rng.Sampler.shuffle idx g;
  let take lo len =
    let features = Array.init len (fun k -> Array.copy t.features.(idx.(lo + k))) in
    let labels = Array.init len (fun k -> t.labels.(idx.(lo + k))) in
    { features; labels }
  in
  (take 0 n_train, take n_train (n - n_train))

let standardize_features t =
  let n = size t and d = dim t in
  let means = Array.make d 0. and stds = Array.make d 0. in
  for j = 0 to d - 1 do
    let col = Array.init n (fun i -> t.features.(i).(j)) in
    means.(j) <- Dp_stats.Describe.mean col;
    stds.(j) <- (if n >= 2 then Dp_stats.Describe.std col else 0.)
  done;
  let features =
    Array.map
      (fun row ->
        Array.mapi
          (fun j x ->
            let c = x -. means.(j) in
            if stds.(j) > 0. then c /. stds.(j) else c)
          row)
      t.features
  in
  ({ t with features }, (means, stds))

let clip_rows_l2 ~radius t =
  let features =
    Array.map (fun row -> Dp_linalg.Vec.project_l2_ball ~radius row) t.features
  in
  { t with features }

let map_labels f t = { t with labels = Array.map f t.labels }

let subsample ~n t g =
  let total = size t in
  if n <= 0 || n > total then invalid_arg "Dataset.subsample: bad size";
  let idx = Dp_rng.Sampler.sample_without_replacement ~k:n total g in
  let features = Array.map (fun i -> Array.copy t.features.(i)) idx in
  let labels = Array.map (fun i -> t.labels.(i)) idx in
  { features; labels }

let append a b =
  if dim a <> dim b then invalid_arg "Dataset.append: dimension mismatch";
  {
    features = Array.append a.features b.features;
    labels = Array.append a.labels b.labels;
  }
