(** Supervised datasets: rows of feature vectors with a scalar label.

    For classification the label is ±1 (the convention of the loss
    functions in [Dp_learn]); for regression it is unrestricted. A
    "neighbouring" dataset in the sense of the paper (§2.2) differs in
    exactly one row. *)

type t = { features : float array array; labels : float array }

val create : float array array -> float array -> t
(** @raise Invalid_argument on length mismatch, ragged features, or an
    empty dataset. *)

val size : t -> int
val dim : t -> int
val row : t -> int -> float array * float

val replace_row : t -> int -> float array * float -> t
(** [replace_row d i (x, y)] is the neighbouring dataset with row [i]
    swapped — the paper's neighbour relation on sample sets.
    @raise Invalid_argument on a bad index or wrong feature dimension. *)

val split : ratio:float -> t -> Dp_rng.Prng.t -> t * t
(** Random train/test split; [ratio] is the training fraction. Both
    sides are guaranteed nonempty.
    @raise Invalid_argument when a nonempty split is impossible. *)

val standardize_features : t -> t * (float array * float array)
(** Per-column standardization; returns the transformed dataset and the
    (means, stds) used. Columns with zero spread are left centred. *)

val clip_rows_l2 : radius:float -> t -> t
(** Project every feature vector onto the L2 ball — the standard
    preprocessing that bounds per-record sensitivity for private ERM. *)

val map_labels : (float -> float) -> t -> t

val subsample : n:int -> t -> Dp_rng.Prng.t -> t
(** [n] rows drawn without replacement.
    @raise Invalid_argument when [n] exceeds the dataset size. *)

val append : t -> t -> t
(** @raise Invalid_argument on dimension mismatch. *)
