let perturb_scalar_database db ~index ~value =
  if index < 0 || index >= Array.length db then
    invalid_arg "Neighbors.perturb_scalar_database: index out of range";
  let out = Array.copy db in
  out.(index) <- value;
  out

let worst_case_pair_for_count db =
  if Array.length db = 0 then
    invalid_arg "Neighbors.worst_case_pair_for_count: empty database";
  let flipped = perturb_scalar_database db ~index:0 ~value:(1 - db.(0)) in
  (db, flipped)

let perturb_dataset d ~index ~row = Dataset.replace_row d index row

let all_samples ~universe ~n =
  if universe <= 0 || n <= 0 then
    invalid_arg "Neighbors.all_samples: universe and n must be positive";
  let count =
    let rec pow acc k = if k = 0 then acc else pow (acc * universe) (k - 1) in
    pow 1 n
  in
  if count > 1 lsl 20 then
    invalid_arg
      (Printf.sprintf
         "Neighbors.all_samples: %d^%d samples exceed the exact regime"
         universe n);
  Array.init count (fun code ->
      let sample = Array.make n 0 in
      let c = ref code in
      for pos = n - 1 downto 0 do
        sample.(pos) <- !c mod universe;
        c := !c / universe
      done;
      sample)

let neighbors_of_sample ~universe sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Neighbors.neighbors_of_sample: empty sample";
  let out = ref [] in
  for pos = n - 1 downto 0 do
    for v = universe - 1 downto 0 do
      if v <> sample.(pos) then begin
        let s = Array.copy sample in
        s.(pos) <- v;
        out := s :: !out
      end
    done
  done;
  Array.of_list !out

let hamming_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Neighbors.hamming_distance: length mismatch";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d
