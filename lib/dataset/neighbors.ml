let perturb_scalar_database db ~index ~value =
  if index < 0 || index >= Array.length db then
    invalid_arg "Neighbors.perturb_scalar_database: index out of range";
  let out = Array.copy db in
  out.(index) <- value;
  out

let worst_case_pair_for_count db =
  if Array.length db = 0 then
    invalid_arg "Neighbors.worst_case_pair_for_count: empty database";
  let flipped = perturb_scalar_database db ~index:0 ~value:(1 - db.(0)) in
  (db, flipped)

let perturb_dataset d ~index ~row = Dataset.replace_row d index row

let all_samples ~universe ~n =
  if universe <= 0 || n <= 0 then
    invalid_arg "Neighbors.all_samples: universe and n must be positive";
  let count =
    let rec pow acc k = if k = 0 then acc else pow (acc * universe) (k - 1) in
    pow 1 n
  in
  if count > 1 lsl 20 then
    invalid_arg
      (Printf.sprintf
         "Neighbors.all_samples: %d^%d samples exceed the exact regime"
         universe n);
  Array.init count (fun code ->
      let sample = Array.make n 0 in
      let c = ref code in
      for pos = n - 1 downto 0 do
        sample.(pos) <- !c mod universe;
        c := !c / universe
      done;
      sample)

let neighbors_of_sample ~universe sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Neighbors.neighbors_of_sample: empty sample";
  let out = ref [] in
  for pos = n - 1 downto 0 do
    for v = universe - 1 downto 0 do
      if v <> sample.(pos) then begin
        let s = Array.copy sample in
        s.(pos) <- v;
        out := s :: !out
      end
    done
  done;
  Array.of_list !out

let random_scalar_pair ~universe ~n g =
  if universe < 2 then
    invalid_arg "Neighbors.random_scalar_pair: universe must be at least 2";
  if n <= 0 then invalid_arg "Neighbors.random_scalar_pair: n must be positive";
  let base = Array.init n (fun _ -> Dp_rng.Prng.int g universe) in
  let index = Dp_rng.Prng.int g n in
  (* uniform over the universe-1 values distinct from the current one,
     so the pair differs in exactly one record by construction *)
  let shifted = Dp_rng.Prng.int g (universe - 1) in
  let value = if shifted >= base.(index) then shifted + 1 else shifted in
  (base, perturb_scalar_database base ~index ~value)

let random_dataset_pair d g =
  let n = Dataset.size d and dim = Dataset.dim d in
  let index = Dp_rng.Prng.int g n in
  let col_range j =
    let lo = ref infinity and hi = ref neg_infinity in
    Array.iter
      (fun row ->
        if row.(j) < !lo then lo := row.(j);
        if row.(j) > !hi then hi := row.(j))
      d.Dataset.features;
    (!lo, !hi)
  in
  let lab_lo = Array.fold_left min infinity d.Dataset.labels in
  let lab_hi = Array.fold_left max neg_infinity d.Dataset.labels in
  let uniform lo hi = lo +. (Dp_rng.Prng.float g *. (hi -. lo)) in
  let fresh_row () =
    ( Array.init dim (fun j ->
          let lo, hi = col_range j in
          uniform lo hi),
      uniform lab_lo lab_hi )
  in
  let x0, y0 = Dataset.row d index in
  let differs (x, y) = y <> y0 || Array.exists2 (fun a b -> a <> b) x x0 in
  let rec draw tries =
    if tries = 0 then
      (* degenerate ranges (e.g. a single-record dataset): perturb
         deterministically so the pair still differs in one record *)
      (Array.copy x0, y0 +. 1.)
    else
      let row = fresh_row () in
      if differs row then row else draw (tries - 1)
  in
  let row = draw 64 in
  (d, Dataset.replace_row d index row, index)

let hamming_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Neighbors.hamming_distance: length mismatch";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d
