(** Seeded synthetic data generators.

    The paper's theorems quantify over arbitrary sampling distributions
    Q; these generators provide Q's with known ground truth so both the
    empirical risk R̂ and the true risk R are measurable (DESIGN.md §2
    records this substitution for the missing real corpora). *)

val two_gaussians :
  ?separation:float ->
  ?std:float ->
  dim:int ->
  n:int ->
  Dp_rng.Prng.t ->
  Dataset.t
(** Balanced binary classification: class ±1 drawn from isotropic
    Gaussians centred at [±separation/2 · e] where [e] is the all-ones
    direction. Labels are ±1. *)

val logistic_model :
  theta:float array -> n:int -> Dp_rng.Prng.t -> Dataset.t
(** Features uniform on the unit ball, labels ±1 drawn from the
    logistic model [P(y=1|x) = sigmoid(θ·x)] — the ground truth for
    private logistic regression (E8). *)

val linear_regression :
  theta:float array ->
  noise_std:float ->
  n:int ->
  Dp_rng.Prng.t ->
  Dataset.t
(** [y = θ·x + ε], features uniform on the unit ball,
    Gaussian noise. *)

val gaussian_mixture_1d :
  weights:float array ->
  means:float array ->
  stds:float array ->
  n:int ->
  Dp_rng.Prng.t ->
  float array
(** Univariate mixture draws (the density-estimation workload, E9).
    @raise Invalid_argument on inconsistent component arrays. *)

val mixture_density :
  weights:float array ->
  means:float array ->
  stds:float array ->
  float ->
  float
(** The corresponding true density, for error measurement. *)

val zipf_counts : s:float -> support:int -> n:int -> Dp_rng.Prng.t -> int array
(** [n] draws from a Zipf(s) law on [{0..support-1}], returned as a
    count vector (histogram release workload). *)

val bernoulli_database : p:float -> n:int -> Dp_rng.Prng.t -> int array
(** A 0/1 database of [n] individuals — the counting-query workload of
    experiment E1. *)
