open Dp_rng

let unit_ball_point ~dim g =
  (* Uniform direction with radius U^{1/d}. *)
  let dir = Sampler.gamma_vector_direction ~dim g in
  let r = Prng.float g ** (1. /. float_of_int dim) in
  Array.map (fun x -> x *. r) dir

let two_gaussians ?(separation = 2.) ?(std = 1.) ~dim ~n g =
  if n <= 0 then invalid_arg "Synthetic.two_gaussians: n must be positive";
  if dim <= 0 then invalid_arg "Synthetic.two_gaussians: dim must be positive";
  let half = separation /. 2. /. sqrt (float_of_int dim) in
  let features = Array.make n [||] and labels = Array.make n 0. in
  for i = 0 to n - 1 do
    let y = if i mod 2 = 0 then 1. else -1. in
    let x =
      Array.init dim (fun _ -> Sampler.gaussian ~mean:(y *. half) ~std g)
    in
    features.(i) <- x;
    labels.(i) <- y
  done;
  Dataset.create features labels

let sigmoid z = 1. /. (1. +. exp (-.z))

let logistic_model ~theta ~n g =
  if n <= 0 then invalid_arg "Synthetic.logistic_model: n must be positive";
  let dim = Array.length theta in
  if dim = 0 then invalid_arg "Synthetic.logistic_model: empty theta";
  let features = Array.make n [||] and labels = Array.make n 0. in
  for i = 0 to n - 1 do
    let x = unit_ball_point ~dim g in
    let p = sigmoid (Dp_linalg.Vec.dot theta x) in
    features.(i) <- x;
    labels.(i) <- (if Sampler.bernoulli ~p g then 1. else -1.)
  done;
  Dataset.create features labels

let linear_regression ~theta ~noise_std ~n g =
  if n <= 0 then invalid_arg "Synthetic.linear_regression: n must be positive";
  let dim = Array.length theta in
  if dim = 0 then invalid_arg "Synthetic.linear_regression: empty theta";
  let noise_std = Dp_math.Numeric.check_nonneg "noise_std" noise_std in
  let features = Array.make n [||] and labels = Array.make n 0. in
  for i = 0 to n - 1 do
    let x = unit_ball_point ~dim g in
    features.(i) <- x;
    labels.(i) <-
      Dp_linalg.Vec.dot theta x +. Sampler.gaussian ~mean:0. ~std:noise_std g
  done;
  Dataset.create features labels

let check_mixture weights means stds =
  let k = Array.length weights in
  if k = 0 then invalid_arg "Synthetic.mixture: empty mixture";
  if Array.length means <> k || Array.length stds <> k then
    invalid_arg "Synthetic.mixture: component arrays must have equal length";
  Array.iter
    (fun s -> ignore (Dp_math.Numeric.check_pos "mixture std" s))
    stds;
  let total = Dp_math.Summation.sum weights in
  if not (Dp_math.Numeric.approx_equal ~rel_tol:1e-6 total 1.) then
    invalid_arg "Synthetic.mixture: weights must sum to 1"

let gaussian_mixture_1d ~weights ~means ~stds ~n g =
  check_mixture weights means stds;
  if n <= 0 then invalid_arg "Synthetic.gaussian_mixture_1d: n must be positive";
  Array.init n (fun _ ->
      let k = Sampler.categorical ~probs:weights g in
      Sampler.gaussian ~mean:means.(k) ~std:stds.(k) g)

let mixture_density ~weights ~means ~stds x =
  check_mixture weights means stds;
  let c = 1. /. sqrt (2. *. Float.pi) in
  Dp_math.Numeric.float_sum_range (Array.length weights) (fun k ->
      let z = (x -. means.(k)) /. stds.(k) in
      weights.(k) *. c /. stds.(k) *. exp (-0.5 *. z *. z))

let zipf_counts ~s ~support ~n g =
  if support <= 0 then invalid_arg "Synthetic.zipf_counts: support must be positive";
  if n < 0 then invalid_arg "Synthetic.zipf_counts: negative n";
  let s = Dp_math.Numeric.check_pos "Synthetic.zipf_counts s" s in
  let weights =
    Array.init support (fun i -> (float_of_int (i + 1)) ** (-.s))
  in
  let table = Alias.create weights in
  let counts = Array.make support 0 in
  for _ = 1 to n do
    let k = Alias.sample table g in
    counts.(k) <- counts.(k) + 1
  done;
  counts

let bernoulli_database ~p ~n g =
  if n <= 0 then invalid_arg "Synthetic.bernoulli_database: n must be positive";
  Array.init n (fun _ -> if Sampler.bernoulli ~p g then 1 else 0)
