let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          let cells =
            Array.to_list (Array.map (Printf.sprintf "%.17g") row)
          in
          output_string oc (String.concat "," cells);
          output_char oc '\n')
        rows)

let parse_libsvm_line line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> invalid_arg "Csv.read_libsvm: empty line"
  | label :: feats ->
      let y =
        match float_of_string_opt label with
        | Some y -> y
        | None -> invalid_arg (Printf.sprintf "Csv.read_libsvm: bad label %S" label)
      in
      let pairs =
        List.map
          (fun f ->
            match String.index_opt f ':' with
            | None -> invalid_arg (Printf.sprintf "Csv.read_libsvm: bad feature %S" f)
            | Some i -> (
                let idx = String.sub f 0 i in
                let v = String.sub f (i + 1) (String.length f - i - 1) in
                match (int_of_string_opt idx, float_of_string_opt v) with
                | Some idx, Some v when idx >= 1 -> (idx, v)
                | _ ->
                    invalid_arg (Printf.sprintf "Csv.read_libsvm: bad feature %S" f)))
          feats
      in
      (y, pairs)

let read_libsvm ?dim ~path () =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rows = ref [] in
      let max_idx = ref (Option.value dim ~default:0) in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some "" -> loop ()
        | Some line ->
            let y, pairs = parse_libsvm_line line in
            List.iter (fun (i, _) -> max_idx := Stdlib.max !max_idx i) pairs;
            rows := (y, pairs) :: !rows;
            loop ()
      in
      loop ();
      let rows = List.rev !rows in
      if rows = [] then invalid_arg "Csv.read_libsvm: empty file";
      let d = !max_idx in
      if d = 0 then invalid_arg "Csv.read_libsvm: no features";
      let features =
        Array.of_list
          (List.map
             (fun (_, pairs) ->
               let row = Array.make d 0. in
               List.iter (fun (i, v) -> row.(i - 1) <- v) pairs;
               row)
             rows)
      in
      let labels = Array.of_list (List.map fst rows) in
      Dataset.create features labels)

let write_libsvm ~path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      for i = 0 to Dataset.size d - 1 do
        let x, y = Dataset.row d i in
        output_string oc (Printf.sprintf "%g" y);
        Array.iteri
          (fun j v -> output_string oc (Printf.sprintf " %d:%.17g" (j + 1) v))
          x;
        output_char oc '\n'
      done)

let read ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match In_channel.input_line ic with
        | None -> []
        | Some line -> String.split_on_char ',' line |> List.map String.trim
      in
      let rows = ref [] in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some "" -> loop ()
        | Some line ->
            let cells = String.split_on_char ',' line in
            let row =
              Array.of_list
                (List.map
                   (fun s ->
                     match float_of_string_opt (String.trim s) with
                     | Some f -> f
                     | None -> invalid_arg (Printf.sprintf "Csv.read: bad float %S" s))
                   cells)
            in
            rows := row :: !rows;
            loop ()
      in
      loop ();
      (header, List.rev !rows))
