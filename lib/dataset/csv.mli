(** Minimal CSV reader/writer for exporting experiment series and
    loading numeric tables. Values are unquoted floats; the first line
    may be a header. *)

val write :
  path:string -> header:string list -> float array list -> unit
(** [write ~path ~header rows] writes a header line and one line per
    row, comma-separated with [%.17g] floats (lossless round-trip). *)

val read : path:string -> string list * float array list
(** Returns the header fields and data rows.
    @raise Sys_error when the file cannot be read.
    @raise Invalid_argument on a malformed numeric field. *)

val read_libsvm : ?dim:int -> path:string -> unit -> Dataset.t
(** Read a libsvm/svmlight-format file: lines of
    [label idx:val idx:val ...] with 1-based feature indices; ±1
    labels expected. When [dim] is omitted the dimension is the
    largest index seen; absent features are 0.
    @raise Sys_error when the file cannot be read.
    @raise Invalid_argument on malformed lines or an empty file. *)

val write_libsvm : path:string -> Dataset.t -> unit
(** Write a dataset in libsvm format (all features written, 1-based
    indices). *)
