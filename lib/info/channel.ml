open Dp_math

type t = { input : float array; matrix : float array array }

let create ~input ~matrix =
  let input = Entropy.validate "Channel.create input" input in
  let n = Array.length input in
  if Array.length matrix <> n then
    invalid_arg "Channel.create: matrix height does not match input size";
  if n = 0 then invalid_arg "Channel.create: empty channel";
  let cols = Array.length matrix.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Channel.create: ragged matrix";
      ignore (Entropy.validate "Channel.create row" row))
    matrix;
  { input; matrix }

let of_rows ~input ~rows = create ~input ~matrix:rows

let n_inputs t = Array.length t.input
let n_outputs t = Array.length t.matrix.(0)

let row t i = Array.copy t.matrix.(i)

let output_marginal t =
  let cols = n_outputs t in
  Array.init cols (fun j ->
      Numeric.float_sum_range (n_inputs t) (fun i ->
          t.input.(i) *. t.matrix.(i).(j)))

let mutual_information t =
  Entropy.mutual_information_channel ~input:t.input ~channel:t.matrix

let joint t =
  Array.mapi (fun i r -> Array.map (fun c -> t.input.(i) *. c) r) t.matrix

let expected_kl_to t ~prior =
  Numeric.float_sum_range (n_inputs t) (fun i ->
      if t.input.(i) = 0. then 0.
      else t.input.(i) *. Entropy.kl_divergence t.matrix.(i) prior)

let kl_decomposition t ~prior =
  let marginal = output_marginal t in
  (mutual_information t, Entropy.kl_divergence marginal prior)

let dp_epsilon t ~neighbors =
  let worst = ref 0. in
  for i = 0 to n_inputs t - 1 do
    Array.iter
      (fun j ->
        let d1 = Entropy.max_divergence t.matrix.(i) t.matrix.(j) in
        let d2 = Entropy.max_divergence t.matrix.(j) t.matrix.(i) in
        worst := Float.max !worst (Float.max d1 d2))
      (neighbors i)
  done;
  !worst

let expected_risk t ~risk =
  Numeric.float_sum_range (n_inputs t) (fun i ->
      t.input.(i)
      *. Numeric.float_sum_range (n_outputs t) (fun j ->
             t.matrix.(i).(j) *. risk i j))

let objective t ~risk ~beta =
  let beta = Numeric.check_pos "Channel.objective beta" beta in
  expected_risk t ~risk +. (mutual_information t /. beta)

let objective_kl t ~risk ~beta ~prior =
  let beta = Numeric.check_pos "Channel.objective_kl beta" beta in
  expected_risk t ~risk +. (expected_kl_to t ~prior /. beta)

let perturb t ~magnitude g =
  let magnitude = Numeric.check_nonneg "Channel.perturb magnitude" magnitude in
  let matrix =
    Array.map
      (fun r ->
        let noisy =
          Array.map
            (fun p ->
              Float.max 1e-12
                (p *. exp (Dp_rng.Sampler.gaussian ~mean:0. ~std:magnitude g)))
            r
        in
        let z = Summation.sum noisy in
        Array.map (fun p -> p /. z) noisy)
      t.matrix
  in
  create ~input:t.input ~matrix

let pp fmt t =
  Format.fprintf fmt "@[<v>channel: %d inputs -> %d outputs@," (n_inputs t)
    (n_outputs t);
  Array.iteri
    (fun i r ->
      Format.fprintf fmt "p=%0.4f | " t.input.(i);
      Array.iter (fun c -> Format.fprintf fmt "%8.5f " c) r;
      Format.fprintf fmt "@,")
    t.matrix;
  Format.fprintf fmt "@]"
