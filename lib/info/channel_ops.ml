open Dp_math

let cascade ch ~post =
  let m = Channel.n_outputs ch in
  if Array.length post <> m then
    invalid_arg "Channel_ops.cascade: post-processing height mismatch";
  let m' = Array.length post.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> m' then invalid_arg "Channel_ops.cascade: ragged post";
      ignore (Entropy.validate "Channel_ops.cascade post row" row))
    post;
  let matrix =
    Array.init (Channel.n_inputs ch) (fun i ->
        let row = Channel.row ch i in
        Array.init m' (fun y' ->
            Numeric.float_sum_range m (fun y -> row.(y) *. post.(y).(y'))))
  in
  Channel.create ~input:ch.Channel.input ~matrix

let product a b =
  let n = Channel.n_inputs a in
  if Channel.n_inputs b <> n then
    invalid_arg "Channel_ops.product: input sizes differ";
  Array.iteri
    (fun i p ->
      if not (Numeric.approx_equal ~rel_tol:1e-9 ~abs_tol:1e-12 p b.Channel.input.(i))
      then invalid_arg "Channel_ops.product: input distributions differ")
    a.Channel.input;
  let ma = Channel.n_outputs a and mb = Channel.n_outputs b in
  let matrix =
    Array.init n (fun i ->
        let ra = Channel.row a i and rb = Channel.row b i in
        Array.init (ma * mb) (fun k -> ra.(k / mb) *. rb.(k mod mb)))
  in
  Channel.create ~input:a.Channel.input ~matrix

let deterministic_post ~outputs f =
  if outputs <= 0 then invalid_arg "Channel_ops.deterministic_post: outputs <= 0";
  Array.init outputs (fun y ->
      let y' = f y in
      if y' < 0 || y' >= outputs then
        invalid_arg "Channel_ops.deterministic_post: function leaves the alphabet";
      Array.init outputs (fun k -> if k = y' then 1. else 0.))

let binary_symmetric_post ~outputs ~flip =
  if outputs < 2 then invalid_arg "Channel_ops.binary_symmetric_post: outputs < 2";
  let flip = Numeric.check_prob "Channel_ops.binary_symmetric_post flip" flip in
  Array.init outputs (fun y ->
      Array.init outputs (fun k ->
          if k = y then 1. -. flip else flip /. float_of_int (outputs - 1)))
