open Dp_math

type capacity_result = {
  capacity : float;
  input : float array;
  iterations : int;
}

let capacity ?(tol = 1e-10) ?(max_iter = 10_000) ~channel () =
  let n = Array.length channel in
  if n = 0 then invalid_arg "Blahut_arimoto.capacity: empty channel";
  let m = Array.length channel.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> m then
        invalid_arg "Blahut_arimoto.capacity: ragged channel";
      ignore (Entropy.validate "Blahut_arimoto.capacity row" row))
    channel;
  let p = Array.make n (1. /. float_of_int n) in
  let iterations = ref 0 in
  let cap = ref 0. in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    (* Output marginal under the current input. *)
    let q =
      Array.init m (fun j ->
          Numeric.float_sum_range n (fun i -> p.(i) *. channel.(i).(j)))
    in
    (* D_i = KL(channel_i ‖ q) *)
    let d =
      Array.init n (fun i ->
          Numeric.float_sum_range m (fun j ->
              let c = channel.(i).(j) in
              if c > 0. then c *. log (c /. q.(j)) else 0.))
    in
    (* Capacity bounds: max_i D_i is an upper bound, log Σ p e^D a lower
       bound; the gap drives convergence. *)
    let lw = Array.mapi (fun i di -> log (Float.max p.(i) 1e-300) +. di) d in
    let log_z = Logspace.log_sum_exp lw in
    let upper = Array.fold_left Float.max neg_infinity d in
    if upper -. log_z < tol then begin
      converged := true;
      cap := log_z
    end
    else begin
      let p' = Logspace.normalize_log_weights lw in
      Array.blit p' 0 p 0 n;
      cap := log_z
    end
  done;
  { capacity = Float.max 0. !cap; input = p; iterations = !iterations }
