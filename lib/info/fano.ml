open Dp_math

let fano_error_lower_bound ~mi ~k =
  let mi = Numeric.check_nonneg "Fano.fano_error_lower_bound mi" mi in
  if k < 2 then invalid_arg "Fano.fano_error_lower_bound: k must be >= 2";
  let bound = 1. -. ((mi +. log 2.) /. log (float_of_int k)) in
  Numeric.clamp ~lo:0. ~hi:(1. -. (1. /. float_of_int k)) bound

let fano_error_lower_bound_dp ~epsilon ~diameter ~k =
  let mi = Leakage.mi_upper_bound_pure_dp ~epsilon ~diameter in
  fano_error_lower_bound ~mi ~k

let le_cam_risk_lower_bound ~separation ~kl =
  let separation =
    Numeric.check_nonneg "Fano.le_cam_risk_lower_bound separation" separation
  in
  let kl = Numeric.check_nonneg "Fano.le_cam_risk_lower_bound kl" kl in
  (* Bretagnolle-Huber: 1 - TV >= exp(-KL)/2, minimax risk >=
     separation/2 * (1 - TV)/2 >= separation/4 * exp(-KL) / ... use the
     standard sep/4 * e^{-kl} form. *)
  separation /. 4. *. exp (-.kl)

let dp_testing_lower_bound ~epsilon ~n =
  let epsilon = Numeric.check_nonneg "Fano.dp_testing_lower_bound epsilon" epsilon in
  if n <= 0 then invalid_arg "Fano.dp_testing_lower_bound: n must be positive";
  exp (-.(float_of_int n *. epsilon))
