(** Shannon entropy, divergences and mutual information for discrete
    distributions (natural-log units, "nats", matching the paper's
    KL-based bounds).

    Distributions are probability vectors; inputs are validated to be
    nonnegative and sum to 1 within tolerance. *)

val validate : string -> float array -> float array
(** Check a probability vector (nonnegative, sums to 1 within 1e-6) and
    return it. @raise Invalid_argument otherwise. *)

val entropy : float array -> float
(** [H(p) = −Σ pᵢ log pᵢ], with [0 log 0 = 0]. *)

val entropy_base2 : float array -> float

val cross_entropy : float array -> float array -> float
(** [−Σ pᵢ log qᵢ]; [infinity] when absolute continuity fails. *)

val kl_divergence : float array -> float array -> float
(** [KL(p‖q) = Σ pᵢ log (pᵢ/qᵢ)] — the D_KL of Theorem 3.1. Returns
    [infinity] when [p] puts mass where [q] does not. *)

val kl_divergence_log : float array -> float array -> float
(** KL from log-probability vectors (no exponentiation of [q]
    needed where [p] is 0; stable for extreme posteriors). Arguments
    are normalized log probabilities. *)

val total_variation : float array -> float array -> float
(** [½ Σ |pᵢ − qᵢ|]. *)

val jensen_shannon : float array -> float array -> float
(** JS divergence (symmetrized, bounded KL). *)

val max_divergence : float array -> float array -> float
(** [max_i log (pᵢ/qᵢ)] over the support of [p] — the privacy-loss
    quantity: a mechanism is ε-DP iff the max divergence between
    neighbouring output distributions is ≤ ε in both directions. *)

val renyi_divergence : alpha:float -> float array -> float array -> float
(** Rényi divergence of order α (α > 0, α ≠ 1); α → ∞ recovers
    {!max_divergence}, α → 1 recovers KL. *)

val mutual_information : joint:float array array -> float
(** [I(X;Y)] from an explicit joint distribution (rows X, columns Y):
    [Σ p(x,y) log (p(x,y) / (p(x)p(y)))].
    @raise Invalid_argument when the matrix does not sum to 1 or has a
    negative entry. *)

val mutual_information_channel :
  input:float array -> channel:float array array -> float
(** [I(X;Y)] from an input distribution and the conditional
    [channel.(x).(y) = P(Y=y|X=x)] — the paper's Figure 1 object. *)
