open Dp_math

let validate name p =
  Array.iter
    (fun x ->
      if x < 0. || not (Numeric.is_finite x) then
        invalid_arg (name ^ ": negative or non-finite probability"))
    p;
  let total = Summation.sum p in
  if not (Numeric.approx_equal ~rel_tol:1e-6 ~abs_tol:1e-9 total 1.) then
    invalid_arg (Printf.sprintf "%s: probabilities sum to %g" name total);
  p

let entropy p =
  let p = validate "Entropy.entropy" p in
  -.Summation.sum_map Numeric.xlogx p

let entropy_base2 p = entropy p /. log 2.

let cross_entropy p q =
  let p = validate "Entropy.cross_entropy p" p in
  let q = validate "Entropy.cross_entropy q" q in
  if Array.length p <> Array.length q then
    invalid_arg "Entropy.cross_entropy: length mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i pi ->
      if pi > 0. then
        if q.(i) = 0. then acc := infinity
        else acc := !acc -. (pi *. log q.(i)))
    p;
  !acc

let kl_divergence p q =
  let p = validate "Entropy.kl p" p in
  let q = validate "Entropy.kl q" q in
  if Array.length p <> Array.length q then
    invalid_arg "Entropy.kl: length mismatch";
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i pi ->
         if pi > 0. then
           if q.(i) = 0. then begin
             acc := infinity;
             raise Exit
           end
           else acc := !acc +. (pi *. log (pi /. q.(i))))
       p
   with Exit -> ());
  Float.max 0. !acc

let kl_divergence_log lp lq =
  if Array.length lp <> Array.length lq then
    invalid_arg "Entropy.kl_divergence_log: length mismatch";
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i lpi ->
         if lpi > neg_infinity then begin
           if lq.(i) = neg_infinity then begin
             acc := infinity;
             raise Exit
           end;
           acc := !acc +. (exp lpi *. (lpi -. lq.(i)))
         end)
       lp
   with Exit -> ());
  Float.max 0. !acc

let total_variation p q =
  let p = validate "Entropy.tv p" p in
  let q = validate "Entropy.tv q" q in
  if Array.length p <> Array.length q then
    invalid_arg "Entropy.tv: length mismatch";
  0.5 *. Numeric.float_sum_range (Array.length p) (fun i -> Float.abs (p.(i) -. q.(i)))

let jensen_shannon p q =
  let m = Array.mapi (fun i pi -> 0.5 *. (pi +. q.(i))) p in
  (0.5 *. kl_divergence p m) +. (0.5 *. kl_divergence q m)

let max_divergence p q =
  let p = validate "Entropy.max_divergence p" p in
  let q = validate "Entropy.max_divergence q" q in
  if Array.length p <> Array.length q then
    invalid_arg "Entropy.max_divergence: length mismatch";
  let worst = ref neg_infinity in
  Array.iteri
    (fun i pi ->
      if pi > 0. then
        if q.(i) = 0. then worst := infinity
        else worst := Float.max !worst (log (pi /. q.(i))))
    p;
  if !worst = neg_infinity then 0. else !worst

let renyi_divergence ~alpha p q =
  if alpha <= 0. || alpha = 1. then
    invalid_arg "Entropy.renyi_divergence: alpha must be positive and != 1";
  let p = validate "Entropy.renyi p" p in
  let q = validate "Entropy.renyi q" q in
  if Array.length p <> Array.length q then
    invalid_arg "Entropy.renyi: length mismatch";
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i pi ->
         if pi > 0. then begin
           if q.(i) = 0. && alpha > 1. then begin
             acc := infinity;
             raise Exit
           end;
           if q.(i) > 0. then
             acc := !acc +. ((pi ** alpha) *. (q.(i) ** (1. -. alpha)))
         end)
       p
   with Exit -> ());
  if !acc = infinity then infinity
  else log !acc /. (alpha -. 1.)

let mutual_information ~joint =
  let rows = Array.length joint in
  if rows = 0 then invalid_arg "Entropy.mutual_information: empty joint";
  let cols = Array.length joint.(0) in
  let total = ref 0. in
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Entropy.mutual_information: ragged joint";
      Array.iter
        (fun x ->
          if x < 0. || not (Numeric.is_finite x) then
            invalid_arg "Entropy.mutual_information: negative entry";
          total := !total +. x)
        row)
    joint;
  if not (Numeric.approx_equal ~rel_tol:1e-6 !total 1.) then
    invalid_arg
      (Printf.sprintf "Entropy.mutual_information: joint sums to %g" !total);
  let px = Array.map Summation.sum joint in
  let py =
    Array.init cols (fun j ->
        Numeric.float_sum_range rows (fun i -> joint.(i).(j)))
  in
  let acc = ref 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let pxy = joint.(i).(j) in
      if pxy > 0. then
        acc := !acc +. (pxy *. log (pxy /. (px.(i) *. py.(j))))
    done
  done;
  Float.max 0. !acc

let mutual_information_channel ~input ~channel =
  let input = validate "Entropy.mutual_information_channel input" input in
  let rows = Array.length channel in
  if rows <> Array.length input then
    invalid_arg "Entropy.mutual_information_channel: input/channel mismatch";
  let joint =
    Array.mapi (fun i row -> Array.map (fun c -> input.(i) *. c) row) channel
  in
  mutual_information ~joint
