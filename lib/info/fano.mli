(** Information-theoretic lower bounds on learning — the "implication
    on the utility of differentially-private learning algorithms" the
    paper's §5 raises. Because an ε-DP channel carries at most
    [min(I(Ẑ;θ), d·ε)] nats about the sample, Fano's inequality turns
    the privacy constraint into a floor on identification error, and
    Le Cam's two-point method into a floor on estimation error. *)

val fano_error_lower_bound : mi:float -> k:int -> float
(** Fano: when a parameter uniform over [k ≥ 2] hypotheses must be
    identified from an observation with mutual information [mi] (nats),
    any decoder errs with probability at least
    [1 − (mi + log 2)/log k]. Clamped to [0, 1 − 1/k].
    @raise Invalid_argument for [k < 2] or negative [mi]. *)

val fano_error_lower_bound_dp :
  epsilon:float -> diameter:int -> k:int -> float
(** The same bound with [mi] replaced by the DP ceiling [d·ε]: a floor
    on the error of ANY ε-DP k-ary selection procedure. *)

val le_cam_risk_lower_bound :
  separation:float -> kl:float -> float
(** Le Cam two-point bound: for two hypotheses at distance
    [separation] in the loss metric with KL divergence [kl] between
    their observation distributions, minimax risk is at least
    [separation/4 · exp(−kl)] (via Bretagnolle–Huber).
    @raise Invalid_argument on negative inputs. *)

val dp_testing_lower_bound : epsilon:float -> n:int -> float
(** The hypothesis-testing floor for ε-DP mechanisms on n records:
    distinguishing two databases at Hamming distance n costs
    advantage at most [1 − e^{−nε}] — returns the minimum total error
    [P(err|H0) + P(err|H1) ≥ e^{−n·ε}] implied by group privacy. *)
