(** Quantitative information flow of DP mechanisms — the Alvim et al.
    comparison the paper cites (§1, §5, claim C8 in DESIGN.md).

    All quantities in nats unless stated otherwise. *)

val mi_upper_bound_pure_dp : epsilon:float -> diameter:int -> float
(** For an ε-DP channel whose input alphabet has Hamming diameter [d]
    (every two inputs differ in at most [d] records), group privacy
    gives [D_∞(row_x ‖ row_x') ≤ d·ε]; since
    [I(X;Y) = E_x KL(row_x ‖ marginal) ≤ max_{x,x'} KL(row_x‖row_x')
    ≤ max D_∞], mutual information is bounded by [d·ε] for any input
    distribution.
    @raise Invalid_argument on negative inputs. *)

val min_entropy_leakage : input:float array -> channel:float array array -> float
(** Min-entropy leakage [H_∞(X) − H_∞(X|Y)] where
    [H_∞(X|Y) = −log Σ_y max_x p(x) P(y|x)] (Smith's measure of the
    multiplicative advantage of a one-try adversary). *)

val min_entropy_leakage_bound_alvim :
  epsilon:float -> n:int -> universe:int -> float
(** Alvim et al.'s bound for an ε-DP mechanism over databases of [n]
    records with [universe] values per record:
    [L ≤ n · log (v·e^ε / (v − 1 + e^ε))].
    @raise Invalid_argument on non-positive parameters or
    [universe < 2]. *)

val channel_capacity_bound_pure_dp : epsilon:float -> diameter:int -> float
(** Capacity of an ε-DP channel is bounded by the same group-privacy
    argument: [C ≤ d·ε]. (Alias of {!mi_upper_bound_pure_dp}, exposed
    under the capacity name for the E7 tables.) *)
