(** The information channel of the paper's Figure 1.

    A channel has a finite input alphabet (samples Ẑ), a finite output
    alphabet (predictors θ), an input distribution, and a stochastic
    matrix [P(θ | Ẑ)]. Differentially-private learning, in the paper's
    view (§4.1), is the design of this channel: each row is the
    posterior [π̂_Ẑ], and the ε-DP property is a bound on the max
    divergence between rows at neighbouring inputs. *)

type t = private { input : float array; matrix : float array array }

val create : input:float array -> matrix:float array array -> t
(** @raise Invalid_argument when the input is not a distribution, the
    matrix is ragged / wrong height, or some row is not a
    distribution. *)

val of_rows : input:float array -> rows:float array array -> t
(** Synonym of {!create} emphasising rows-as-posteriors. *)

val n_inputs : t -> int
val n_outputs : t -> int

val row : t -> int -> float array
(** The posterior [π̂_Ẑ] for input [Ẑ]. *)

val output_marginal : t -> float array
(** [E_Ẑ π̂_Ẑ] — the paper's optimal prior [π_OPT] (§4). *)

val mutual_information : t -> float
(** [I(Ẑ; θ)] in nats. *)

val joint : t -> float array array

val expected_kl_to : t -> prior:float array -> float
(** [E_Ẑ KL(π̂_Ẑ ‖ π)] for an arbitrary prior π. *)

val kl_decomposition : t -> prior:float array -> float * float
(** Catoni's identity (paper §4):
    [E_Ẑ KL(π̂‖π) = I(Ẑ;θ) + KL(E_Ẑ π̂ ‖ π)]. Returns the pair
    [(I, KL(marginal‖π))]; their sum equals {!expected_kl_to}
    (verified by tests and experiment E6). *)

val dp_epsilon : t -> neighbors:(int -> int array) -> float
(** Exact privacy level of the channel: the max over all declared
    neighbour pairs of the two-sided max divergence between rows.
    [neighbors i] lists the inputs adjacent to [i]. *)

val expected_risk : t -> risk:(int -> int -> float) -> float
(** [E_Ẑ E_{θ∼π̂_Ẑ} risk(Ẑ, θ)] — the channel's expected empirical
    risk when [risk z th] is [R̂_Ẑ(θ)]. *)

val objective : t -> risk:(int -> int -> float) -> beta:float -> float
(** The paper's regularized objective (Theorem 4.2):
    [E R̂ + I(Ẑ;θ)/β]. Minimized by the Gibbs channel under the
    OPTIMAL prior [π = E_Ẑ π̂] (the paper's §4 assumption; computed by
    [Rate_risk.solve]). *)

val objective_kl : t -> risk:(int -> int -> float) -> beta:float -> prior:float array -> float
(** The prior-explicit PAC-Bayes objective
    [E R̂ + E_Ẑ KL(π̂_Ẑ‖π)/β]. For ANY fixed prior this decomposes
    per row, so the Gibbs channel built from that prior minimizes it
    (Lemma 3.2 row by row); it upper-bounds {!objective} by Catoni's
    identity, with equality at the optimal prior. *)

val perturb : t -> magnitude:float -> Dp_rng.Prng.t -> t
(** A nearby channel: each row receives a random perturbation of the
    given magnitude and is renormalized. Used to verify minimality of
    the Gibbs channel. *)

val pp : Format.formatter -> t -> unit
