(** Estimating mutual information from samples.

    The exact channels of E6/E12 need no estimation, but measuring the
    information actually leaked by a mechanism from its input/output
    samples (as E15 does) requires an estimator — and the naive
    plug-in is biased upward by roughly (|X|−1)(|Y|−1)/2n nats
    (Miller–Madow). Both the plug-in and the bias-corrected estimator
    are provided, with a permutation test for the null I = 0. *)

val plugin : xs:int array -> ys:int array -> kx:int -> ky:int -> float
(** Plug-in MI of paired discrete samples with alphabet sizes kx, ky.
    @raise Invalid_argument on length mismatch, empty input, or
    out-of-range symbols. *)

val miller_madow : xs:int array -> ys:int array -> kx:int -> ky:int -> float
(** Plug-in minus the Miller–Madow bias estimate
    [(k̂x−1)(k̂y−1)/(2n)] using the OBSERVED support sizes k̂; clamped
    at 0. *)

val permutation_test :
  ?permutations:int ->
  xs:int array ->
  ys:int array ->
  kx:int ->
  ky:int ->
  Dp_rng.Prng.t ->
  float
(** P-value for the null hypothesis I(X;Y) = 0: the fraction of
    label-permuted datasets whose plug-in MI reaches the observed one
    (default 200 permutations). *)
