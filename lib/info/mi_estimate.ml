open Dp_math

let joint_counts ~xs ~ys ~kx ~ky =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Mi_estimate: empty sample";
  if Array.length ys <> n then invalid_arg "Mi_estimate: length mismatch";
  let counts = Array.make_matrix kx ky 0. in
  Array.iteri
    (fun i x ->
      let y = ys.(i) in
      if x < 0 || x >= kx || y < 0 || y >= ky then
        invalid_arg "Mi_estimate: symbol out of range";
      counts.(x).(y) <- counts.(x).(y) +. 1.)
    xs;
  (counts, float_of_int n)

let plugin ~xs ~ys ~kx ~ky =
  let counts, n = joint_counts ~xs ~ys ~kx ~ky in
  let joint = Array.map (Array.map (fun c -> c /. n)) counts in
  Entropy.mutual_information ~joint

let miller_madow ~xs ~ys ~kx ~ky =
  let counts, n = joint_counts ~xs ~ys ~kx ~ky in
  let observed_x =
    Numeric.float_sum_range kx (fun i ->
        if Summation.sum counts.(i) > 0. then 1. else 0.)
  in
  let observed_y =
    Numeric.float_sum_range ky (fun j ->
        let col = Numeric.float_sum_range kx (fun i -> counts.(i).(j)) in
        if col > 0. then 1. else 0.)
  in
  let bias = (observed_x -. 1.) *. (observed_y -. 1.) /. (2. *. n) in
  Float.max 0. (plugin ~xs ~ys ~kx ~ky -. bias)

let permutation_test ?(permutations = 200) ~xs ~ys ~kx ~ky g =
  if permutations <= 0 then
    invalid_arg "Mi_estimate.permutation_test: permutations must be positive";
  let observed = plugin ~xs ~ys ~kx ~ky in
  let ys' = Array.copy ys in
  let hits = ref 0 in
  for _ = 1 to permutations do
    Dp_rng.Sampler.shuffle ys' g;
    if plugin ~xs ~ys:ys' ~kx ~ky >= observed -. 1e-12 then incr hits
  done;
  (* add-one smoothing keeps the p-value away from an impossible 0 *)
  float_of_int (!hits + 1) /. float_of_int (permutations + 1)
