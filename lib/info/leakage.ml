open Dp_math

let mi_upper_bound_pure_dp ~epsilon ~diameter =
  let epsilon = Numeric.check_nonneg "Leakage.mi_upper_bound epsilon" epsilon in
  if diameter < 0 then invalid_arg "Leakage.mi_upper_bound: negative diameter";
  float_of_int diameter *. epsilon

let min_entropy_leakage ~input ~channel =
  let input = Entropy.validate "Leakage.min_entropy_leakage input" input in
  let n = Array.length channel in
  if n <> Array.length input then
    invalid_arg "Leakage.min_entropy_leakage: input/channel mismatch";
  let m = Array.length channel.(0) in
  let prior_vuln = Array.fold_left Float.max 0. input in
  let post_vuln =
    Numeric.float_sum_range m (fun j ->
        let best = ref 0. in
        for i = 0 to n - 1 do
          best := Float.max !best (input.(i) *. channel.(i).(j))
        done;
        !best)
  in
  Float.max 0. (log (post_vuln /. prior_vuln))

let min_entropy_leakage_bound_alvim ~epsilon ~n ~universe =
  let epsilon = Numeric.check_nonneg "Leakage.alvim epsilon" epsilon in
  if n <= 0 then invalid_arg "Leakage.alvim: n must be positive";
  if universe < 2 then invalid_arg "Leakage.alvim: universe must be >= 2";
  let v = float_of_int universe in
  float_of_int n *. log (v *. exp epsilon /. (v -. 1. +. exp epsilon))

let channel_capacity_bound_pure_dp = mi_upper_bound_pure_dp
