(** Operations on channels, and the two inequalities that make the
    paper's Figure 1 view productive:

    - the data-processing inequality: post-processing the output of
      the channel [Ẑ → θ] through any stochastic map [θ → θ'] cannot
      increase [I(Ẑ; ·)];
    - post-processing invariance of differential privacy: the same
      cascade cannot increase the channel's exact ε.

    Both are verified by tests and experiment E30; together they say
    that anything computed FROM a private predictor stays private and
    uninformative — the operational content of the channel picture. *)

val cascade : Channel.t -> post:float array array -> Channel.t
(** [cascade ch ~post] composes the channel with a stochastic
    post-processing matrix [post.(y).(y') = P(θ'=y' | θ=y)].
    @raise Invalid_argument when [post]'s height differs from the
    channel's output alphabet or a row is not a distribution. *)

val product : Channel.t -> Channel.t -> Channel.t
(** Independent parallel composition on a shared input:
    [P((y1,y2)|x) = P₁(y1|x)·P₂(y2|x)], output alphabet the cartesian
    product (indexed row-major). Mutual information is subadditive:
    [I ≤ I₁ + I₂]; the exact ε adds. Requires equal input
    distributions.
    @raise Invalid_argument when the inputs differ. *)

val deterministic_post : outputs:int -> (int -> int) -> float array array
(** The 0/1 post-processing matrix of a function on the output
    alphabet (e.g. a decision rule collapsing predictors to labels).
    @raise Invalid_argument when the function leaves [\[0, outputs)]. *)

val binary_symmetric_post : outputs:int -> flip:float -> float array array
(** Each output symbol kept with probability [1 − flip], otherwise
    re-drawn uniformly from the others — a generic noisy
    post-processor for DPI experiments.
    @raise Invalid_argument for flip outside [0, 1] or outputs < 2. *)
