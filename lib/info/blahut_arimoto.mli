(** Blahut–Arimoto algorithms.

    Two uses here: channel capacity (the largest information the
    Fig. 1 channel could carry over any input distribution), and the
    risk–information problem of Theorem 4.2, solved in
    {!Rate_risk}. *)

type capacity_result = {
  capacity : float;  (** nats *)
  input : float array;  (** capacity-achieving input distribution *)
  iterations : int;
}

val capacity :
  ?tol:float -> ?max_iter:int -> channel:float array array -> unit -> capacity_result
(** Standard Blahut–Arimoto iteration; converges for any channel with
    no all-zero column reachability issues. [tol] (default 1e-10) is
    the capacity-increment stopping threshold.
    @raise Invalid_argument on an empty or ragged channel. *)
