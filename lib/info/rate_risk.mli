(** The risk–information problem of the paper's Theorem 4.2:

    [inf over channels π̂ of  E_Ẑ E_{θ∼π̂_Ẑ} R̂_Ẑ(θ) + (1/β) I(Ẑ;θ)].

    This is a rate–distortion problem with the empirical risk as the
    distortion measure. Blahut–Arimoto-style alternating minimization:
    holding the prior π fixed, the optimal rows are Gibbs posteriors
    [π̂_Ẑ ∝ π e^{−β R̂_Ẑ}]; holding the rows fixed, the optimal prior
    is the output marginal [π = E_Ẑ π̂] (Catoni's observation in §4).
    Iterating converges to the global optimum, and experiment E11
    verifies the fixed point is exactly the Gibbs channel under the
    optimal prior. *)

type result = {
  channel : Channel.t;
  prior : float array;  (** the converged optimal prior [E_Ẑ π̂] *)
  objective : float;  (** [E R̂ + I/β] at the optimum *)
  trace : float list;  (** objective value per iteration, oldest first *)
  iterations : int;
}

val solve :
  ?tol:float ->
  ?max_iter:int ->
  input:float array ->
  risk:float array array ->
  beta:float ->
  unit ->
  result
(** [solve ~input ~risk ~beta ()] with [risk.(z).(th) = R̂_z(θ)].
    [input] is the distribution over sample sets (rows).
    @raise Invalid_argument on inconsistent shapes, non-positive β, or
    non-finite risks. *)

val gibbs_rows :
  prior:float array -> risk:float array array -> beta:float -> float array array
(** The inner minimizer: row [z] is [∝ prior · e^{−β·risk.(z)}]
    computed in log space. *)
