open Dp_math

type result = {
  channel : Channel.t;
  prior : float array;
  objective : float;
  trace : float list;
  iterations : int;
}

let gibbs_rows ~prior ~risk ~beta =
  let log_prior = Array.map (fun p -> log (Float.max p 1e-300)) prior in
  Array.map
    (fun risks ->
      let lw = Array.mapi (fun j r -> log_prior.(j) -. (beta *. r)) risks in
      Logspace.normalize_log_weights lw)
    risk

let solve ?(tol = 1e-12) ?(max_iter = 5_000) ~input ~risk ~beta () =
  let beta = Numeric.check_pos "Rate_risk.solve beta" beta in
  let input = Entropy.validate "Rate_risk.solve input" input in
  let n = Array.length risk in
  if n <> Array.length input then
    invalid_arg "Rate_risk.solve: risk height does not match input";
  if n = 0 then invalid_arg "Rate_risk.solve: empty problem";
  let m = Array.length risk.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> m then invalid_arg "Rate_risk.solve: ragged risk";
      Array.iter
        (fun x -> ignore (Numeric.check_finite "Rate_risk.solve risk" x))
        r)
    risk;
  let objective_of rows =
    let ch = Channel.create ~input ~matrix:rows in
    Channel.objective ch ~risk:(fun z th -> risk.(z).(th)) ~beta
  in
  let prior = ref (Array.make m (1. /. float_of_int m)) in
  let rows = ref (gibbs_rows ~prior:!prior ~risk ~beta) in
  let obj = ref (objective_of !rows) in
  let trace = ref [ !obj ] in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    (* Prior step: optimal prior is the output marginal. *)
    let ch = Channel.create ~input ~matrix:!rows in
    prior := Channel.output_marginal ch;
    (* Posterior step: Gibbs rows under the new prior. *)
    rows := gibbs_rows ~prior:!prior ~risk ~beta;
    let obj' = objective_of !rows in
    if Float.abs (!obj -. obj') <= tol *. (1. +. Float.abs !obj) then
      converged := true;
    obj := obj';
    trace := obj' :: !trace
  done;
  {
    channel = Channel.create ~input ~matrix:!rows;
    prior = !prior;
    objective = !obj;
    trace = List.rev !trace;
    iterations = !iterations;
  }
